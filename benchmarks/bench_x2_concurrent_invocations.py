"""X2 -- concurrent invocations via indexing (paper footnote 9, extension).

The base protocol paces one General's initiations by Delta_0 = 13d;
indexing removes that pacing.  Measured: wall-clock (simulated) time to
replicate a batch of B commands sequentially vs concurrently -- the
concurrent path collapses B * (Delta_0 + latency) into roughly one latency.
"""

from repro.core.params import ProtocolParams
from repro.extensions.concurrent import ConcurrentGeneral
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.workloads import run_sequential_stream

from benchmarks.conftest import measure_experiment


def _run() -> list[dict]:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    rows = []
    for batch in (2, 4, 8):
        commands = [f"cmd{i}" for i in range(batch)]

        seq = Cluster(ScenarioConfig(params=params, seed=1))
        start = seq.sim.now
        records = run_sequential_stream(seq, general=0, values=commands, settle_d=5.0)
        assert all(rec.validity_ok for rec in records)
        seq_time = seq.sim.now - start

        conc = Cluster(ScenarioConfig(params=params, seed=1))
        cg = ConcurrentGeneral(conc.protocol_node(0))
        start = conc.sim.now
        for command in commands:
            cg.propose(command)
        conc.run_for(params.delta_agr + 10 * params.d)
        values = cg.decided_values(conc.correct_nodes())
        assert values == {i: {commands[i]} for i in range(batch)}
        # Completion time: the latest decision across all indexes.
        last = max(
            dec.returned_real
            for node in conc.correct_nodes()
            for dec in cg.decisions_at(node).values()
        )
        conc_time = last - start

        rows.append(
            {
                "batch": batch,
                "sequential_time_d": seq_time / params.d,
                "concurrent_time_d": conc_time / params.d,
                "speedup": seq_time / conc_time,
            }
        )
    return rows


def bench_x2_concurrent_invocations(benchmark):
    rows = measure_experiment(
        benchmark, _run, "X2: sequential vs concurrent (indexed) invocations"
    )
    for row in rows:
        assert row["speedup"] > 1.0
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)  # bigger batch, bigger win
