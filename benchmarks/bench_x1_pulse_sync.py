"""X1 -- synchronized pulses atop ss-Byz-Agree (extension).

The paper (Section 1) claims synchronized pulses can be produced atop this
protocol; the reconstruction in ``repro.extensions.pulse_sync`` inherits the
3d decision spread as its skew bound.  Measured: worst pulse skew across
seeds, with and without a crashed usual-initiator.
"""

from repro.core.params import ProtocolParams
from repro.extensions.pulse_sync import PulseSyncCluster
from repro.faults.byzantine import CrashStrategy

from benchmarks.conftest import measure_experiment


def _run() -> list[dict]:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    rows = []
    for label, byzantine in (("all correct", None), ("initiator crashed", {0: CrashStrategy()})):
        skews = []
        pulse_counts = []
        for seed in range(5):
            ps = PulseSyncCluster(params, seed=seed, byzantine=byzantine)
            ps.run_for(6 * ps.pulse_config.cycle)
            skew = ps.max_skew()
            if skew is not None:
                skews.append(skew)
            pulse_counts.append(
                min(len(t) for t in ps.pulse_trains().values())
            )
        rows.append(
            {
                "scenario": label,
                "runs": 5,
                "min_pulses": min(pulse_counts),
                "max_skew_d": max(skews) / params.d if skews else None,
                "skew_bound_d": 3.0,
            }
        )
    return rows


def bench_x1_pulse_sync(benchmark):
    rows = measure_experiment(benchmark, _run, "X1: pulse synchronization skew")
    for row in rows:
        assert row["min_pulses"] >= 3
        assert row["max_skew_d"] <= row["skew_bound_d"]
