"""E2 -- Agreement under a Byzantine General.

Paper claim (Theorem 3 Agreement): whatever an adversarial General does --
equivocation, staggered or selective sends, Byzantine helpers -- if any
correct node decides, all correct nodes decide the same value.
"""

from repro.harness.experiments import run_e2_byzantine_general

from benchmarks.conftest import measure_experiment


def bench_e2_byzantine_general(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e2_byzantine_general(n=7, seeds=range(10)),
        "E2: agreement under Byzantine Generals",
    )
    for row in rows:
        assert row["agreement_ok"] == row["runs"], row
        assert row["splits"] == 0
