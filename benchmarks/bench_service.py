"""Service: replicated command-log throughput under open-loop load.

Drives the ``repro.service`` stack (pipelined slot-indexed agreement,
batched commands, measured per-slot state retirement) on the asyncio
backend and records the service-level numbers: commands/s, agreement
instances/s, decide-latency percentiles, and the peak live-instance count
(which must stay within the O(window) bound while thousands of slots
stream through).

Two benches:

* ``bench_service_smoke`` -- always runs; ~2k commands, a few seconds.
* ``bench_service_throughput`` -- the headline sustained run (100k
  commands), ~70 s wall; skipped unless ``REPRO_BENCH_FULL=1`` so routine
  bench sweeps stay quick.  Its committed BENCH_perf.json row survives
  smoke regenerations (the writer merges by name).

Numbers are machine- and load-dependent by design (kind ``service``); the
kernel regression diff ignores them.
"""

from __future__ import annotations

import asyncio
import gc
import os

import pytest

from repro.core.params import ProtocolParams
from repro.harness.benchrecord import summarize_latencies
from repro.runtime.aio import AsyncioCluster
from repro.service import ReplicatedLogService

from benchmarks.conftest import print_rows, record_bench_result

N = 4
F = 1
# d = 100 ms: on a loaded single-core host the loop stalls must stay well
# under d or slots abort non-uniformly (timing-violation territory).
TIME_SCALE = 0.1
# The sustained 100k run stretches past a minute of wall clock, long enough
# for a rare scheduler/GC stall to land inside some slot's window; a larger
# d and extra rate headroom keep the timing assumption true for the whole
# run instead of merely on average.
FULL_TIME_SCALE = 0.15
WINDOW = 8
MAX_BATCH = 128


def _run_service(
    rate: float, total: int, seed: int = 0, time_scale: float = TIME_SCALE
):
    params = ProtocolParams(n=N, f=F, delta=1.0, rho=0.0)

    async def body():
        cluster = AsyncioCluster(params, seed=seed, time_scale=time_scale)
        service = ReplicatedLogService(
            cluster, primary=0, window=WINDOW, max_batch=MAX_BATCH
        )
        try:
            return await service.run_workload(
                rate=rate,
                total=total,
                seed=seed,
                drain_timeout_s=max(60.0, 3.0 * total / rate),
            )
        finally:
            cluster.close()

    # A cyclic-GC pass mid-run is a loop stall the protocol cannot tell from
    # a network fault; collect up front, then keep the collector out of the
    # measured window (refcounting still frees the bulk of the traffic).
    gc.collect()
    gc.disable()
    try:
        report = asyncio.run(body())
    finally:
        gc.enable()
        gc.collect()
    assert report.identical_logs, "service bench diverged"
    assert report.commands_applied == total, "service bench lost commands"
    assert report.bound_violations == 0, "live state exceeded O(window) bound"
    return report


def _row(report) -> dict:
    lat = summarize_latencies(report.latencies)
    return {
        "elapsed_s": report.elapsed_s,
        "commands_per_s": report.commands_per_s,
        "instances_per_s": report.instances_per_s,
        "p50_ms": lat["p50_ms"],
        "p99_ms": lat["p99_ms"],
        "slots_decided": report.slots_decided,
        "slots_aborted": report.slots_aborted,
        "peak_live_instances": report.peak_live_instances,
        "live_bound": report.live_bound,
    }


def _record(
    name: str,
    rate: float,
    total: int,
    report,
    time_scale: float = TIME_SCALE,
) -> None:
    record_bench_result(
        name,
        kind="service",
        backend="asyncio",
        n=N,
        f=F,
        window=WINDOW,
        max_batch=MAX_BATCH,
        time_scale=time_scale,
        offered_rate=rate,
        commands=total,
        **_row(report),
    )


def bench_service_smoke(benchmark):
    holder: dict = {}

    def run() -> None:
        holder["report"] = _run_service(rate=1000.0, total=2000)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = holder["report"]
    print_rows("Service: replicated-log smoke (2k commands)", [_row(report)])
    _record("service_smoke", 1000.0, 2000, report)


def bench_service_throughput(benchmark):
    if os.environ.get("REPRO_BENCH_FULL") != "1":
        pytest.skip("sustained 100k-command run: set REPRO_BENCH_FULL=1")
    holder: dict = {}

    def run() -> None:
        holder["report"] = _run_service(
            rate=1200.0, total=100_000, time_scale=FULL_TIME_SCALE
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = holder["report"]
    print_rows(
        "Service: sustained open-loop throughput (100k commands)",
        [_row(report)],
    )
    _record(
        "service_throughput", 1200.0, 100_000, report,
        time_scale=FULL_TIME_SCALE,
    )
