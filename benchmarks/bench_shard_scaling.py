"""Sharded-kernel scaling: wall seconds and events/s vs shard count.

The sharded kernel's gate is **correctness** -- this bench first replays a
fully *traced* n=25 agreement run serially and sharded and asserts the
ordered trace digests, decision rows, and event counts are bit-identical.
Only then does it time the *untraced* variant of the same run (the shape E9
actually executes) at each shard count.  The timings are *provenance*: they
stamp what the keyed event loop plus the conservative-synchronization
rounds cost on the machine that produced ``BENCH_perf.json``.  On a
single-core container sharding cannot win (there is no second core to
spend the coordination on); on multi-core hosts the same numbers show the
crossover.
"""

from __future__ import annotations

import time

from repro.core.params import ProtocolParams
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.sim.trace import trace_digest

from benchmarks.conftest import print_rows
from repro.harness.benchrecord import record_bench_result

# E9-style workload: one big-n agreement run to the horizon.
BENCH_N = 25
BENCH_SEED = 0
SHARD_COUNTS = (1, 2, 4)


def _timed_run(
    shards: int | None, transport: str = "inline", trace: bool = False
) -> dict:
    """One n=25 agreement run; returns timing + identity facts."""
    params = ProtocolParams(n=BENCH_N, f=1, delta=1.0, rho=1e-4)
    config = ScenarioConfig(
        params=params,
        seed=BENCH_SEED,
        trace=trace,
        shards=shards,
        shard_transport=transport,
    )
    start = time.perf_counter()
    cluster = Cluster(config)
    try:
        cluster.propose(general=0, value="v")
        cluster.run_for(params.delta_agr + 10 * params.d)
        wall_s = time.perf_counter() - start
        events = (
            cluster.events_executed()
            if cluster.sharded
            else cluster.sim.events_executed
        )
        return {
            "shards": shards or 1,
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "digest": trace_digest(cluster.tracer),
            "decisions": sorted(
                (node_id, repr(dec.value))
                for node_id, dec in cluster.latest_decision_per_node(0).items()
            ),
        }
    finally:
        if cluster.sharded:
            cluster.close()


def _best_of(rounds: int, shards: int | None, transport: str = "inline") -> dict:
    """Best wall-clock of ``rounds`` identical runs (damps container noise).

    Every round is asserted bit-identical to the first, so repetition never
    hides a determinism bug behind a fast outlier.
    """
    best = _timed_run(shards, transport)
    for _ in range(rounds - 1):
        again = _timed_run(shards, transport)
        assert again["digest"] == best["digest"]
        assert again["events"] == best["events"]
        if again["wall_s"] < best["wall_s"]:
            best = again
    return best


def bench_shard_scaling(benchmark):
    # --- Correctness gate: full ordered trace digests must match bit for
    # bit before any timing is recorded.
    gate_serial = _timed_run(None, trace=True)
    for shards, transport in ((2, "inline"), (4, "inline"), (2, "process")):
        run = _timed_run(shards, transport=transport, trace=True)
        assert run["digest"] == gate_serial["digest"], (
            f"shards={shards} ({transport}) diverged from serial"
        )
        assert run["decisions"] == gate_serial["decisions"]
        assert run["events"] == gate_serial["events"]

    # --- Timing rows: the untraced workload (what E9 actually runs).
    serial = _best_of(2, None)
    sharded = [_best_of(2, k) for k in SHARD_COUNTS]
    process2 = _timed_run(2, transport="process")
    for run in (*sharded, process2):
        assert run["events"] == serial["events"]
        assert run["decisions"] == serial["decisions"]

    benchmark.pedantic(lambda: _timed_run(2), rounds=1, iterations=1)

    rows = [
        dict(serial, shards="serial"),
        *sharded,
        dict(process2, shards="2 (process)"),
    ]
    for row in rows:
        row.pop("decisions", None)
        row.pop("digest", None)
    print_rows(f"Shard scaling: n={BENCH_N} agreement run, untraced", rows)

    by_count = {run["shards"]: run for run in sharded}
    record_bench_result(
        "shard_scaling",
        kind="shard",
        n=BENCH_N,
        events=serial["events"],
        serial_wall_s=serial["wall_s"],
        serial_events_per_s=serial["events_per_s"],
        **{
            f"shards{k}_wall_s": by_count[k]["wall_s"]
            for k in SHARD_COUNTS
        },
        **{
            f"shards{k}_speedup_vs_serial": serial["wall_s"] / by_count[k]["wall_s"]
            for k in SHARD_COUNTS
        },
        shards2_overhead_frac=by_count[2]["wall_s"] / serial["wall_s"] - 1.0,
        shards2_process_wall_s=process2["wall_s"],
        digest_equal=True,  # asserted above, on fully traced runs
    )
