"""Kernel micro-benchmarks for the simulation fast path.

Three layers get a dedicated throughput number, recorded to
``BENCH_perf.json`` (see ``benchmarks/conftest.py``):

* ``msglog`` -- the condition-driven window-query path, measured head to
  head against the naive :class:`~repro.node.msglog_ref.ReferenceMessageLog`
  (the pre-fast-path implementation).  The incremental log must win by at
  least 3x on the window-query workload; this is the acceptance gate for
  the fast-path rewrite and the regression tripwire for future PRs.
* ``broadcast`` -- Network.broadcast + delivery dispatch rate.
* ``events`` -- raw Simulator schedule/execute/cancel throughput.

A miniature E9 end-to-end run rides along so BENCH_perf.json always has a
whole-pipeline number even when only this file is benchmarked (the full
``bench_e9_scaling`` refreshes the big configuration).
"""

from __future__ import annotations

import time

from repro.harness.experiments import run_e9_scaling
from repro.net.delivery import FixedDelay
from repro.net.network import Network
from repro.node.msglog import MessageLog
from repro.node.msglog_ref import ReferenceMessageLog
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource

from benchmarks.conftest import print_rows, record_bench_result

# ---------------------------------------------------------------------------
# msglog window queries: incremental vs naive reference
# ---------------------------------------------------------------------------
KEY = ("support", 0, "m1")
N_SENDERS = 40
ARRIVALS_PER_SENDER = 60
N_QUERIES = 1000
WINDOW = 3.0


def _fill(log) -> None:
    # Interleave senders along the time axis, the way rounds arrive.
    t = 0.0
    for wave in range(ARRIVALS_PER_SENDER):
        for sender in range(N_SENDERS):
            log.add(KEY, sender, t)
            t += 0.01
    # A sprinkle of out-of-order corruption records.
    for sender in range(0, N_SENDERS, 7):
        log.corrupt_insert(KEY, sender, 0.5 * t)


def _window_queries(log) -> int:
    """The workload under test: sliding count_distinct_in window queries."""
    horizon = ARRIVALS_PER_SENDER * N_SENDERS * 0.01
    step = horizon / N_QUERIES
    checksum = 0
    t = WINDOW
    for _ in range(N_QUERIES):
        checksum += log.count_distinct_in(KEY, t - WINDOW, t)
        t += step
    return checksum


def _mixed_queries(log) -> int:
    """Secondary workload: the other hot predicates."""
    checksum = 0
    for i in range(N_QUERIES // 4):
        t = 1.0 + i * 0.07
        checksum += len(log.distinct_senders_in(KEY, t - WINDOW, t))
        kth = log.kth_latest_distinct(KEY, 1 + i % N_SENDERS)
        checksum += 1 if kth is not None else 0
        earliest = log.earliest_arrival(KEY)
        checksum += 1 if earliest is not None else 0
        checksum += len(log.senders(KEY))
    return checksum


def _best_of(fn, repeats: int = 3) -> tuple[float, int]:
    best = float("inf")
    result = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_msglog_window_query(benchmark):
    fast = MessageLog()
    naive = ReferenceMessageLog()
    _fill(fast)
    _fill(naive)

    fast_s, fast_sum = _best_of(lambda: _window_queries(fast))
    naive_s, naive_sum = _best_of(lambda: _window_queries(naive))
    assert fast_sum == naive_sum  # same answers, or the speedup is fiction

    mixed_fast_s, mixed_fast_sum = _best_of(lambda: _mixed_queries(fast))
    mixed_naive_s, mixed_naive_sum = _best_of(lambda: _mixed_queries(naive))
    assert mixed_fast_sum == mixed_naive_sum

    speedup = naive_s / fast_s
    rows = [
        {
            "workload": "window_query",
            "queries": N_QUERIES,
            "records": fast.total_records(),
            "incremental_s": fast_s,
            "reference_s": naive_s,
            "speedup": speedup,
        },
        {
            "workload": "mixed_query",
            "incremental_s": mixed_fast_s,
            "reference_s": mixed_naive_s,
            "speedup": mixed_naive_s / mixed_fast_s,
        },
    ]
    print_rows("PK1: msglog incremental vs reference", rows)
    record_bench_result(
        "kernel_msglog_window_query",
        kind="kernel",
        queries_per_s=N_QUERIES / fast_s,
        reference_queries_per_s=N_QUERIES / naive_s,
        speedup_vs_reference=speedup,
        mixed_speedup_vs_reference=mixed_naive_s / mixed_fast_s,
        records=fast.total_records(),
    )

    benchmark.pedantic(lambda: _window_queries(fast), rounds=3, iterations=1)
    # Acceptance gate: the incremental log must beat the naive scan >= 3x.
    assert speedup >= 3.0, f"msglog speedup {speedup:.2f}x < 3x"


# ---------------------------------------------------------------------------
# Network broadcast + delivery dispatch
# ---------------------------------------------------------------------------
BCAST_NODES = 50
BCAST_ROUNDS = 100


def _broadcast_run() -> tuple[float, int]:
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05), RandomSource(7), tracer=None)
    for node_id in range(BCAST_NODES):
        net.register(node_id, _sink)
    start = time.perf_counter()
    for i in range(BCAST_ROUNDS):
        net.broadcast(i % BCAST_NODES, ("payload", i))
    sim.run()
    wall = time.perf_counter() - start
    assert net.delivered_count == BCAST_NODES * BCAST_ROUNDS
    return wall, net.delivered_count


def _sink(envelope) -> None:
    pass


def bench_broadcast_dispatch(benchmark):
    wall, delivered = _broadcast_run()
    record_bench_result(
        "kernel_broadcast_dispatch",
        kind="kernel",
        nodes=BCAST_NODES,
        messages=delivered,
        messages_per_s=delivered / wall,
    )
    print_rows(
        "PK2: broadcast dispatch",
        [{"nodes": BCAST_NODES, "messages": delivered, "wall_s": wall}],
    )
    benchmark.pedantic(_broadcast_run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Raw event kernel throughput (schedule + execute + cancel)
# ---------------------------------------------------------------------------
KERNEL_EVENTS = 30000


def _noop() -> None:
    pass


def _event_kernel_run() -> tuple[float, int]:
    sim = Simulator()
    start = time.perf_counter()
    handles = [
        sim.schedule_at(i * 0.001, _noop, tag="k") for i in range(KERNEL_EVENTS)
    ]
    for handle in handles[::3]:
        handle.cancel()  # a third cancelled, as in resend-throttled runs
    live = sim.pending_events  # O(1) now; this used to be a full scan
    executed = sim.run()
    wall = time.perf_counter() - start
    assert executed == live
    assert sim.pending_events == 0
    return wall, executed


def bench_event_kernel(benchmark):
    wall, executed = _event_kernel_run()
    record_bench_result(
        "kernel_events",
        kind="kernel",
        scheduled=KERNEL_EVENTS,
        executed=executed,
        events_per_s=executed / wall,
    )
    print_rows(
        "PK3: event kernel",
        [{"scheduled": KERNEL_EVENTS, "executed": executed, "wall_s": wall}],
    )
    benchmark.pedantic(_event_kernel_run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Miniature E9 end-to-end (full pipeline through the fast path)
# ---------------------------------------------------------------------------
def bench_e9_small_end_to_end(benchmark):
    start = time.perf_counter()
    rows = run_e9_scaling(ns=(4, 7, 10), seeds=range(2))
    wall = time.perf_counter() - start
    record_bench_result(
        "e9_small_end_to_end",
        kind="end_to_end",
        ns=[4, 7, 10],
        seeds=2,
        wall_s=wall,
    )
    print_rows("PK4: E9 (small) end-to-end", rows)
    benchmark.pedantic(
        lambda: run_e9_scaling(ns=(4, 7, 10), seeds=range(2)), rounds=1, iterations=1
    )
