"""Kernel micro-benchmarks for the simulation fast path.

Four layers get a dedicated throughput number, recorded to
``BENCH_perf.json`` (see ``benchmarks/conftest.py``):

* ``msglog`` -- the condition-driven window-query path, measured head to
  head against the naive :class:`~repro.node.msglog_ref.ReferenceMessageLog`
  (the pre-fast-path implementation).  The incremental log must win by at
  least 3x on the window-query workload; this is the acceptance gate for
  the fast-path rewrite and the regression tripwire for future PRs.
* ``evaluator`` -- the push-based msgd-broadcast block evaluator (threshold
  subscriptions + deadline timers) against the eager pull evaluator kept in
  :mod:`repro.core.eval_ref`, fed an identical message stream.  Must win by
  at least 3x; same gate discipline as the msglog one.
* ``broadcast`` -- Network.broadcast + delivery dispatch rate.
* ``events`` -- raw Simulator schedule/execute/cancel throughput.

Miniature E1/E5/E9 end-to-end runs ride along so BENCH_perf.json always
captures a whole-pipeline trajectory -- correctness-bound (E1, tracing on),
speed-bound (E5 vs the TPS'87 baseline), and scaling (E9, tracing on its
zero-cost disabled path) -- even when only this file is benchmarked (the
full ``bench_e*`` modules refresh the big configurations).
"""

from __future__ import annotations

import heapq
import itertools
import time

from repro.core.eval_ref import ReferenceMsgdBroadcast
from repro.core.messages import MBEchoMsg, MBEchoPrimeMsg, MBInitMsg, MBInitPrimeMsg
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import ProtocolParams
from repro.harness.experiments import run_e1_validity, run_e5_msg_driven, run_e9_scaling
from repro.net.delivery import FixedDelay
from repro.net.network import Network
from repro.node.msglog import MessageLog
from repro.node.msglog_ref import ReferenceMessageLog
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource

from benchmarks.conftest import print_rows, record_bench_result

# ---------------------------------------------------------------------------
# msglog window queries: incremental vs naive reference
# ---------------------------------------------------------------------------
KEY = ("support", 0, "m1")
N_SENDERS = 40
ARRIVALS_PER_SENDER = 60
N_QUERIES = 1000
WINDOW = 3.0


def _fill(log) -> None:
    # Interleave senders along the time axis, the way rounds arrive.
    t = 0.0
    for wave in range(ARRIVALS_PER_SENDER):
        for sender in range(N_SENDERS):
            log.add(KEY, sender, t)
            t += 0.01
    # A sprinkle of out-of-order corruption records.
    for sender in range(0, N_SENDERS, 7):
        log.corrupt_insert(KEY, sender, 0.5 * t)


def _window_queries(log) -> int:
    """The workload under test: sliding count_distinct_in window queries."""
    horizon = ARRIVALS_PER_SENDER * N_SENDERS * 0.01
    step = horizon / N_QUERIES
    checksum = 0
    t = WINDOW
    for _ in range(N_QUERIES):
        checksum += log.count_distinct_in(KEY, t - WINDOW, t)
        t += step
    return checksum


def _mixed_queries(log) -> int:
    """Secondary workload: the other hot predicates."""
    checksum = 0
    for i in range(N_QUERIES // 4):
        t = 1.0 + i * 0.07
        checksum += len(log.distinct_senders_in(KEY, t - WINDOW, t))
        kth = log.kth_latest_distinct(KEY, 1 + i % N_SENDERS)
        checksum += 1 if kth is not None else 0
        earliest = log.earliest_arrival(KEY)
        checksum += 1 if earliest is not None else 0
        checksum += len(log.senders(KEY))
    return checksum


def _best_of(fn, repeats: int = 3) -> tuple[float, int]:
    best = float("inf")
    result = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_msglog_window_query(benchmark):
    fast = MessageLog()
    naive = ReferenceMessageLog()
    _fill(fast)
    _fill(naive)

    fast_s, fast_sum = _best_of(lambda: _window_queries(fast))
    naive_s, naive_sum = _best_of(lambda: _window_queries(naive))
    assert fast_sum == naive_sum  # same answers, or the speedup is fiction

    mixed_fast_s, mixed_fast_sum = _best_of(lambda: _mixed_queries(fast))
    mixed_naive_s, mixed_naive_sum = _best_of(lambda: _mixed_queries(naive))
    assert mixed_fast_sum == mixed_naive_sum

    speedup = naive_s / fast_s
    rows = [
        {
            "workload": "window_query",
            "queries": N_QUERIES,
            "records": fast.total_records(),
            "incremental_s": fast_s,
            "reference_s": naive_s,
            "speedup": speedup,
        },
        {
            "workload": "mixed_query",
            "incremental_s": mixed_fast_s,
            "reference_s": mixed_naive_s,
            "speedup": mixed_naive_s / mixed_fast_s,
        },
    ]
    print_rows("PK1: msglog incremental vs reference", rows)
    record_bench_result(
        "kernel_msglog_window_query",
        kind="kernel",
        queries_per_s=N_QUERIES / fast_s,
        reference_queries_per_s=N_QUERIES / naive_s,
        speedup_vs_reference=speedup,
        mixed_speedup_vs_reference=mixed_naive_s / mixed_fast_s,
        records=fast.total_records(),
    )

    benchmark.pedantic(lambda: _window_queries(fast), rounds=3, iterations=1)
    # Acceptance gate: the incremental log must beat the naive scan >= 3x.
    assert speedup >= 3.0, f"msglog speedup {speedup:.2f}x < 3x"


# ---------------------------------------------------------------------------
# msgd-broadcast evaluator: push-based vs eager pull reference
# ---------------------------------------------------------------------------
EVAL_N = 64
EVAL_F = 21
EVAL_ORIGINS = 6
EVAL_ROUNDS = 2


class _BenchTimer:
    """Cancelable handle for the bench host's heap-based manual timers."""

    __slots__ = ("cancelled", "fired")

    def __init__(self) -> None:
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def alive(self) -> bool:
        return not self.cancelled and not self.fired


class _EvalHost:
    """Minimal deterministic host: manual clock, counted observables."""

    trace_enabled = True

    def __init__(self, params: ProtocolParams) -> None:
        self.params = params
        self.node_id = 0
        self.local = 0.0
        self.sent = 0
        self.traced = 0
        self._timers: list[tuple[float, int, object, _BenchTimer]] = []
        self._seq = itertools.count()

    def now(self) -> float:
        return self.local

    def broadcast(self, payload: object) -> None:
        self.sent += 1

    def trace(self, kind: str, **detail: object) -> None:
        self.traced += 1

    def schedule_after(self, delay_local: float, action, tag: str = "") -> _BenchTimer:
        handle = _BenchTimer()
        heapq.heappush(
            self._timers, (self.local + delay_local, next(self._seq), action, handle)
        )
        return handle

    def advance(self, delta: float) -> None:
        target = self.local + delta
        while self._timers and self._timers[0][0] <= target:
            at, _seq, action, handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            handle.fired = True
            self.local = max(self.local, at)
            action()
        self.local = target


def _evaluator_stream(params: ProtocolParams) -> list[tuple[object, int]]:
    """One deterministic saturated workload: every kind reaches all nodes.

    The first sweep drives every triplet through quorum; a second sweep of
    duplicate arrivals models the protocol's repetition tail (re-sends and
    stragglers), where the pull evaluator still pays full window scans and
    the push evaluator's saturated-state skip is O(1).
    """
    stream: list[tuple[object, int]] = []
    for k in range(1, EVAL_ROUNDS + 1):
        for origin in range(1, EVAL_ORIGINS + 1):
            stream.append((MBInitMsg(0, origin, "m", k), origin))
            for cls in (MBEchoMsg, MBInitPrimeMsg, MBEchoPrimeMsg):
                for sender in range(params.n):
                    stream.append((cls(0, origin, "m", k), sender))
    return stream * 2


def _evaluator_run(mb_cls) -> tuple[float, tuple]:
    params = ProtocolParams(n=EVAL_N, f=EVAL_F, delta=1.0, rho=0.0)
    host = _EvalHost(params)
    accepts: list[tuple] = []
    mb = mb_cls(host, 0, lambda *args: accepts.append(args))
    mb.set_anchor(0.0)
    stream = _evaluator_stream(params)
    tick = params.d / 2048.0  # arrivals trickle in, all well before deadlines
    start = time.perf_counter()
    for msg, sender in stream:
        host.advance(tick)
        mb.on_message(msg, sender)
    wall = time.perf_counter() - start
    digest = (host.sent, len(accepts), len(mb.accepted), len(mb.broadcasters))
    return wall, digest


def bench_evaluator_push_vs_pull(benchmark):
    # _evaluator_run times the message loop itself (setup excluded); take
    # the best inner wall of three runs per evaluator.
    push_s, push_digest = min(_evaluator_run(MsgdBroadcast) for _ in range(3))
    pull_s, pull_digest = min(_evaluator_run(ReferenceMsgdBroadcast) for _ in range(3))
    assert push_digest == pull_digest  # same behaviour, or the speedup is fiction

    speedup = pull_s / push_s
    arrivals = len(_evaluator_stream(ProtocolParams(n=EVAL_N, f=EVAL_F, delta=1.0, rho=0.0)))
    print_rows(
        "PK5: msgd evaluator push vs pull",
        [
            {
                "arrivals": arrivals,
                "push_s": push_s,
                "pull_s": pull_s,
                "speedup": speedup,
                "accepts": push_digest[2],
            }
        ],
    )
    record_bench_result(
        "kernel_evaluator_push",
        kind="kernel",
        arrivals=arrivals,
        arrivals_per_s=arrivals / push_s,
        reference_arrivals_per_s=arrivals / pull_s,
        speedup_vs_reference=speedup,
    )
    benchmark.pedantic(lambda: _evaluator_run(MsgdBroadcast), rounds=3, iterations=1)
    # Acceptance gate: the push evaluator must beat the eager pull >= 3x.
    assert speedup >= 3.0, f"evaluator speedup {speedup:.2f}x < 3x"


# ---------------------------------------------------------------------------
# Network broadcast + delivery dispatch
# ---------------------------------------------------------------------------
BCAST_NODES = 50
BCAST_ROUNDS = 100


def _broadcast_run() -> tuple[float, int]:
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05), RandomSource(7), tracer=None)
    for node_id in range(BCAST_NODES):
        net.register(node_id, _sink)
    start = time.perf_counter()
    for i in range(BCAST_ROUNDS):
        net.broadcast(i % BCAST_NODES, ("payload", i))
    sim.run()
    wall = time.perf_counter() - start
    assert net.delivered_count == BCAST_NODES * BCAST_ROUNDS
    return wall, net.delivered_count


def _sink(envelope) -> None:
    pass


def bench_broadcast_dispatch(benchmark):
    wall, delivered = _broadcast_run()
    record_bench_result(
        "kernel_broadcast_dispatch",
        kind="kernel",
        nodes=BCAST_NODES,
        messages=delivered,
        messages_per_s=delivered / wall,
    )
    print_rows(
        "PK2: broadcast dispatch",
        [{"nodes": BCAST_NODES, "messages": delivered, "wall_s": wall}],
    )
    benchmark.pedantic(_broadcast_run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Raw event kernel throughput (schedule + execute + cancel)
# ---------------------------------------------------------------------------
KERNEL_EVENTS = 30000


def _noop() -> None:
    pass


def _event_kernel_run() -> tuple[float, int]:
    sim = Simulator()
    start = time.perf_counter()
    handles = [
        sim.schedule_at(i * 0.001, _noop, tag="k") for i in range(KERNEL_EVENTS)
    ]
    for handle in handles[::3]:
        handle.cancel()  # a third cancelled, as in resend-throttled runs
    live = sim.pending_events  # O(1) now; this used to be a full scan
    executed = sim.run()
    wall = time.perf_counter() - start
    assert executed == live
    assert sim.pending_events == 0
    return wall, executed


def bench_event_kernel(benchmark):
    wall, executed = _event_kernel_run()
    record_bench_result(
        "kernel_events",
        kind="kernel",
        scheduled=KERNEL_EVENTS,
        executed=executed,
        events_per_s=executed / wall,
    )
    print_rows(
        "PK3: event kernel",
        [{"scheduled": KERNEL_EVENTS, "executed": executed, "wall_s": wall}],
    )
    benchmark.pedantic(_event_kernel_run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Miniature E1/E5/E9 end-to-end (full pipeline through the fast path)
# ---------------------------------------------------------------------------
def bench_e1_small_end_to_end(benchmark):
    start = time.perf_counter()
    rows = run_e1_validity(ns=(4, 7), seeds=range(2))
    wall = time.perf_counter() - start
    record_bench_result(
        "e1_small_end_to_end",
        kind="end_to_end",
        ns=[4, 7],
        seeds=2,
        wall_s=wall,
    )
    print_rows("PK6: E1 (small) end-to-end", rows)
    benchmark.pedantic(
        lambda: run_e1_validity(ns=(4, 7), seeds=range(2)), rounds=1, iterations=1
    )


def bench_e5_small_end_to_end(benchmark):
    start = time.perf_counter()
    rows = run_e5_msg_driven(delay_fracs=(0.25, 1.0), seeds=range(2))
    wall = time.perf_counter() - start
    record_bench_result(
        "e5_small_end_to_end",
        kind="end_to_end",
        delay_fracs=[0.25, 1.0],
        seeds=2,
        wall_s=wall,
    )
    print_rows("PK7: E5 (small) end-to-end", rows)
    benchmark.pedantic(
        lambda: run_e5_msg_driven(delay_fracs=(0.25, 1.0), seeds=range(2)),
        rounds=1,
        iterations=1,
    )


def bench_e9_small_end_to_end(benchmark):
    start = time.perf_counter()
    rows = run_e9_scaling(ns=(4, 7, 10), seeds=range(2))
    wall = time.perf_counter() - start
    record_bench_result(
        "e9_small_end_to_end",
        kind="end_to_end",
        ns=[4, 7, 10],
        seeds=2,
        wall_s=wall,
    )
    print_rows("PK4: E9 (small) end-to-end", rows)
    benchmark.pedantic(
        lambda: run_e9_scaling(ns=(4, 7, 10), seeds=range(2)), rounds=1, iterations=1
    )
