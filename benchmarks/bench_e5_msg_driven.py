"""E5 -- Message-driven vs time-driven round structure.

Paper claim (Sections 1, 5): ss-Byz-Agree progresses "at the speed of
actual message delivery time"; the TPS'87 baseline it is modeled on pays a
full worst-case phase ``Phi`` per round regardless of how fast the network
actually is.  The speedup column is the paper's headline systems win.
"""

from repro.harness.experiments import run_e5_msg_driven

from benchmarks.conftest import measure_experiment


def bench_e5_msg_driven(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e5_msg_driven(
            n=7, delay_fracs=(0.1, 0.25, 0.5, 0.75, 1.0), seeds=range(5)
        ),
        "E5: message-driven vs time-driven latency",
    )
    speedups = [row["speedup"] for row in rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups == sorted(speedups, reverse=True)  # faster net, bigger win
