"""E9 -- Message complexity and scaling.

Shape claim: the protocol exchanges O(n^2) messages per phase (every wave
is an all-to-all of one message kind), and decision latency is independent
of n when the General is correct (the fast path is a constant number of
message exchanges).
"""

from repro.harness.experiments import run_e9_scaling

from benchmarks.conftest import measure_experiment


def bench_e9_scaling(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e9_scaling(ns=(4, 7, 10, 13, 16, 19, 22, 25), seeds=range(3)),
        "E9: message complexity and latency vs n",
    )
    messages = [row["messages_mean"] for row in rows]
    assert messages == sorted(messages)
    latencies = [row["latency_mean_d"] for row in rows]
    assert max(latencies) <= 4.0  # correct-General fast path stays constant
