"""A1 -- ablating the phase length Phi = 8d.

Design-choice check: the paper's Phi = tau_skew + 2d gives every relay
round enough slack for a full message exchange at worst-case skew and
delay.  Shrinking it must break Agreement in relay-dependent scenarios --
and restoring the paper's value must restore correctness.
"""

from repro.harness.ablations import run_a1_phi_ablation

from benchmarks.conftest import measure_experiment


def bench_a1_phi_ablation(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_a1_phi_ablation(phi_scales=(0.25, 0.5, 0.75, 1.0), seeds=range(8)),
        "A1: agreement vs phase-length scale",
    )
    by_scale = {row["phi_scale"]: row for row in rows}
    # The paper's Phi is safe...
    assert by_scale[1.0]["violations"] == 0
    # ...and meaningfully load-bearing: aggressive shrinking breaks runs.
    assert by_scale[0.25]["violations"] > 0
