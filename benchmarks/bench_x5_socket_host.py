"""X5: socket runtime backend -- end-to-end agreement latency over UDP.

The socket backend (``repro.runtime.socket_host``) runs the exact protocol
code of the simulator as one OS process per node exchanging authenticated
UDP frames on localhost.  This bench measures what the full deployment
shape costs in wall clock: one n = 4, f = 1 agreement per round with one
mirror-amplifying Byzantine sender, at the conservative default
(d = 50 ms) and a tighter scale (d = 20 ms) that leans on the kernel's
scheduling precision.  Spawn overhead (4 interpreter starts per run) is
reported separately from the agreement itself via the protocol-time return
stamp.

Recorded to ``BENCH_perf.json`` (kind ``end_to_end``; the kernel
regression diff ignores it -- socket numbers are machine- and
load-dependent by design).
"""

from __future__ import annotations

import time

from repro.faults.byzantine import MirrorParticipantStrategy
from repro.runtime.socket_host import run_agreement_socket

from benchmarks.conftest import print_rows, record_bench_result

N = 4
F = 1
SEEDS = (0, 1)
TIME_SCALES = (0.05, 0.02)


def _one_agreement(seed: int, time_scale: float) -> dict:
    start = time.perf_counter()
    report, decisions = run_agreement_socket(
        n=N,
        f=F,
        seed=seed,
        value="bench",
        byzantine={N - 1: MirrorParticipantStrategy()},
        time_scale=time_scale,
    )
    wall_s = time.perf_counter() - start
    decided = [d for d in decisions.values() if d.decided]
    assert len(decided) == len(report.correct_ids), "bench run failed to agree"
    assert {d.value for d in decided} == {"bench"}
    assert report.clean_exit, "bench run leaked timers or children"
    # Coalescing must never cost correctness: every datagram the lean wire
    # path emits (BATCH or single) has to authenticate and decode cleanly.
    assert report.rejected_count == 0, (
        f"bench run rejected {report.rejected_count} frame(s)"
    )
    return {
        "seed": seed,
        "time_scale_s": time_scale,
        "wall_s": wall_s,
        "last_return_local": max(d.returned_local for d in decided),
        "messages_sent": report.sent_count,
        "datagrams_sent": report.datagrams_sent,
        "messages_delivered": report.delivered_count,
        "frames_rejected": report.rejected_count,
    }


def bench_x5_socket_agreement_latency(benchmark):
    rows = [
        _one_agreement(seed, scale) for scale in TIME_SCALES for seed in SEEDS
    ]
    print_rows("X5: socket host end-to-end agreement latency (UDP)", rows)

    by_scale = {
        scale: [row for row in rows if row["time_scale_s"] == scale]
        for scale in TIME_SCALES
    }
    record_bench_result(
        "x5_socket_host",
        kind="end_to_end",
        n=N,
        f=F,
        seeds=len(SEEDS),
        byzantine="mirror",
        transport="udp-localhost",
        scales={
            str(scale): {
                "mean_wall_s": sum(r["wall_s"] for r in group) / len(group),
                "mean_return_local": sum(r["last_return_local"] for r in group)
                / len(group),
            }
            for scale, group in by_scale.items()
        },
    )
    benchmark.pedantic(
        lambda: _one_agreement(0, TIME_SCALES[0]), rounds=2, iterations=1
    )
