"""Shared helpers for the benchmark suite.

Each ``bench_eXX_*.py`` regenerates one experiment from DESIGN.md section 4:
it prints the experiment's result table (the artifact EXPERIMENTS.md
records) and reports wall-clock via pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Machine-readable output
-----------------------
Every benchmark records its headline numbers through
:func:`record_bench_result`; at session end the accumulated results are
written to ``BENCH_perf.json`` at the repo root, together with enough
machine metadata to compare runs.  ``measure_experiment`` does this
automatically for the experiment benches (wall seconds per driver), and
``benchmarks/bench_perf_kernel.py`` adds the kernel micro-benchmarks
(msglog query throughput, broadcast dispatch rate, raw events/sec).  The
perf trajectory of the fast path is tracked in that file from PR 1 onward;
``scripts/bench_smoke.sh`` validates it stays well-formed.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.harness.benchrecord import (
    has_results,
    record_bench_result,
    write_bench_json,
)

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def print_rows(title: str, rows: list[dict]) -> None:
    """Print an experiment's result table in a stable, greppable format."""
    print(f"\n=== {title} ===")
    for row in rows:
        cells = ", ".join(f"{key}={_fmt(value)}" for key, value in row.items())
        print(f"  {cells}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _slug(title: str) -> str:
    """'E9: message complexity ...' -> 'e9_message_complexity_...'."""
    cleaned = "".join(c if c.isalnum() else "_" for c in title.lower())
    while "__" in cleaned:
        cleaned = cleaned.replace("__", "_")
    return cleaned.strip("_")


def measure_experiment(benchmark, fn: Callable[[], list[dict]], title: str) -> list[dict]:
    """Benchmark an experiment driver with a single timed round, print the
    rows it produced, and record wall-clock for BENCH_perf.json."""
    result_holder: dict = {}

    def run() -> None:
        start = time.perf_counter()
        result_holder["rows"] = fn()
        result_holder["wall_s"] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result_holder["rows"]
    print_rows(title, rows)
    record_bench_result(
        _slug(title),
        kind="experiment",
        title=title,
        wall_s=result_holder["wall_s"],
        rows=len(rows),
    )
    return rows


def pytest_sessionfinish(session, exitstatus) -> None:
    """Emit BENCH_perf.json when any benchmark recorded results."""
    if not has_results():
        return
    count = write_bench_json(BENCH_JSON_PATH)
    print(f"\nwrote {count} benchmark result(s) to {BENCH_JSON_PATH}")
