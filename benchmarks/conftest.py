"""Shared helpers for the benchmark suite.

Each ``bench_eXX_*.py`` regenerates one experiment from DESIGN.md section 4:
it prints the experiment's result table (the artifact EXPERIMENTS.md
records) and reports wall-clock via pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Callable


def print_rows(title: str, rows: list[dict]) -> None:
    """Print an experiment's result table in a stable, greppable format."""
    print(f"\n=== {title} ===")
    for row in rows:
        cells = ", ".join(f"{key}={_fmt(value)}" for key, value in row.items())
        print(f"  {cells}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def measure_experiment(benchmark, fn: Callable[[], list[dict]], title: str) -> list[dict]:
    """Benchmark an experiment driver with a single timed round and print
    the rows it produced."""
    result_holder: dict = {}

    def run() -> None:
        result_holder["rows"] = fn()

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result_holder["rows"]
    print_rows(title, rows)
    return rows
