"""E6 -- The resilience bound n > 3f is tight.

Paper claim (Theorem 3 assumption): agreement holds when n > 3f.  The same
coordinated split-world attack that provably fails with f' = 2 at n = 7
partitions the correct nodes when run with f' = 3 (n <= 3f').
"""

from repro.harness.experiments import run_e6_resilience

from benchmarks.conftest import measure_experiment


def bench_e6_resilience(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e6_resilience(seeds=range(10)),
        "E6: resilience boundary (split-world attack)",
    )
    within, beyond = rows
    assert within["agreement_ok"] == within["runs"]
    assert beyond["splits"] == beyond["runs"]
