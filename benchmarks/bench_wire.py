"""Wire micro-benchmarks: the lean path against the PR 5 reference path.

Four layers of the rebuilt wire pipeline get a number in BENCH_perf.json:

* ``wire_batch_pipeline`` -- the headline gate.  Encode-and-authenticate a
  protocol-shaped message stream through the lean path (msgpack skeletons
  into a reused buffer, coalesced into BATCH datagrams, primed-HMAC seal)
  against the PR 5 reference path (``encode_frame`` with the JSON codec:
  fresh dict tree, fresh bytes, fresh HMAC per message).  Must win >= 3x;
  this is the acceptance gate for the rewrite and the regression tripwire
  for future PRs (``speedup_vs_reference`` is machine-independent).
* ``wire_codec_encode`` / ``wire_codec_decode`` -- frames/s per codec on
  single-frame encode and decode, lean vs reference paths side by side.
* ``wire_hmac_seal`` -- authentication throughput (MB/s) of the primed
  memoryview seal against per-frame ``hmac.new`` over concatenated bytes.
* ``wire_coalesce`` -- datagrams emitted for a broadcast-wave workload,
  coalesced vs naive, plus messages/s through the batcher.
* ``wire_socket_pingpong`` -- full-stack UDP loopback RTT: encode, sendto,
  recvfrom, decode, reply.  Wall-clock-bound, so recorded as
  ``end_to_end`` (informational, not regression-gated).
"""

from __future__ import annotations

import socket
import time

from repro.core.messages import ApproveMsg, MBEchoMsg, MBInitMsg, SupportMsg
from repro.runtime.framing import (
    FrameBatcher,
    FrameEncoder,
    decode_frame,
    decode_frames,
    derive_key,
    encode_frame,
)

from benchmarks.conftest import print_rows, record_bench_result

KEY = derive_key("bench-wire")
N_MSGS = 2000
N_RECEIVERS = 8  # a broadcast wave fans each message out to n-1 peers


def _message_stream(count: int) -> list:
    """A protocol-shaped mix: the message classes the hot path carries."""
    stream = []
    for i in range(count):
        k = 1 + i % 3
        origin = i % N_RECEIVERS
        stream.append(
            (
                MBInitMsg(0, origin, "m", k),
                MBEchoMsg(0, origin, "m", k),
                SupportMsg(i % 4, "v"),
                ApproveMsg(i % 4, ("t", i % 7)),
            )[i % 4]
        )
    return stream


def _best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ---------------------------------------------------------------------------
# Headline gate: lean batched pipeline vs PR 5 reference path
# ---------------------------------------------------------------------------
def _reference_pipeline(stream) -> int:
    """The PR 5 path: JSON tree, fresh bytes, fresh HMAC, one datagram each."""
    total = 0
    for msg in stream:
        frame = encode_frame(0, msg, KEY, sent_at=1.0, codec="json")
        total += len(frame)
    return total


def _lean_pipeline(stream, encoder: FrameEncoder, batcher: FrameBatcher) -> int:
    """The lean path: skeleton msgpack into a reused buffer, coalesced."""
    for i, msg in enumerate(stream):
        batcher.add(i % N_RECEIVERS, 0, encoder.encode_body(msg, 1.0))
    batcher.flush()
    return 0


def bench_wire_batch_pipeline(benchmark):
    stream = _message_stream(N_MSGS)

    sink = {"bytes": 0, "datagrams": 0, "messages": 0}

    def transmit(receiver, frame_buf, count) -> None:
        sink["bytes"] += len(frame_buf)
        sink["datagrams"] += 1
        sink["messages"] += count

    encoder = FrameEncoder(KEY, "msgpack")
    batcher = FrameBatcher(encoder, transmit)

    lean_s, _ = _best_of(lambda: _lean_pipeline(stream, encoder, batcher))
    ref_s, _ = _best_of(lambda: _reference_pipeline(stream))

    # The lean datagrams must actually decode back to the stream (each
    # flush interleaves receivers, so compare the per-receiver payloads).
    frames_by_receiver: dict[int, list] = {}
    replay = FrameBatcher(
        encoder,
        lambda r, buf, n: frames_by_receiver.setdefault(r, []).extend(
            f.payload for f in decode_frames(bytes(buf), KEY)
        ),
    )
    _lean_pipeline(stream, encoder, replay)
    for receiver, payloads in frames_by_receiver.items():
        expected = [m for i, m in enumerate(stream) if i % N_RECEIVERS == receiver]
        assert payloads == expected, "lean pipeline corrupted the stream"

    speedup = ref_s / lean_s
    rows = [
        {
            "messages": N_MSGS,
            "lean_s": lean_s,
            "reference_s": ref_s,
            "speedup": speedup,
            "lean_msgs_per_s": N_MSGS / lean_s,
        }
    ]
    print_rows("W1: lean batched pipeline vs PR5 reference", rows)
    record_bench_result(
        "wire_batch_pipeline",
        kind="kernel",
        messages=N_MSGS,
        frames_per_s=N_MSGS / lean_s,
        reference_frames_per_s=N_MSGS / ref_s,
        speedup_vs_reference=speedup,
    )
    benchmark.pedantic(
        lambda: _lean_pipeline(stream, encoder, batcher), rounds=3, iterations=1
    )
    # Acceptance gate: the lean path must beat the PR 5 path >= 3x.
    assert speedup >= 3.0, f"wire pipeline speedup {speedup:.2f}x < 3x"


# ---------------------------------------------------------------------------
# Per-codec encode/decode throughput
# ---------------------------------------------------------------------------
def bench_wire_codec_encode_decode(benchmark):
    stream = _message_stream(N_MSGS)
    rows = []
    recorded: dict[str, float] = {}
    for codec in ("json", "msgpack"):
        encoder = FrameEncoder(KEY, codec)
        enc_s, _ = _best_of(
            lambda e=encoder: sum(len(e.encode(0, m, 1.0)) for m in stream)
        )
        frames = [bytes(encoder.encode(0, m, 1.0)) for m in stream]
        dec_s, _ = _best_of(
            lambda fs=frames: sum(1 for f in fs if decode_frame(f, KEY))
        )
        wire_bytes = sum(len(f) for f in frames)
        rows.append(
            {
                "codec": codec,
                "encode_frames_per_s": N_MSGS / enc_s,
                "decode_frames_per_s": N_MSGS / dec_s,
                "bytes_per_frame": wire_bytes / N_MSGS,
            }
        )
        recorded[f"{codec}_encode_frames_per_s"] = N_MSGS / enc_s
        recorded[f"{codec}_decode_frames_per_s"] = N_MSGS / dec_s
        recorded[f"{codec}_bytes_per_frame"] = wire_bytes / N_MSGS
    print_rows("W2: per-codec encode/decode", rows)
    # msgpack is preferred because it wins on both axes; keep that visible.
    record_bench_result(
        "wire_codec_encode",
        kind="kernel",
        frames_per_s=recorded["msgpack_encode_frames_per_s"],
        **{k: v for k, v in recorded.items() if "encode" in k or "bytes" in k},
    )
    record_bench_result(
        "wire_codec_decode",
        kind="kernel",
        frames_per_s=recorded["msgpack_decode_frames_per_s"],
        **{k: v for k, v in recorded.items() if "decode" in k},
    )
    encoder = FrameEncoder(KEY, "msgpack")
    benchmark.pedantic(
        lambda: [encoder.encode(0, m, 1.0) for m in stream], rounds=3, iterations=1
    )


# ---------------------------------------------------------------------------
# HMAC seal throughput: authentication cost of the wire, small and large
# ---------------------------------------------------------------------------
HMAC_FRAMES = 4000
HMAC_BATCH_BODY = 14000  # a near-full BATCH datagram


def bench_wire_hmac_seal(benchmark):
    # Authentication throughput of the seal path at the two sizes that
    # matter: a single protocol message (~100 B, per-frame overhead bound)
    # and a near-full BATCH datagram (bandwidth bound).  Note the per-seal
    # HMAC is NOT where the lean path wins -- hmac.new is already C-fast --
    # the win is coalescing: one seal per BATCH datagram instead of one per
    # message (see W1/W4).  This row keeps the authentication cost itself
    # on the record so a future HMAC regression trips the gate.
    encoder = FrameEncoder(KEY, "msgpack")
    small = bytes(encoder.encode_body(MBEchoMsg(0, 1, "m", 1), 1.0))
    large = bytes(encoder.encode_body("x" * HMAC_BATCH_BODY, 1.0))

    def seal(body: bytes) -> int:
        total = 0
        for _ in range(HMAC_FRAMES):
            total += len(encoder.frame(0, body))
        return total

    small_s, small_bytes = _best_of(lambda: seal(small))
    large_s, large_bytes = _best_of(lambda: seal(large))
    rows = [
        {
            "body_bytes": len(small),
            "seals_per_s": HMAC_FRAMES / small_s,
            "mb_per_s": small_bytes / small_s / 1e6,
        },
        {
            "body_bytes": len(large),
            "seals_per_s": HMAC_FRAMES / large_s,
            "mb_per_s": large_bytes / large_s / 1e6,
        },
    ]
    print_rows("W3: HMAC seal throughput", rows)
    record_bench_result(
        "wire_hmac_seal",
        kind="kernel",
        frames=HMAC_FRAMES,
        small_body_bytes=len(small),
        seals_per_s=HMAC_FRAMES / small_s,
        batch_body_bytes=len(large),
        mb_per_s=large_bytes / large_s / 1e6,
    )
    benchmark.pedantic(lambda: seal(large), rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Coalescing: datagram count for a broadcast-wave workload
# ---------------------------------------------------------------------------
def bench_wire_coalesce(benchmark):
    stream = _message_stream(N_MSGS)
    encoder = FrameEncoder(KEY, "msgpack")

    counts = {"datagrams": 0}
    batcher = FrameBatcher(
        encoder, lambda r, buf, n: counts.__setitem__("datagrams", counts["datagrams"] + 1)
    )

    def coalesced() -> int:
        counts["datagrams"] = 0
        for i, msg in enumerate(stream):
            batcher.add(i % N_RECEIVERS, 0, encoder.encode_body(msg, 1.0))
            if i % 64 == 63:  # a loop-tick boundary every 64 sends
                batcher.flush()
        batcher.flush()
        return counts["datagrams"]

    def naive() -> int:
        datagrams = 0
        for msg in stream:
            encoder.encode(0, msg, 1.0)
            datagrams += 1
        return datagrams

    coal_s, coal_datagrams = _best_of(coalesced)
    naive_s, naive_datagrams = _best_of(naive)
    print_rows(
        "W4: coalesced vs naive datagrams",
        [
            {
                "messages": N_MSGS,
                "coalesced_datagrams": coal_datagrams,
                "naive_datagrams": naive_datagrams,
                "msgs_per_datagram": N_MSGS / coal_datagrams,
                "coalesced_s": coal_s,
                "naive_s": naive_s,
            }
        ],
    )
    record_bench_result(
        "wire_coalesce",
        kind="kernel",
        messages=N_MSGS,
        coalesced_datagrams=coal_datagrams,
        naive_datagrams=naive_datagrams,
        datagram_reduction=naive_datagrams / coal_datagrams,
        frames_per_s=N_MSGS / coal_s,
    )
    benchmark.pedantic(coalesced, rounds=3, iterations=1)
    assert coal_datagrams < naive_datagrams / 4, "coalescing barely coalesced"


# ---------------------------------------------------------------------------
# Full-stack UDP loopback ping-pong (informational: wall-clock bound)
# ---------------------------------------------------------------------------
PINGPONGS = 400


def bench_wire_socket_pingpong(benchmark):
    a = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    b = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    a.bind(("127.0.0.1", 0))
    b.bind(("127.0.0.1", 0))
    a.settimeout(5.0)
    b.settimeout(5.0)
    addr_a, addr_b = a.getsockname(), b.getsockname()
    enc_a, enc_b = FrameEncoder(KEY, "msgpack"), FrameEncoder(KEY, "msgpack")
    msg = MBEchoMsg(0, 1, "m", 1)

    def pingpong_round() -> None:
        a.sendto(bytes(enc_a.encode(0, msg, 1.0)), addr_b)
        data, _ = b.recvfrom(65536)
        ping = decode_frame(data, KEY)
        b.sendto(bytes(enc_b.encode(1, ping.payload, 2.0)), addr_a)
        data, _ = a.recvfrom(65536)
        decode_frame(data, KEY)

    try:
        pingpong_round()  # warm the route
        wall, _ = _best_of(lambda: [pingpong_round() for _ in range(PINGPONGS)], 2)
        rtt_us = wall / PINGPONGS * 1e6
        print_rows(
            "W5: UDP loopback ping-pong",
            [{"round_trips": PINGPONGS, "rtt_us": rtt_us, "pingpongs_per_s": PINGPONGS / wall}],
        )
        record_bench_result(
            "wire_socket_pingpong",
            kind="end_to_end",
            round_trips=PINGPONGS,
            rtt_us=rtt_us,
            pingpongs_per_s=PINGPONGS / wall,
        )
        benchmark.pedantic(pingpong_round, rounds=3, iterations=1)
    finally:
        a.close()
        b.close()
