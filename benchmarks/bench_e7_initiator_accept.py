"""E7 -- Initiator-Accept bounds (Theorem 1).

Paper claims: with a correct General all correct nodes I-accept within 4d
of initiation (IA-1A), within 2d of each other (IA-1B), with anchors within
d of each other (IA-1C) and inside [t0 - d, t0 + 4d] (IA-1D).
"""

from repro.harness.experiments import run_e7_initiator_accept

from benchmarks.conftest import measure_experiment


def bench_e7_initiator_accept(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e7_initiator_accept(ns=(4, 7, 10), seeds=range(10)),
        "E7: Initiator-Accept bounds (IA-1)",
    )
    for row in rows:
        assert row["ia1_ok"] == row["runs"]
        assert row["accept_spread_max_d"] <= row["accept_spread_bound_d"]
        assert row["anchor_spread_max_d"] <= row["anchor_spread_bound_d"]
