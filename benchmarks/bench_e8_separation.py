"""E8 -- Separation / Uniqueness across recurrent agreements.

Paper claims (IA-4, Timeliness-4): anchors of agreements on *different*
values are more than 4d apart; anchors for the *same* value are within 6d
(same execution) or more than 2 Delta_rmv - 3d apart (separate executions).
"""

from repro.harness.experiments import run_e8_separation

from benchmarks.conftest import measure_experiment


def bench_e8_separation(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e8_separation(n=7, rounds=3, seeds=range(5)),
        "E8: separation across recurrent agreements",
    )
    row = rows[0]
    assert row["separation_ok"] == row["runs"]
    assert row["separation_and_agreement_ok"] == row["runs"]
