"""E1 -- Validity + Timeliness-2 with a correct General.

Paper claim (Theorem 3 Validity; Timeliness-2): every correct node decides
the General's value with ``t0 - d <= rt(tau_G_q) <= rt(tau_q) <= t0 + 4d``
and decision spread <= 2d.
"""

from repro.harness.experiments import run_e1_validity

from benchmarks.conftest import measure_experiment


def bench_e1_validity(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e1_validity(ns=(4, 7, 10, 13), seeds=range(10)),
        "E1: validity + timeliness with a correct General",
    )
    for row in rows:
        assert row["validity_ok"] == row["runs"]
        assert row["timeliness_ok"] == row["runs"]
        assert row["latency_max_d"] <= row["latency_bound_d"]
        assert row["spread_max_d"] <= row["spread_bound_d"]
