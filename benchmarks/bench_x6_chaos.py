"""X6: chaos recovery latency -- agreement with vs. without a mid-run kill.

The price of self-healing in wall clock: one n = 4, f = 1 agreement on the
socket backend as the baseline, then the same run with a SIGKILL (full
state loss) one protocol unit in, a supervised scrambled respawn, and the
revenant converging via the General's paced re-initiation wave.  The
headline number is the victim's recovery latency in units of d -- decision
stamp minus kill instant -- against the ``Delta_v + 2 * Delta_agr`` bound
the chaos verdict enforces.

Recorded to ``BENCH_perf.json`` (kind ``end_to_end``; excluded from the
kernel regression diff -- wall numbers here are machine- and
load-dependent by design).
"""

from __future__ import annotations

import time

from repro.faults.live import run_chaos_agreement
from repro.runtime.socket_host import run_agreement_socket

from benchmarks.conftest import print_rows, record_bench_result

N = 4
F = 1
SEEDS = (0, 1)
TIME_SCALE = 0.02


def _baseline(seed: int) -> dict:
    start = time.perf_counter()
    report, decisions = run_agreement_socket(
        n=N, f=F, seed=seed, value="bench", time_scale=TIME_SCALE
    )
    wall_s = time.perf_counter() - start
    decided = [d for d in decisions.values() if d.decided]
    assert len(decided) == len(report.correct_ids), "baseline failed to agree"
    assert report.clean_exit
    return {
        "seed": seed,
        "mode": "no-fault",
        "wall_s": wall_s,
        "last_return_local": max(d.returned_local for d in decided),
    }


def _chaos(seed: int) -> dict:
    start = time.perf_counter()
    chaos = run_chaos_agreement(
        n=N, f=F, seed=seed, value="bench", time_scale=TIME_SCALE
    )
    wall_s = time.perf_counter() - start
    assert chaos.ok, "chaos bench run failed to heal"
    return {
        "seed": seed,
        "mode": "kill+heal",
        "wall_s": wall_s,
        "recovery_latency_d": chaos.recovery_latency_d,
        "recovery_bound_d": chaos.recovery_bound_d,
        "restarts": sum(chaos.report.restart_counts.values()),
    }


def bench_x6_chaos_recovery_latency(benchmark):
    baseline = [_baseline(seed) for seed in SEEDS]
    chaos = [_chaos(seed) for seed in SEEDS]
    print_rows("X6: chaos recovery latency (SIGKILL + supervised heal)", baseline + chaos)

    mean = lambda rows, key: sum(r[key] for r in rows) / len(rows)
    record_bench_result(
        "x6_chaos",
        kind="end_to_end",
        n=N,
        f=F,
        seeds=len(SEEDS),
        transport="udp-localhost",
        time_scale_s=TIME_SCALE,
        baseline_mean_wall_s=mean(baseline, "wall_s"),
        baseline_mean_return_local=mean(baseline, "last_return_local"),
        chaos_mean_wall_s=mean(chaos, "wall_s"),
        mean_recovery_latency_d=mean(chaos, "recovery_latency_d"),
        recovery_bound_d=chaos[0]["recovery_bound_d"],
    )
    benchmark.pedantic(lambda: _chaos(0), rounds=1, iterations=1)
