"""X3 -- fault timelines through the scenario-matrix runner (extension).

Workloads no hand-written ``run_eN`` driver could express: timed, composable
adversary schedules -- a mid-protocol partition that heals *inside* the
decision window, a partition that heals only after it, delay storms, bursty
delivery, and node churn with state loss -- swept over cluster sizes and
seeds by ``repro.harness.suite``.

What must hold: agreement on every cell and every seed (quantified over the
nodes that stayed correct; a cleanly-aborting run is legal).  What the rows
show: the cost -- partition-attributed message loss, elevated latency, and
runs that abort instead of deciding when the cut outlives the window.
"""

from repro.harness.suite import run_suite

from benchmarks.conftest import measure_experiment

TIMELINE_SUITE = {
    "name": "x3-fault-timelines",
    "seeds": [0, 1, 2, 3, 4],
    "base": {"delta": 1.0, "rho": 1e-4, "value": "v", "run_for_d": 24.0},
    "grid": {
        "n": [4, 7],
        "timeline": [
            "none",
            "partition_heal",
            "partition_late_heal",
            "delay_storm",
            "bursty",
            "churn",
        ],
    },
}


def bench_x3_fault_timelines(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_suite(TIMELINE_SUITE),
        "X3: fault timelines (scenario matrix)",
    )
    by_timeline: dict[str, list[dict]] = {}
    for row in rows:
        by_timeline.setdefault(row["timeline"], []).append(row)

    # Agreement survives every adversary schedule, on every seed.
    for row in rows:
        assert row["agreement_ok"] == row["runs"], row

    # Fault-free baseline: everyone decides inside the paper's 4d window.
    for row in by_timeline["none"]:
        assert row["decided_runs"] == row["runs"]
        assert row["latency_max_d"] <= 4.0

    # A partition that heals inside the window: loss is attributed to the
    # partition, and some runs still push the agreement through the cut.
    heal_rows = by_timeline["partition_heal"]
    assert all(row["dropped_partition_mean"] > 0 for row in heal_rows)
    assert sum(row["decided_runs"] for row in heal_rows) >= 1

    # A cut outliving the window costs decisions, never agreement.
    for row in by_timeline["partition_late_heal"]:
        assert row["dropped_partition_mean"] > 0

    # Churned nodes are excluded from the quantifier; the others decide.
    for row in by_timeline["churn"]:
        assert row["decided_runs"] == row["runs"]

    # Delay storms stay inside the legal envelope: no loss, just latency.
    for row in by_timeline["delay_storm"]:
        assert row["dropped_partition_mean"] == 0
        assert row["decided_runs"] == row["runs"]
