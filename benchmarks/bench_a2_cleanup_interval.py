"""A2 -- ablating the background cleanup cadence.

The decay rules (Figures 1-3 cleanup blocks) are what make the protocol
self-stabilizing; this bench stretches how often they run and reports
stabilization success.  The Delta_stb bound has enough slack that moderate
stretching is harmless -- the artifact quantifies "moderate".
"""

from repro.harness.ablations import run_a2_cleanup_interval

from benchmarks.conftest import measure_experiment


def bench_a2_cleanup_interval(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_a2_cleanup_interval(
            intervals_d=(0.5, 1.0, 4.0, 16.0), seeds=range(5)
        ),
        "A2: stabilization vs cleanup cadence",
    )
    default = next(row for row in rows if row["cleanup_interval_d"] == 1.0)
    assert default["recovered"] == default["runs"]
