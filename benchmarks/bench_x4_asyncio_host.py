"""X4: asyncio runtime backend -- end-to-end agreement latency.

The sans-I/O refactor lets the exact protocol code of the simulator run on
real coroutines (``repro.runtime.aio``).  This bench measures what that
costs in wall clock: one n = 4, f = 1 agreement per round, with one
mirror-amplifying Byzantine sender in the cast, at two time scales --
the conservative default (d = 20 ms) and a tight one (d = 5 ms) that
leans on the loop's scheduling precision.

Latency here is wall-clock seconds from proposal to the *last* correct
node's return, plus the protocol-time return stamp, recorded to
``BENCH_perf.json`` (kind ``end_to_end``; the kernel regression diff
ignores it, as asyncio numbers are machine- and load-dependent by design).
"""

from __future__ import annotations

import asyncio
import time

from repro.faults.byzantine import MirrorParticipantStrategy
from repro.runtime.aio import run_agreement_async

from benchmarks.conftest import print_rows, record_bench_result

N = 4
F = 1
SEEDS = (0, 1, 2)
TIME_SCALES = (0.02, 0.005)


def _one_agreement(seed: int, time_scale: float) -> dict:
    start = time.perf_counter()
    cluster, decisions = asyncio.run(
        run_agreement_async(
            n=N,
            f=F,
            seed=seed,
            value="bench",
            byzantine={N - 1: MirrorParticipantStrategy()},
            time_scale=time_scale,
        )
    )
    wall_s = time.perf_counter() - start
    decided = [d for d in decisions.values() if d.decided]
    assert len(decided) == len(cluster.correct_ids), "bench run failed to agree"
    assert {d.value for d in decided} == {"bench"}
    return {
        "seed": seed,
        "time_scale_s": time_scale,
        "wall_s": wall_s,
        "last_return_local": max(d.returned_local for d in decided),
        "messages_sent": cluster.transport.sent_count,
        "messages_delivered": cluster.transport.delivered_count,
    }


def bench_x4_asyncio_agreement_latency(benchmark):
    rows = [
        _one_agreement(seed, scale) for scale in TIME_SCALES for seed in SEEDS
    ]
    print_rows("X4: asyncio host end-to-end agreement latency", rows)

    by_scale = {
        scale: [row for row in rows if row["time_scale_s"] == scale]
        for scale in TIME_SCALES
    }
    record_bench_result(
        "x4_asyncio_host",
        kind="end_to_end",
        n=N,
        f=F,
        seeds=len(SEEDS),
        byzantine="mirror",
        scales={
            str(scale): {
                "mean_wall_s": sum(r["wall_s"] for r in group) / len(group),
                "mean_return_local": sum(r["last_return_local"] for r in group)
                / len(group),
            }
            for scale, group in by_scale.items()
        },
    )
    benchmark.pedantic(
        lambda: _one_agreement(0, TIME_SCALES[-1]), rounds=3, iterations=1
    )
