"""E3 -- Self-stabilization from an arbitrary state.

Paper claim (Corollary 5): the system converges within
``Delta_stb = 2 * Delta_reset`` of the network becoming coherent, from any
initial state -- random and targeted corruption of every protocol variable,
scrambled clocks, and forged in-flight traffic.
"""

from repro.harness.experiments import run_e3_stabilization

from benchmarks.conftest import measure_experiment


def bench_e3_stabilization(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e3_stabilization(n=7, seeds=range(10), garbage_messages=300),
        "E3: convergence from arbitrary state within Delta_stb",
    )
    row = rows[0]
    assert row["proposal_unblocked"] == row["runs"]
    assert row["post_stb_validity"] == row["runs"]
    assert row["post_stb_timeliness"] == row["runs"]
