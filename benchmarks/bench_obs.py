"""Observability scrape overhead: rendering a populated metrics registry.

A ``/metrics`` scrape renders every node's registry into the Prometheus
text format on an HTTP handler thread.  The child poll loop and the
asyncio sampler keep feeding the registries while scrapes happen, so the
render path must stay cheap enough that a per-second scraper is noise
next to protocol work.  ``obs_scrape`` records the full-document render
throughput for a 4-node cluster's worth of populated registries (the
exact document the asyncio control plane serves) plus the parse-back
rate the CI gate's assertions pay.

Wall-clock string formatting, machine-dependent by design (kind
``obs``): informational, not regression-gated.
"""

from __future__ import annotations

import time

from repro.core.agreement import Decision
from repro.obs.metrics import NodeMetrics, parse_prometheus_text

from benchmarks.conftest import print_rows, record_bench_result

N_NODES = 4
#: Latency observations fed per node -- a busy service run's worth.
OBSERVATIONS = 2000
SCRAPES = 200


def _populated_metrics() -> dict[int, NodeMetrics]:
    nodes = {nid: NodeMetrics(nid, time_scale=0.05) for nid in range(N_NODES)}
    for nid, metrics in nodes.items():
        metrics.arrivals.set_total(250_000 + nid)
        metrics.sent.set_total(310_000 + nid)
        metrics.authenticated.set_total(250_000 + nid)
        metrics.rejected.set_total(17)
        metrics.datagrams.set_total(90_000 + nid)
        metrics.watch_fires.set_total(40_000 + nid)
        metrics.live_timers.set(64)
        metrics.live_instances.set(30)
        metrics.commands_applied.set_total(100_000)
        metrics.incarnation.set(nid % 2)
        for i in range(OBSERVATIONS):
            latency = 0.05 + (i % 100) * 0.01
            metrics.decide_latency.observe(latency)
            metrics.observe_decision(
                Decision(
                    node=nid, general=(0, i), value=("c",),
                    tau_g_local=0.0, tau_g_real=0.0,
                    returned_local=latency, returned_real=latency,
                )
            )
    return nodes


def _best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_obs_scrape(benchmark):
    nodes = _populated_metrics()

    def render_all() -> str:
        return "".join(metrics.render() for metrics in nodes.values())

    document = render_all()
    # The document must survive a parse round-trip with every node label.
    parsed = parse_prometheus_text(document)
    for nid in range(N_NODES):
        label = f'{{node="{nid}"}}'
        assert parsed["repro_arrivals_total"][label] == 250_000 + nid
        assert parsed["repro_decide_latency_seconds_count"][label] == (
            OBSERVATIONS
        )

    render_s, _ = _best_of(lambda: [render_all() for _ in range(SCRAPES)])
    parse_s, _ = _best_of(
        lambda: [parse_prometheus_text(document) for _ in range(SCRAPES)]
    )

    scrapes_per_s = SCRAPES / render_s
    rows = [
        {
            "nodes": N_NODES,
            "document_bytes": len(document),
            "scrapes_per_s": scrapes_per_s,
            "parses_per_s": SCRAPES / parse_s,
            "render_ms": render_s / SCRAPES * 1e3,
        }
    ]
    print_rows("OBS: /metrics render + parse throughput", rows)
    record_bench_result(
        "obs_scrape",
        kind="obs",
        nodes=N_NODES,
        document_bytes=len(document),
        scrapes_per_s=scrapes_per_s,
        parses_per_s=SCRAPES / parse_s,
        render_ms=render_s / SCRAPES * 1e3,
    )
    benchmark.pedantic(render_all, rounds=3, iterations=1)
    # A scrape must be far cheaper than a poll-loop tick budget (~10 ms).
    assert render_s / SCRAPES < 0.01, "scrape render exceeded 10 ms"
