"""A3 -- ablating the identical-message re-send throttle.

The paper re-sends Initiator-Accept messages unboundedly; the
implementation throttles identical re-sends to one per d.  This bench
verifies the throttle is a pure message-volume knob: correctness holds at
every setting, traffic scales inversely with the gap.
"""

from repro.harness.ablations import run_a3_resend_throttle

from benchmarks.conftest import measure_experiment


def bench_a3_resend_throttle(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_a3_resend_throttle(gaps_d=(0.5, 1.0, 2.0, 4.0), seeds=range(5)),
        "A3: message volume vs re-send throttle",
    )
    for row in rows:
        assert row["validity_ok"] == row["runs"]
    volumes = [row["messages_mean"] for row in rows]
    assert volumes == sorted(volumes, reverse=True)  # bigger gap, less traffic
