"""E10 -- Classic (non-self-stabilizing) agreement fails where ss-Byz-Agree
recovers.

Paper motivation (Section 1): "Classic Byzantine algorithms cannot
guarantee to execute from an arbitrary state".  We subject classic EIG to a
mid-run transient fault: it silently returns garbage (or splits), while
ss-Byz-Agree subjected to a *harsher* fault (plus forged traffic and
scrambled clocks) recovers and decides correctly after Delta_stb.
"""

from repro.harness.experiments import run_e10_classic_fails

from benchmarks.conftest import measure_experiment


def bench_e10_classic_fails(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e10_classic_fails(n=7, seeds=range(10)),
        "E10: EIG vs ss-Byz-Agree under transient faults",
    )
    row = rows[0]
    assert row["eig_agreed_on_garbage"] + row["eig_disagreement"] >= row["runs"] - 1
    assert row["ss_byz_agree_recovered"] == row["runs"]
