"""E4 -- Early stopping: O(f') rounds with f' actual faults.

Paper claim (Section 1, Timeliness-3): agreement completes within O(f')
communication rounds where f' <= f is the number of *actual* concurrent
faults -- far below the worst-case (2f + 1) Phi when few nodes are faulty.
"""

from repro.harness.experiments import run_e4_early_stopping

from benchmarks.conftest import measure_experiment


def bench_e4_early_stopping(benchmark):
    rows = measure_experiment(
        benchmark,
        lambda: run_e4_early_stopping(n=13, seeds=range(8)),
        "E4: early stopping vs actual fault count f'",
    )
    means = [row["latency_mean_d"] for row in rows]
    assert means[0] <= means[-1]  # latency grows with f'
    for row in rows:
        assert row["validity_ok"] == row["runs"]
        assert row["latency_max_d"] < row["worstcase_bound_d"] / 2
