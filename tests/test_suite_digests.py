"""Golden trace-digest regression for the ``suite --preset smoke`` cells.

The registry golden rows (``tests/test_registry.py``) freeze experiment
*outputs*; this file freezes the scenario engine's *executions*: each smoke
cell's combined per-seed ``trace_digest`` at fixed seeds, captured into
``tests/data/golden_suite_digests.json``.  A digest folds in every per-kind
event count, so a scenario-engine refactor that reorders deliveries, drops
events or perturbs a seed stream trips this even when the consolidated rows
happen to come out the same -- and it must be bit-identical at any worker
count, because (cell, seed) runs are pure functions fanned over the pool.

If a PR changes scenario semantics *on purpose*, regenerate the golden file
with the snippet in its ``generated_by`` note and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.suite import SUITE_PRESETS, run_suite

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_suite_digests.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _cell_view(rows: list[dict]) -> list[dict]:
    return [
        {
            "n": row["n"],
            "cast": row["cast"],
            "policy": row["policy"],
            "timeline": row["timeline"],
            "digest": row["digest"],
        }
        for row in rows
    ]


class TestSmokeSuiteDigests:
    def test_serial_run_matches_golden(self, golden) -> None:
        rows = run_suite(SUITE_PRESETS["smoke"])
        assert _cell_view(rows) == golden["cells"]

    def test_parallel_run_matches_golden(self, golden) -> None:
        """Digest equality must survive process fan-out (workers=2)."""
        rows = run_suite(SUITE_PRESETS["smoke"], workers=2)
        assert _cell_view(rows) == golden["cells"]

    def test_golden_file_covers_every_smoke_cell(self, golden) -> None:
        from repro.harness.suite import expand_grid

        assert len(golden["cells"]) == len(expand_grid(SUITE_PRESETS["smoke"]))
        assert golden["preset"] == "smoke"
