"""Tests for the replicated command-log service.

Unit layer: the coordinator's windowing/batching/abort-requeue and the
applier's gap buffering, abort-as-skip, and measured retirement run against
the deterministic simulator.  Service layer: end-to-end open-loop runs on
the asyncio wall-clock backend, including a Crash/Restart churn timeline
healed via the f+1 repair path.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.agreement import Decision
from repro.core.params import BOTTOM, ProtocolParams
from repro.extensions.concurrent import ConcurrentGeneral
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.service.applier import ReplicaApplier
from repro.service.coordinator import LogCoordinator
from repro.service.workload import OpenLoopWorkload


@pytest.fixture
def params4() -> ProtocolParams:
    return ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)


def _decision(general: tuple, value, when: float = 1.0) -> Decision:
    return Decision(
        node=1,
        general=general,
        value=value,
        tau_g_local=0.0,
        tau_g_real=0.0,
        returned_local=when,
        returned_real=when,
    )


class TestCoordinator:
    def test_windowing_and_batching(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=1))
        coord = LogCoordinator(
            cluster.protocol_node(0), window=2, max_batch=5
        )
        for i in range(23):
            coord.submit_nowait(f"c{i}")
        # Launching is eager while the window has room (the first submits go
        # out solo); once it fills, the remainder queue for batching.
        assert coord.in_flight == 2
        assert coord.backlog == 21
        assert coord.peak_in_flight == 2
        cluster.run_for(6 * params4.delta_agr + 20 * params4.d)
        assert coord.in_flight == 0
        assert coord.backlog == 0
        assert coord.slots_decided == coord.slots_launched
        # Batching compressed 21 queued commands into max_batch-sized slots.
        assert coord.slots_decided < 23
        assert coord.slots_aborted == 0
        assert coord.commands_decided == 23
        assert len(coord.latencies) == 23
        assert all(lat >= 0.0 for lat in coord.latencies)

    def test_abort_requeues_batch_at_front(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=2))
        coord = LogCoordinator(
            cluster.protocol_node(0), window=1, max_batch=4
        )
        for i in range(4):
            coord.submit_nowait(f"c{i}")
        assert coord.in_flight == 1
        coord._on_decision(_decision((0, 0), BOTTOM))
        # The batch went back to the head of the queue and immediately
        # relaunched under a fresh slot -- commands are never lost.
        assert coord.slots_aborted == 1
        assert coord.slots_launched == 2
        assert coord.in_flight == 1
        relaunched = coord._in_flight[1]
        assert [cmd for cmd, _stamp in relaunched] == [f"c{i}" for i in range(4)]

    def test_retirement_gate_bounds_unretired_slots(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=7))
        watermark = {"value": 0}
        coord = LogCoordinator(
            cluster.protocol_node(0),
            window=2,
            max_batch=1,
            retired_watermark=lambda: watermark["value"],
        )
        assert coord.unretired_cap == 6  # default 3 * window
        for i in range(20):
            coord.submit_nowait(f"c{i}")
        # Decide every in-flight slot without moving the watermark: launches
        # must stop at the cap even though the in-flight window has room.
        while coord.in_flight:
            slot = next(iter(coord._in_flight))
            coord._on_decision(_decision((0, slot), (f"v{slot}",)))
        assert coord.slots_launched == coord.unretired_cap
        assert coord.unretired == coord.unretired_cap
        assert coord.in_flight == 0  # gated: decided slots still unretired
        assert coord.backlog == 20 - coord.unretired_cap
        # Retirement advancing re-opens the gate via notify_retired.
        watermark["value"] = 3
        coord.notify_retired()
        assert coord.in_flight == 2
        assert coord.slots_launched == coord.unretired_cap + 2
        assert coord.unretired == coord.unretired_cap - 1

    def test_foreign_decisions_ignored(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=3))
        coord = LogCoordinator(cluster.protocol_node(0), window=1)
        coord.submit_nowait("mine")
        # A decision for another primary's slot must not consume ours.
        coord._on_decision(_decision((2, 0), "other"))
        assert coord.in_flight == 1
        assert coord.slots_decided == 0


class TestApplier:
    def test_out_of_order_decisions_buffer_then_heal(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=4))
        applier = ReplicaApplier(cluster.protocol_node(1), primary=0)
        applier._on_decision(_decision((0, 1), ("b",)))
        assert applier.applied == []  # gap at 0: buffered, not applied
        applier._on_decision(_decision((0, 0), ("a",)))
        assert applier.applied == [(0, ("a",)), (1, ("b",))]
        assert applier.commands_applied == 2
        assert applier.next_index == 2

    def test_abort_recorded_as_skip(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=5))
        applier = ReplicaApplier(cluster.protocol_node(1), primary=0)
        applier._on_decision(_decision((0, 0), BOTTOM))
        applier._on_decision(_decision((0, 1), ("x", "y")))
        assert applier.skipped == [0]
        assert applier.applied == [(1, ("x", "y"))]
        assert applier.commands_applied == 2
        assert applier.next_index == 2  # skips keep the sequence dense
        assert applier.outcome(0) is BOTTOM

    def test_retirement_drains_state_and_gates_stragglers(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=6))
        node1 = cluster.protocol_node(1)
        applier = ReplicaApplier(node1, primary=0, retire_after_d=6.0)
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        for v in ("a", "b", "c"):
            cg.propose((v,))
        cluster.run_for(params4.delta_agr + 10 * params4.d)
        assert applier.next_index == 3
        # 6d after each decision its instance retires, in slot order.
        cluster.run_for(10 * params4.d)
        assert applier.retired_count == 3
        assert applier.live_slot_instances == 0
        # The gate refuses to resurrect retired keys from straggler relays
        # with one monotone check, while future slots pass.
        assert node1.instance_gate((0, 0)) is False
        assert node1.instance_gate((0, 2)) is False
        assert node1.instance_gate((0, 3)) is True
        assert node1.instance_gate("plain-general") is True

    def test_adopt_entries_heals_contiguously(self, params4):
        cluster = Cluster(ScenarioConfig(params=params4, seed=7))
        applier = ReplicaApplier(cluster.protocol_node(1), primary=0)
        adopted = applier.adopt_entries([(0, ("a",)), (1, BOTTOM), (2, ("c",))])
        assert adopted == 3
        assert applier.applied == [(0, ("a",)), (2, ("c",))]
        assert applier.skipped == [1]
        # Re-adopting settled slots is a no-op.
        assert applier.adopt_entries([(0, ("a",))]) == 0


class TestOpenLoopWorkload:
    def test_rejects_bad_config(self):
        async def nop(command, arrival):
            return None

        with pytest.raises(ValueError, match="rate"):
            OpenLoopWorkload(nop, rate=0.0, total=10)
        with pytest.raises(ValueError, match="total"):
            OpenLoopWorkload(nop, rate=10.0, total=0)

    def test_stamps_are_theoretical_arrivals(self):
        stamps: list[float] = []

        async def capture(command, arrival):
            stamps.append(arrival)

        wl = OpenLoopWorkload(
            capture, rate=1000.0, total=50, poisson=False
        )
        asyncio.run(wl.run())
        assert wl.issued == 50
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        # Fixed-interval arrivals: every stamp exactly 1/rate apart,
        # regardless of how fast the submits actually ran.
        assert all(abs(gap - 1e-3) < 1e-9 for gap in gaps)


class TestServiceAsyncio:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_open_loop_run_identical_logs_and_bounded_state(self, params4):
        from repro.runtime.aio import AsyncioCluster
        from repro.service import ReplicatedLogService

        async def body():
            cluster = AsyncioCluster(params4, seed=8, time_scale=0.05)
            service = ReplicatedLogService(
                cluster, primary=0, window=4, max_batch=32
            )
            try:
                report = await service.run_workload(
                    rate=500.0, total=200, seed=1, drain_timeout_s=30.0
                )
                final_live = max(
                    applier.live_slot_instances
                    for applier in service.appliers.values()
                )
                retired = sum(
                    applier.retired_count
                    for applier in service.appliers.values()
                )
                return report, final_live, retired
            finally:
                cluster.close()

        report, final_live, retired = self._run(body())
        assert report.identical_logs
        assert report.commands_applied == 200
        assert report.commands_decided == 200
        # Live protocol state stayed within the O(window) bound DURING the
        # run (sampled), and drained back under it by the end.
        assert report.bound_violations == 0
        assert report.peak_live_instances <= report.live_bound
        assert final_live <= report.live_bound
        assert retired > 0

    def test_crash_restart_churn_heals_to_identical_logs(self, params4):
        from repro.faults.live import crash_in_process, restart_in_process
        from repro.runtime.aio import AsyncioCluster
        from repro.service import ReplicatedLogService

        async def body():
            cluster = AsyncioCluster(params4, seed=9, time_scale=0.05)
            service = ReplicatedLogService(
                cluster, primary=0, window=4, max_batch=16
            )
            victim = cluster.protocol_node(2)
            try:
                service.start()
                workload = OpenLoopWorkload(
                    service.coordinator.submit, rate=400.0, total=400, seed=2
                )
                task = asyncio.create_task(workload.run())
                await asyncio.sleep(0.2)
                crash_in_process(victim, state_loss=True)
                crashed = victim.crashed
                await asyncio.sleep(0.6)
                restart_in_process(victim)
                await task
                await service.drain(timeout_s=5.0)
                lag_before = (
                    service.coordinator.general.next_index
                    - service.appliers[2].next_index
                )
                service.repair()
                await service.stop()
                return service.report(), crashed, lag_before
            finally:
                cluster.close()

        report, crashed, lag_before = self._run(body())
        assert crashed  # the churn actually happened mid-run
        assert lag_before >= 0
        # Every correct replica -- the revenant included -- ends with the
        # identical applied sequence and the full command set.
        assert report.identical_logs
        assert report.commands_applied == 400
        assert min(report.applied_per_replica.values()) == 400
        assert len(set(report.digests.values())) == 1


class TestDrainAndSampling:
    """drain() deadline semantics and the warmup-transition bound check.

    Both run the service against the deterministic simulator (never
    stepped), so pipeline state is exactly what the test put there.
    """

    def _service(self, params4, seed, **kwargs):
        from repro.service import ReplicatedLogService

        cluster = Cluster(ScenarioConfig(params=params4, seed=seed))
        return cluster, ReplicatedLogService(cluster, primary=0, **kwargs)

    def test_drain_zero_timeout_polls_once(self, params4):
        _, service = self._service(params4, 36)

        async def poll():
            # The outer wait_for fails the test (instead of hanging it)
            # if a falsy-timeout regression turns 0 back into "forever".
            return await asyncio.wait_for(
                service.drain(timeout_s=0.0), timeout=5.0
            )

        # Idle pipeline: poll-once succeeds immediately.
        assert asyncio.run(poll()) is True
        # A command in flight that can never decide (the simulator is not
        # running): poll-once must report False, not wait for a deadline
        # that a falsy ``timeout_s=0`` check would have erased.
        service.coordinator.submit_nowait("c0")
        assert asyncio.run(poll()) is False

    def test_warmup_transition_sample_is_bound_checked(
        self, params4, monkeypatch
    ):
        cluster, service = self._service(params4, 37, window=2)
        # sample_state reads timer counts through cluster.hosts; the sim
        # Cluster exposes them via the protocol nodes.
        cluster.hosts = {
            node_id: cluster.protocol_node(node_id)
            for node_id in cluster.correct_ids
        }
        over = service.live_bound + 3
        monkeypatch.setattr(
            ReplicaApplier,
            "live_slot_instances",
            property(lambda self: over),
        )
        # Before the pipeline has filled, over-bound readings are warmup.
        service.sample_state()
        assert not service._warmed_up
        assert service.bound_violations == 0
        # The very sample that completes warmup is itself checked: an
        # overshoot in that sample must count, not slip through the gate.
        service.coordinator.slots_launched = service.window
        service.sample_state()
        assert service._warmed_up
        assert service.bound_violations == 1
        assert service.peak_live_instances == over

    def test_drain_none_timeout_waits_without_deadline(self, params4):
        _, service = self._service(params4, 38)

        async def idle_drain():
            return await service.drain(timeout_s=None)

        # Nothing in flight: returns True without any deadline machinery.
        assert asyncio.run(idle_drain()) is True


class TestRepairVotePath:
    """f+1 vouching in ReplicatedLogService.repair, slot by slot."""

    def _service(self, params4, seed):
        from repro.service import ReplicatedLogService

        cluster = Cluster(ScenarioConfig(params=params4, seed=seed))
        return ReplicatedLogService(cluster, primary=0)

    def test_f_votes_insufficient_f_plus_1_adopts(self, params4):
        service = self._service(params4, 40)
        appliers = service.appliers
        appliers[0].adopt_entries([(0, ("a",))])
        # Only f=1 peer vouches for slot 0: no laggard may adopt it (the
        # lone voucher could be the one faulty replica).
        assert service.repair() == 0
        assert all(
            appliers[nid].next_index == 0 for nid in (1, 2, 3)
        )
        # A second matching voucher reaches f+1: both laggards adopt.
        appliers[1].adopt_entries([(0, ("a",))])
        assert service.repair() == 2
        assert appliers[2].applied == [(0, ("a",))]
        assert appliers[3].applied == [(0, ("a",))]
        assert service.repaired_entries == 2

    def test_tie_at_f_votes_each_adopts_nothing(self, params4):
        service = self._service(params4, 41)
        appliers = service.appliers
        appliers[0].adopt_entries([(0, ("a",))])
        appliers[1].adopt_entries([(0, ("b",))])
        # Two conflicting reports with f votes each: no unique f+1
        # winner, nothing adopted.
        assert service.repair() == 0
        assert appliers[2].next_index == 0
        assert appliers[3].next_index == 0

    def test_minority_conflicting_vote_does_not_block(self, params4):
        service = self._service(params4, 42)
        appliers = service.appliers
        appliers[0].adopt_entries([(0, ("a",))])
        appliers[1].adopt_entries([(0, ("a",))])
        appliers[2].adopt_entries([(0, ("junk",))])  # one faulty report
        # f+1 matching votes settle the slot despite the minority lie.
        assert service.repair() == 1
        assert appliers[3].applied == [(0, ("a",))]

    def test_disputed_slot_stops_adoption_contiguously(self, params4):
        service = self._service(params4, 43)
        appliers = service.appliers
        appliers[0].adopt_entries(
            [(0, ("a",)), (1, BOTTOM), (2, ("c",)), (3, ("d",))]
        )
        appliers[1].adopt_entries(
            [(0, ("a",)), (1, BOTTOM), (2, ("x",)), (3, ("d",))]
        )
        adopted = service.repair()
        # Slots 0-1 have f+1 matching vouchers (BOTTOM votes count like
        # any outcome); slot 2 is disputed, so adoption stops there even
        # though slot 3 would have f+1 matching votes -- adopted prefixes
        # must stay contiguous or sequences diverge.
        assert adopted == 4  # two laggards x slots {0, 1}
        for node_id in (2, 3):
            assert appliers[node_id].next_index == 2
            assert appliers[node_id].applied == [(0, ("a",))]
            assert appliers[node_id].skipped == [1]

    def test_replicas_at_target_left_alone(self, params4):
        service = self._service(params4, 44)
        appliers = service.appliers
        for applier in appliers.values():
            applier.adopt_entries([(0, ("a",)), (1, ("b",))])
        # Everyone already at the target: repair touches nothing.
        assert service.repair() == 0
        for applier in appliers.values():
            assert applier.next_index == 2
            assert applier.applied == [(0, ("a",)), (1, ("b",))]
        assert service.repaired_entries == 0
