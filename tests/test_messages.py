"""Unit tests for the protocol message vocabulary."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import (
    ALL_MESSAGE_TYPES,
    ApproveMsg,
    IA_MESSAGE_TYPES,
    InitiatorMsg,
    MB_MESSAGE_TYPES,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
)


class TestShape:
    def test_all_types_are_frozen(self):
        for cls in ALL_MESSAGE_TYPES:
            assert dataclasses.fields(cls)
            instance = (
                cls(general=0, value="m")
                if cls in IA_MESSAGE_TYPES
                else cls(general=0, origin=1, value="m", k=1)
            )
            with pytest.raises(dataclasses.FrozenInstanceError):
                instance.general = 5  # type: ignore[misc]

    def test_families_partition_all(self):
        assert set(ALL_MESSAGE_TYPES) == set(IA_MESSAGE_TYPES) | set(MB_MESSAGE_TYPES)
        assert not set(IA_MESSAGE_TYPES) & set(MB_MESSAGE_TYPES)

    def test_equality_by_value(self):
        assert SupportMsg(0, "m") == SupportMsg(0, "m")
        assert SupportMsg(0, "m") != SupportMsg(0, "m2")
        assert SupportMsg(0, "m") != ApproveMsg(0, "m")

    def test_hashable(self):
        msgs = {
            InitiatorMsg(0, "a"),
            SupportMsg(0, "a"),
            ReadyMsg(0, "a"),
            MBInitMsg(0, 1, "a", 1),
            MBEchoMsg(0, 1, "a", 1),
            MBInitPrimeMsg(0, 1, "a", 1),
            MBEchoPrimeMsg(0, 1, "a", 1),
        }
        assert len(msgs) == 7

    def test_mb_messages_carry_round(self):
        msg = MBEchoMsg(general=3, origin=2, value="x", k=4)
        assert (msg.general, msg.origin, msg.value, msg.k) == (3, 2, "x", 4)

    def test_values_may_be_any_hashable(self):
        assert SupportMsg(0, ("tuple", 1)).value == ("tuple", 1)
        assert SupportMsg(0, 42).value == 42
