"""Unit tests for delivery policies and the network fabric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.delivery import (
    AdversarialDelay,
    DeliveryDecision,
    FixedDelay,
    IncoherentDelivery,
    UniformDelay,
)
from repro.net.network import Envelope, Network
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer


@pytest.fixture
def rng():
    return RandomSource(1)


class TestPolicies:
    def test_fixed_delay(self, rng):
        policy = FixedDelay(2.5)
        decision = policy.decide(0, 1, "x", rng)
        assert decision.delay == 2.5
        assert not decision.drop

    def test_fixed_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_uniform_delay_in_range(self, rng):
        policy = UniformDelay(1.0, 2.0)
        for _ in range(100):
            decision = policy.decide(0, 1, "x", rng)
            assert 1.0 <= decision.delay <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 1.0)

    def test_adversarial_fast_and_slow(self, rng):
        policy = AdversarialDelay(0.1, 1.0, fast_set=frozenset({1, 2}))
        assert policy.decide(0, 1, "x", rng).delay == 0.1
        assert policy.decide(0, 5, "x", rng).delay == 1.0

    def test_incoherent_drops_and_delays(self, rng):
        policy = IncoherentDelivery(drop_probability=0.5, max_delay=100.0)
        outcomes = [policy.decide(0, 1, "x", rng) for _ in range(300)]
        dropped = sum(1 for o in outcomes if o.drop)
        assert 50 < dropped < 250  # roughly half
        assert all(0 <= o.delay <= 100.0 for o in outcomes if not o.drop)

    def test_incoherent_validates(self):
        with pytest.raises(ValueError):
            IncoherentDelivery(1.5, 1.0)
        with pytest.raises(ValueError):
            IncoherentDelivery(0.5, -1.0)

    def test_dropped_constructor(self):
        assert DeliveryDecision.dropped().drop


class TestNetwork:
    def build(self, policy=None):
        sim = Simulator()
        net = Network(sim, policy or FixedDelay(1.0), RandomSource(2), Tracer())
        inboxes: dict[int, list[Envelope]] = {i: [] for i in range(3)}
        for i in range(3):
            net.register(i, inboxes[i].append)
        return sim, net, inboxes

    def test_broadcast_with_drops_and_no_tracer(self):
        """Lossy policy + tracer=None must not crash (and with a disabled
        tracer, drops must still be counted via the bump fast path)."""
        sim = Simulator()
        net = Network(sim, IncoherentDelivery(1.0, 1.0), RandomSource(2), tracer=None)
        for i in range(3):
            net.register(i, lambda env: None)
        net.broadcast(0, "x")
        sim.run()
        assert net.dropped_count == 3

        disabled = Tracer(enabled=False)
        sim2 = Simulator()
        net2 = Network(sim2, IncoherentDelivery(1.0, 1.0), RandomSource(2), disabled)
        for i in range(3):
            net2.register(i, lambda env: None)
        net2.broadcast(0, "x")
        sim2.run()
        assert disabled.count("send") == 3
        assert disabled.count("drop") == 3

    def test_send_delivers_with_delay(self):
        sim, net, inboxes = self.build()
        net.send(0, 1, "hello")
        assert inboxes[1] == []
        sim.run()
        assert len(inboxes[1]) == 1
        env = inboxes[1][0]
        assert env.sender == 0
        assert env.payload == "hello"
        assert env.delivered_at == pytest.approx(1.0)

    def test_sender_identity_authenticated(self):
        sim, net, inboxes = self.build()
        net.send(2, 0, "msg")
        sim.run()
        assert inboxes[0][0].sender == 2

    def test_broadcast_reaches_everyone_including_sender(self):
        sim, net, inboxes = self.build()
        net.broadcast(0, "all")
        sim.run()
        assert all(len(inboxes[i]) == 1 for i in range(3))

    def test_unknown_receiver_raises(self):
        _sim, net, _ = self.build()
        with pytest.raises(ValueError):
            net.send(0, 99, "x")

    def test_duplicate_registration_rejected(self):
        _sim, net, _ = self.build()
        with pytest.raises(ValueError):
            net.register(0, lambda env: None)

    def test_accounting(self):
        sim, net, _ = self.build()
        net.broadcast(0, "x")
        sim.run()
        assert net.sent_count == 3
        assert net.delivered_count == 3
        assert net.dropped_count == 0

    def test_partition_drops_messages(self):
        sim, net, inboxes = self.build()
        net.partition(1)
        net.send(0, 1, "lost")
        net.send(1, 0, "also lost")
        sim.run()
        assert inboxes[1] == []
        assert inboxes[0] == []
        assert net.dropped_count == 2

    def test_heal_restores_delivery(self):
        sim, net, inboxes = self.build()
        net.partition(1)
        net.heal(1)
        net.send(0, 1, "back")
        sim.run()
        assert len(inboxes[1]) == 1

    def test_partition_after_send_drops_at_delivery(self):
        sim, net, inboxes = self.build()
        net.send(0, 1, "in-flight")
        net.partition(1)
        sim.run()
        assert inboxes[1] == []

    def test_inject_spurious_bypasses_policy(self):
        sim, net, inboxes = self.build(policy=FixedDelay(50.0))
        net.inject_spurious(claimed_sender=2, receiver=0, payload="forged", delay=0.5)
        sim.run_until(1.0)
        assert len(inboxes[0]) == 1
        assert inboxes[0][0].sender == 2  # forged identity accepted pre-coherence

    def test_policy_swap_takes_effect(self):
        sim, net, inboxes = self.build(policy=FixedDelay(10.0))
        net.set_policy(FixedDelay(0.1))
        net.send(0, 1, "fast")
        sim.run()
        assert inboxes[1][0].delivered_at == pytest.approx(0.1)

    def test_drop_policy_counts(self):
        sim, net, inboxes = self.build(policy=IncoherentDelivery(1.0, 0.0))
        net.send(0, 1, "gone")
        sim.run()
        assert inboxes[1] == []
        assert net.dropped_count == 1

    def test_node_ids_sorted(self):
        _sim, net, _ = self.build()
        assert net.node_ids == [0, 1, 2]


class TestDropAttribution:
    """dropped_count splits into partition-suppressed vs policy-dropped."""

    def build(self, policy=None):
        sim = Simulator()
        net = Network(sim, policy or FixedDelay(1.0), RandomSource(2), Tracer())
        inboxes: dict[int, list[Envelope]] = {i: [] for i in range(3)}
        for i in range(3):
            net.register(i, inboxes[i].append)
        return sim, net, inboxes

    def test_fabric_cut_counts_as_partition(self):
        sim, net, _ = self.build()
        net.partition(1)
        net.send(0, 1, "lost")
        net.broadcast(1, "also lost")  # sender cut: all 3 copies suppressed
        sim.run()
        assert net.dropped_partition == 4
        assert net.dropped_policy == 0
        assert net.dropped_count == 4

    def test_policy_drop_counts_as_policy(self):
        sim, net, _ = self.build(policy=IncoherentDelivery(1.0, 0.0))
        net.send(0, 1, "gone")
        net.broadcast(0, "all gone")
        sim.run()
        assert net.dropped_policy == 4
        assert net.dropped_partition == 0
        assert net.dropped_count == 4

    def test_link_partition_policy_counts_as_partition(self):
        from repro.net.delivery import LinkPartitionPolicy

        cut = LinkPartitionPolicy(FixedDelay(0.5), island=frozenset({0}))
        sim, net, inboxes = self.build(policy=cut)
        net.broadcast(0, "x")  # copies to 1 and 2 cross the cut
        sim.run()
        assert net.dropped_partition == 2
        assert net.dropped_policy == 0
        assert len(inboxes[0]) == 1
        cut.heal()
        net.broadcast(0, "y")
        sim.run()
        assert net.dropped_partition == 2  # unchanged after heal
        assert all(len(inboxes[i]) >= 1 for i in range(3))

    def test_in_flight_cut_counts_as_partition(self):
        sim, net, inboxes = self.build()
        net.send(0, 1, "in-flight")
        net.partition(1)
        sim.run()
        assert inboxes[1] == []
        assert net.dropped_partition == 1
        assert net.dropped_policy == 0

    def test_dropped_decision_partition_flag(self):
        assert DeliveryDecision.dropped().partition is False
        assert DeliveryDecision.dropped(partition=True).partition is True


class TestDeliveryBound:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_uniform_policy_respects_delta(self, seed):
        """Every delivered message arrives within the configured bound."""
        sim = Simulator()
        delta = 1.0
        net = Network(sim, UniformDelay(0.0, delta), RandomSource(seed), Tracer())
        arrivals = []
        net.register(0, lambda env: arrivals.append(env))
        net.register(1, lambda env: arrivals.append(env))
        for _ in range(20):
            net.send(0, 1, "x")
        sim.run()
        assert all(
            env.delivered_at - env.sent_at <= delta + 1e-12 for env in arrivals
        )
