"""Tests for the experiment registry and its shared run engine.

The load-bearing guarantee: the registry refactor changed *how* the E1..E10
drivers are expressed (specs + one engine) without changing a single bit of
their output.  ``tests/data/golden_rows_pr3.json`` holds rows captured from
the pre-refactor hand-written driver loops at fixed seeds; the drivers must
reproduce them exactly, serially and under any worker count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import experiments as ex
from repro.harness.registry import (
    ExperimentSpec,
    ScenarioGroup,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_rows_pr3.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _normalize(rows: list[dict]) -> list[dict]:
    # The golden file went through JSON; apply the same round-trip to the
    # fresh rows (float identity survives it, tuples become lists).
    return json.loads(json.dumps(rows))


class TestGoldenRows:
    """Drivers reproduce pre-refactor rows bit-identically."""

    def test_e1_matches_pre_refactor(self, golden):
        rows = ex.run_e1_validity(ns=(4, 7), seeds=range(3))
        assert _normalize(rows) == golden["e1"]["rows"]

    def test_e5_matches_pre_refactor(self, golden):
        rows = ex.run_e5_msg_driven(n=7, delay_fracs=(0.1, 1.0), seeds=range(2))
        assert _normalize(rows) == golden["e5"]["rows"]

    def test_e9_matches_pre_refactor(self, golden):
        rows = ex.run_e9_scaling(ns=(4, 7), seeds=range(2))
        assert _normalize(rows) == golden["e9"]["rows"]

    def test_e9_parallel_matches_pre_refactor(self, golden):
        rows = ex.run_e9_scaling(ns=(4, 7), seeds=range(2), workers=2)
        assert _normalize(rows) == golden["e9"]["rows"]


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        names = [spec.name for spec in list_experiments()]
        for i in range(1, 11):
            assert f"e{i}" in names

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("e99")

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("e1")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_specs_have_defaults_with_seeds(self):
        for spec in list_experiments():
            assert "seeds" in spec.defaults, spec.name


class TestRunEngine:
    def test_run_by_name_matches_wrapper(self):
        by_name = run_experiment("e9", ns=(4,), seeds=range(2))
        by_wrapper = ex.run_e9_scaling(ns=(4,), seeds=range(2))
        assert by_name == by_wrapper

    def test_spec_defaults_fill_missing_kwargs(self):
        # Only override seeds: the ns default from the spec applies.
        rows = run_experiment("e1", seeds=range(1))
        assert [row["n"] for row in rows] == [4, 7, 10, 13]

    def test_explicit_spec_object_accepted(self):
        rows = run_experiment(get_experiment("e9"), ns=(4,), seeds=range(1))
        assert len(rows) == 1 and rows[0]["n"] == 4

    def test_bench_recording(self):
        from repro.harness import benchrecord

        run_experiment("e9", ns=(4,), seeds=range(1), bench_name="test_registry_rec")
        assert "test_registry_rec" in benchrecord._RESULTS
        entry = benchrecord._RESULTS.pop("test_registry_rec")  # don't leak to JSON
        assert entry["rows"] == 1
        assert entry["wall_s"] > 0

    def test_engine_group_order_is_row_order(self):
        calls = []

        def groups(labels=("a", "b", "c")):
            return [
                ScenarioGroup(
                    seed_fn=_identity_seed,
                    rows=lambda results, seeds, lab=label: [{"label": lab}],
                    label=label,
                )
                for label in labels
            ]

        spec = ExperimentSpec(name="_roworder", title="t", groups=groups)
        rows = run_experiment(spec, seeds=range(2))
        assert [row["label"] for row in rows] == ["a", "b", "c"]
        assert calls == []  # groups aggregation ran in-process


def _identity_seed(seed: int) -> int:
    return seed
