"""Test doubles for driving primitives directly (no network, no peers)."""

from __future__ import annotations

from repro.core.params import ProtocolParams
from repro.runtime.api import TimerRegistry
from repro.sim.clock import ClockConfig, DriftClock
from repro.sim.engine import Simulator


class FakeHost:
    """Implements the primitives' ProtocolHost surface with manual control."""

    trace_enabled = True

    def __init__(
        self,
        params: ProtocolParams,
        node_id: int = 0,
        clock_config: ClockConfig = ClockConfig(),
    ) -> None:
        self.sim = Simulator()
        self.params = params
        self.node_id = node_id
        self.clock = DriftClock(self.sim, clock_config)
        self.sent: list[tuple[float, object]] = []
        self.traced: list[tuple[str, dict]] = []
        self._registry = TimerRegistry()

    # ProtocolHost surface ------------------------------------------------
    def now(self) -> float:
        return self.clock.local_now()

    local_now = now  # legacy spelling (tests read the clock through it too)

    def real_now(self) -> float:
        return self.sim.now

    def real_at_local(self, local_time: float) -> float:
        return self.clock.real_at_local(local_time)

    def broadcast(self, payload: object) -> None:
        self.sent.append((self.now(), payload))

    def send(self, receiver: int, payload: object) -> None:
        self.sent.append((self.now(), payload))

    def trace(self, kind: str, **detail: object) -> None:
        self.traced.append((kind, detail))

    def schedule_after(self, delay_local: float, action, tag: str = ""):
        """Local-time timers, so the push evaluators' deadline chains run."""
        real_delay = self.clock.real_delay_for_local(delay_local)
        handle = self.sim.schedule_in(real_delay, action, tag=tag)
        self._registry.track(handle)
        return handle

    after_local = schedule_after  # legacy spelling

    def live_timer_count(self) -> int:
        return self._registry.live_count()

    def cancel_all_timers(self) -> None:
        self._registry.cancel_all()

    # Test-control helpers --------------------------------------------------
    def advance(self, real_delta: float) -> None:
        """Move real time forward (runs any pending events)."""
        self.sim.run_until(self.sim.now + real_delta)

    def sent_of(self, cls: type) -> list[object]:
        return [payload for _t, payload in self.sent if isinstance(payload, cls)]

    def traced_kinds(self) -> list[str]:
        return [kind for kind, _ in self.traced]
