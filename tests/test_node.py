"""Unit tests for the node framework and the message log."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.delivery import FixedDelay
from repro.net.network import Envelope, Network
from repro.node.base import Node, NodeContext
from repro.node.msglog import MessageLog
from repro.sim.clock import ClockConfig
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer


class EchoNode(Node):
    """Test node that records everything it receives."""

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.received: list[Envelope] = []

    def on_message(self, envelope: Envelope) -> None:
        self.received.append(envelope)


def build_pair(clock_config=ClockConfig()):
    sim = Simulator()
    net = Network(sim, FixedDelay(1.0), RandomSource(3), Tracer())
    ctx = NodeContext(sim=sim, net=net, tracer=Tracer(), clock_config=clock_config)
    a = EchoNode(0, ctx)
    b = EchoNode(1, ctx)
    return sim, a, b


class TestNodeMessaging:
    def test_send_and_receive(self):
        sim, a, b = build_pair()
        a.send(1, "hi")
        sim.run()
        assert b.received[0].payload == "hi"

    def test_broadcast_includes_self(self):
        sim, a, b = build_pair()
        a.broadcast("x")
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_crashed_node_sends_nothing(self):
        sim, a, b = build_pair()
        a.crash()
        a.send(1, "nope")
        sim.run()
        assert b.received == []

    def test_crashed_node_receives_nothing(self):
        sim, a, b = build_pair()
        b.crash()
        a.send(1, "nope")
        sim.run()
        assert b.received == []

    def test_resume_keeps_state(self):
        sim, a, b = build_pair()
        b.crash()
        b.resume()
        a.send(1, "yes")
        sim.run()
        assert len(b.received) == 1


class TestNodeTimers:
    def test_after_local_with_drift(self):
        """A local delay of 10 on a 2x clock is 5 real-time units."""
        sim, a, _b = build_pair(ClockConfig(rate=2.0))
        fired = []
        a.after_local(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_every_local_repeats(self):
        sim, a, _b = build_pair()
        fired = []
        a.every_local(1.0, lambda: fired.append(sim.now))
        sim.run_until(5.5)
        assert len(fired) == 5

    def test_every_local_rejects_nonpositive(self):
        _sim, a, _b = build_pair()
        with pytest.raises(ValueError):
            a.every_local(0.0, lambda: None)

    def test_cancel_timers(self):
        sim, a, _b = build_pair()
        fired = []
        a.after_local(1.0, lambda: fired.append(1))
        a.cancel_timers()
        sim.run()
        assert fired == []

    def test_crash_suppresses_timer_actions(self):
        sim, a, _b = build_pair()
        fired = []
        a.after_local(1.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_local_now_uses_offset(self):
        _sim, a, _b = build_pair(ClockConfig(offset=500.0))
        assert a.local_now() == pytest.approx(500.0)


class TestMessageLog:
    def test_add_and_count(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.add("k", 2, 11.0)
        log.add("k", 2, 12.0)  # same sender twice
        assert log.count_distinct("k") == 2
        assert log.senders("k") == {1, 2}

    def test_window_query(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.add("k", 2, 15.0)
        log.add("k", 3, 20.0)
        assert log.count_distinct_in("k", 14.0, 21.0) == 2
        assert log.distinct_senders_in("k", 14.0, 21.0) == {2, 3}
        assert log.count_distinct_in("k", 0.0, 9.0) == 0

    def test_window_is_closed_interval(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        assert log.count_distinct_in("k", 10.0, 10.0) == 1

    def test_kth_latest_distinct(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.add("k", 2, 12.0)
        log.add("k", 3, 14.0)
        # Latest per sender: {1: 10, 2: 12, 3: 14}; 2nd latest is 12.
        assert log.kth_latest_distinct("k", 2) == 12.0
        assert log.kth_latest_distinct("k", 3) == 10.0
        assert log.kth_latest_distinct("k", 4) is None

    def test_kth_latest_uses_latest_per_sender(self):
        log = MessageLog()
        log.add("k", 1, 5.0)
        log.add("k", 1, 20.0)  # sender 1 re-sends later
        log.add("k", 2, 10.0)
        assert log.kth_latest_distinct("k", 2) == 10.0

    def test_earliest_arrival(self):
        log = MessageLog()
        assert log.earliest_arrival("k") is None
        log.add("k", 5, 9.0)
        log.add("k", 6, 3.0)
        assert log.earliest_arrival("k") == 3.0

    def test_has_from(self):
        log = MessageLog()
        log.add("k", 1, 0.0)
        assert log.has_from("k", 1)
        assert not log.has_from("k", 2)
        assert not log.has_from("other", 1)

    def test_prune_older_than(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.add("k", 2, 20.0)
        dropped = log.prune_older_than(15.0)
        assert dropped == 1
        assert log.senders("k") == {2}

    def test_prune_removes_empty_keys(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.prune_older_than(100.0)
        assert log.keys == []

    def test_prune_future(self):
        log = MessageLog()
        log.corrupt_insert("k", 1, 999.0)
        log.add("k", 2, 5.0)
        dropped = log.prune_future(10.0)
        assert dropped == 1
        assert log.senders("k") == {2}

    def test_out_of_order_insert_keeps_sorted(self):
        log = MessageLog()
        log.add("k", 1, 10.0)
        log.corrupt_insert("k", 1, 5.0)
        latest = log.latest_arrival_per_sender("k")
        assert latest[1] == 10.0

    def test_remove_keys(self):
        log = MessageLog()
        log.add("a", 1, 0.0)
        log.add("b", 1, 0.0)
        log.remove_keys(["a"])
        assert log.keys == ["b"]

    def test_remove_matching(self):
        log = MessageLog()
        log.add(("support", 0, "m"), 1, 0.0)
        log.add(("support", 1, "m"), 1, 0.0)
        log.remove_matching(lambda key: key[1] == 0)
        assert log.keys == [("support", 1, "m")]

    def test_clear_and_total(self):
        log = MessageLog()
        log.add("k", 1, 0.0)
        log.add("k", 1, 1.0)
        assert log.total_records() == 2
        log.clear()
        assert log.total_records() == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_query_matches_bruteforce(self, records, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        log = MessageLog()
        for sender, t in records:
            log.add("k", sender, t)
        expected = {s for s, t in records if lo <= t <= hi}
        assert log.distinct_senders_in("k", lo, hi) == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_kth_latest_matches_bruteforce(self, records, k):
        log = MessageLog()
        latest: dict[int, float] = {}
        for sender, t in records:
            log.add("k", sender, t)
            latest[sender] = max(latest.get(sender, -1.0), t)
        expected = (
            sorted(latest.values(), reverse=True)[k - 1] if len(latest) >= k else None
        )
        assert log.kth_latest_distinct("k", k) == expected
