"""Randomized differential test: incremental MessageLog vs naive reference.

The incremental log (:mod:`repro.node.msglog`) keeps flat sorted arrays and
cached per-sender latest arrivals; the reference
(:mod:`repro.node.msglog_ref`) is the original rescan-everything
implementation.  Equivalence is the correctness argument for the fast path:
drive both through thousands of identical mixed operations -- in-order adds,
out-of-order corrupt inserts, age/future prunes, key removals, clears --
and demand identical answers from every public query at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.node.msglog import MessageLog
from repro.node.msglog_ref import ReferenceMessageLog

KEYS = [
    ("support", 0, "A"),
    ("support", 0, "B"),
    ("approve", 0, "A"),
    ("ready", 1, "B"),
    ("init", 2, "C"),
]
SENDERS = list(range(8))
KTHS = (1, 2, 3, 5, 8, 12)


def _assert_equivalent(fast: MessageLog, ref: ReferenceMessageLog, rng: random.Random) -> None:
    assert fast.keys == ref.keys
    assert fast.total_records() == ref.total_records()
    for key in KEYS + [("missing", 9, "Z")]:
        assert fast.senders(key) == ref.senders(key)
        assert fast.count_distinct(key) == ref.count_distinct(key)
        assert fast.latest_arrival_per_sender(key) == ref.latest_arrival_per_sender(key)
        assert fast.earliest_arrival(key) == ref.earliest_arrival(key)
        for sender in SENDERS:
            assert fast.has_from(key, sender) == ref.has_from(key, sender)
        for k in KTHS:
            assert fast.kth_latest_distinct(key, k) == ref.kth_latest_distinct(key, k)
        for _ in range(4):
            a = rng.uniform(-5.0, 120.0)
            b = a + rng.uniform(0.0, 40.0)
            assert fast.distinct_senders_in(key, a, b) == ref.distinct_senders_in(key, a, b)
            assert fast.count_distinct_in(key, a, b) == ref.count_distinct_in(key, a, b)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_differential_mixed_operations(seed: int) -> None:
    rng = random.Random(seed)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    now = 0.0

    for step in range(2000):
        roll = rng.random()
        if roll < 0.55:
            # Normal arrival: nondecreasing local time, duplicates included.
            now += rng.choice([0.0, 0.01, 0.3, 1.0])
            key, sender = rng.choice(KEYS), rng.choice(SENDERS)
            fast.add(key, sender, now)
            ref.add(key, sender, now)
        elif roll < 0.70:
            # Corruption: arbitrary past or future stamps.
            t = rng.uniform(-10.0, now + 50.0)
            key, sender = rng.choice(KEYS), rng.choice(SENDERS)
            fast.corrupt_insert(key, sender, t)
            ref.corrupt_insert(key, sender, t)
        elif roll < 0.78:
            cutoff = rng.uniform(0.0, now + 5.0)
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
        elif roll < 0.86:
            horizon = rng.uniform(0.0, now + 5.0)
            assert fast.prune_future(horizon) == ref.prune_future(horizon)
        elif roll < 0.92:
            doomed = rng.sample(KEYS, rng.randint(0, 2))
            fast.remove_keys(doomed)
            ref.remove_keys(doomed)
        elif roll < 0.96:
            kind = rng.choice(["support", "approve", "ready"])
            fast.remove_matching(lambda k, kind=kind: k[0] == kind)
            ref.remove_matching(lambda k, kind=kind: k[0] == kind)
        elif roll < 0.98:
            # Cheap point queries on every path between full checks.
            key = rng.choice(KEYS)
            a = rng.uniform(0.0, now + 1.0)
            assert fast.count_distinct_in(key, a - 3.0, a) == ref.count_distinct_in(key, a - 3.0, a)
        else:
            fast.clear()
            ref.clear()

        if step % 50 == 0:
            _assert_equivalent(fast, ref, rng)

    _assert_equivalent(fast, ref, rng)


def test_differential_in_order_heavy() -> None:
    """The protocol's actual pattern: monotone arrivals, periodic prunes."""
    rng = random.Random(99)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    now = 0.0
    for step in range(3000):
        now += 0.05
        key, sender = rng.choice(KEYS), rng.choice(SENDERS)
        fast.add(key, sender, now)
        ref.add(key, sender, now)
        if step % 200 == 199:
            cutoff = now - 6.0
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
            assert fast.prune_future(now) == ref.prune_future(now)
        if step % 100 == 0:
            _assert_equivalent(fast, ref, rng)
    _assert_equivalent(fast, ref, rng)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_watch_counts_match_window_queries(seed: int) -> None:
    """FreshWindowWatch == count_distinct_in over adversarial schedules.

    The watch is the push evaluators' counter; the reference answer is the
    naive log's window query at the same (start, now).  Covers in-order
    adds, future-stamped corruption maturing over time, prunes (stale ->
    rebuild), removals, and threshold/sentinel callback discipline.
    """
    rng = random.Random(seed)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    key = KEYS[0]
    start = 5.0
    events: list[int] = []
    watch = fast.watch(
        key, start, thresholds=(3, 5), sentinel=2, on_event=lambda w: events.append(1)
    )
    other = fast.watch(key, 0.0)  # second watch on the same key
    now = 6.0

    for _step in range(3000):
        roll = rng.random()
        if roll < 0.55:
            now += rng.choice([0.0, 0.02, 0.4])
            sender = rng.choice(SENDERS)
            fast.add(key, sender, now)
            ref.add(key, sender, now)
        elif roll < 0.70:
            stamp = rng.uniform(-2.0, now + 30.0)
            sender = rng.choice(SENDERS)
            fast.corrupt_insert(key, sender, stamp)
            ref.corrupt_insert(key, sender, stamp)
        elif roll < 0.80:
            cutoff = rng.uniform(0.0, now)
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
        elif roll < 0.90:
            assert fast.prune_future(now) == ref.prune_future(now)
        elif roll < 0.95:
            now += rng.uniform(0.0, 5.0)  # pure time passage matures pending
        else:
            fast.remove_keys([key])
            ref.remove_keys([key])
        expected = ref.count_distinct_in(key, start, now)
        assert watch.count(now) == expected
        assert other.count(now) == ref.count_distinct_in(key, 0.0, now)
        for sender in SENDERS[:4]:
            assert watch.has(sender, now) == (
                sender in ref.distinct_senders_in(key, start, now)
            )

    watch.cancel()
    other.cancel()
    assert not fast._watches  # registry fully drained
    assert events, "thresholds/sentinel never fired across 3000 ops"


def test_watch_threshold_callback_fires_on_crossings() -> None:
    """Callback fires exactly at threshold crossings and sentinel maturity."""
    log = MessageLog()
    fired: list[int] = []
    watch = log.watch(
        ("k",), 0.0, thresholds=(2,), sentinel=9, on_event=lambda w: fired.append(w.count(10.0))
    )
    watch.count(0.0)  # build
    log.add(("k",), 1, 1.0)
    assert fired == []
    log.add(("k",), 2, 2.0)  # crosses threshold 2
    assert len(fired) == 1
    log.add(("k",), 3, 3.0)  # above threshold: no new crossing
    assert len(fired) == 1
    log.add(("k",), 9, 4.0)  # sentinel matures
    assert len(fired) == 2
    # A future-stamped sentinel record from corruption fires only once the
    # observed time passes it.
    fired.clear()
    log2 = MessageLog()
    w2 = log2.watch(("k",), 0.0, sentinel=7, on_event=lambda w: fired.append(1))
    w2.count(0.0)
    log2.corrupt_insert(("k",), 7, 50.0)
    assert fired == []
    assert w2.count(10.0) == 0
    assert w2.count(60.0) == 1
    assert fired == [1]


def test_kth_latest_cache_survives_interleaved_prunes() -> None:
    """Target the latest-arrival cache: alternate kth queries and mutations."""
    rng = random.Random(7)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    key = KEYS[0]
    now = 0.0
    for _ in range(1500):
        now += 0.1
        sender = rng.choice(SENDERS)
        fast.add(key, sender, now)
        ref.add(key, sender, now)
        # Query immediately so the cache is hot before the next mutation.
        for k in KTHS:
            assert fast.kth_latest_distinct(key, k) == ref.kth_latest_distinct(key, k)
        if rng.random() < 0.10:
            t = rng.uniform(0.0, now + 20.0)
            fast.corrupt_insert(key, sender, t)
            ref.corrupt_insert(key, sender, t)
        if rng.random() < 0.05:
            assert fast.prune_future(now) == ref.prune_future(now)
        if rng.random() < 0.05:
            cutoff = now - rng.uniform(1.0, 10.0)
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
