"""Randomized differential test: incremental MessageLog vs naive reference.

The incremental log (:mod:`repro.node.msglog`) keeps flat sorted arrays and
cached per-sender latest arrivals; the reference
(:mod:`repro.node.msglog_ref`) is the original rescan-everything
implementation.  Equivalence is the correctness argument for the fast path:
drive both through thousands of identical mixed operations -- in-order adds,
out-of-order corrupt inserts, age/future prunes, key removals, clears --
and demand identical answers from every public query at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.node.msglog import MessageLog
from repro.node.msglog_ref import ReferenceMessageLog

KEYS = [
    ("support", 0, "A"),
    ("support", 0, "B"),
    ("approve", 0, "A"),
    ("ready", 1, "B"),
    ("init", 2, "C"),
]
SENDERS = list(range(8))
KTHS = (1, 2, 3, 5, 8, 12)


def _assert_equivalent(fast: MessageLog, ref: ReferenceMessageLog, rng: random.Random) -> None:
    assert fast.keys == ref.keys
    assert fast.total_records() == ref.total_records()
    for key in KEYS + [("missing", 9, "Z")]:
        assert fast.senders(key) == ref.senders(key)
        assert fast.count_distinct(key) == ref.count_distinct(key)
        assert fast.latest_arrival_per_sender(key) == ref.latest_arrival_per_sender(key)
        assert fast.earliest_arrival(key) == ref.earliest_arrival(key)
        for sender in SENDERS:
            assert fast.has_from(key, sender) == ref.has_from(key, sender)
        for k in KTHS:
            assert fast.kth_latest_distinct(key, k) == ref.kth_latest_distinct(key, k)
        for _ in range(4):
            a = rng.uniform(-5.0, 120.0)
            b = a + rng.uniform(0.0, 40.0)
            assert fast.distinct_senders_in(key, a, b) == ref.distinct_senders_in(key, a, b)
            assert fast.count_distinct_in(key, a, b) == ref.count_distinct_in(key, a, b)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_differential_mixed_operations(seed: int) -> None:
    rng = random.Random(seed)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    now = 0.0

    for step in range(2000):
        roll = rng.random()
        if roll < 0.55:
            # Normal arrival: nondecreasing local time, duplicates included.
            now += rng.choice([0.0, 0.01, 0.3, 1.0])
            key, sender = rng.choice(KEYS), rng.choice(SENDERS)
            fast.add(key, sender, now)
            ref.add(key, sender, now)
        elif roll < 0.70:
            # Corruption: arbitrary past or future stamps.
            t = rng.uniform(-10.0, now + 50.0)
            key, sender = rng.choice(KEYS), rng.choice(SENDERS)
            fast.corrupt_insert(key, sender, t)
            ref.corrupt_insert(key, sender, t)
        elif roll < 0.78:
            cutoff = rng.uniform(0.0, now + 5.0)
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
        elif roll < 0.86:
            horizon = rng.uniform(0.0, now + 5.0)
            assert fast.prune_future(horizon) == ref.prune_future(horizon)
        elif roll < 0.92:
            doomed = rng.sample(KEYS, rng.randint(0, 2))
            fast.remove_keys(doomed)
            ref.remove_keys(doomed)
        elif roll < 0.96:
            kind = rng.choice(["support", "approve", "ready"])
            fast.remove_matching(lambda k, kind=kind: k[0] == kind)
            ref.remove_matching(lambda k, kind=kind: k[0] == kind)
        elif roll < 0.98:
            # Cheap point queries on every path between full checks.
            key = rng.choice(KEYS)
            a = rng.uniform(0.0, now + 1.0)
            assert fast.count_distinct_in(key, a - 3.0, a) == ref.count_distinct_in(key, a - 3.0, a)
        else:
            fast.clear()
            ref.clear()

        if step % 50 == 0:
            _assert_equivalent(fast, ref, rng)

    _assert_equivalent(fast, ref, rng)


def test_differential_in_order_heavy() -> None:
    """The protocol's actual pattern: monotone arrivals, periodic prunes."""
    rng = random.Random(99)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    now = 0.0
    for step in range(3000):
        now += 0.05
        key, sender = rng.choice(KEYS), rng.choice(SENDERS)
        fast.add(key, sender, now)
        ref.add(key, sender, now)
        if step % 200 == 199:
            cutoff = now - 6.0
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
            assert fast.prune_future(now) == ref.prune_future(now)
        if step % 100 == 0:
            _assert_equivalent(fast, ref, rng)
    _assert_equivalent(fast, ref, rng)


def test_kth_latest_cache_survives_interleaved_prunes() -> None:
    """Target the latest-arrival cache: alternate kth queries and mutations."""
    rng = random.Random(7)
    fast = MessageLog()
    ref = ReferenceMessageLog()
    key = KEYS[0]
    now = 0.0
    for _ in range(1500):
        now += 0.1
        sender = rng.choice(SENDERS)
        fast.add(key, sender, now)
        ref.add(key, sender, now)
        # Query immediately so the cache is hot before the next mutation.
        for k in KTHS:
            assert fast.kth_latest_distinct(key, k) == ref.kth_latest_distinct(key, k)
        if rng.random() < 0.10:
            t = rng.uniform(0.0, now + 20.0)
            fast.corrupt_insert(key, sender, t)
            ref.corrupt_insert(key, sender, t)
        if rng.random() < 0.05:
            assert fast.prune_future(now) == ref.prune_future(now)
        if rng.random() < 0.05:
            cutoff = now - rng.uniform(1.0, 10.0)
            assert fast.prune_older_than(cutoff) == ref.prune_older_than(cutoff)
