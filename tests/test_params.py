"""Unit tests for the timing-constant algebra (paper Section 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import BOTTOM, ProtocolParams, max_faults


class TestValidation:
    def test_minimal_legal(self):
        params = ProtocolParams(n=4, f=1)
        assert params.n == 4

    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=3, f=1)
        with pytest.raises(ValueError):
            ProtocolParams(n=6, f=2)

    def test_boundary_exactly_3f_plus_1(self):
        ProtocolParams(n=7, f=2)  # 7 > 6 ok
        with pytest.raises(ValueError):
            ProtocolParams(n=9, f=3)  # 9 > 9 false

    def test_f_zero_allowed(self):
        assert ProtocolParams(n=1, f=0).strong_quorum == 1

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=-1)

    def test_delta_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=1, delta=0.0)

    def test_pi_nonnegative(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=1, pi=-0.1)

    def test_rho_range(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=1, rho=1.0)
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=1, rho=-0.1)


class TestDerivedConstants:
    """Every constant exactly as defined in the paper's Section 3."""

    def params(self) -> ProtocolParams:
        return ProtocolParams(n=7, f=2, delta=1.0, pi=0.0, rho=0.0)

    def test_d(self):
        assert self.params().d == 1.0
        assert ProtocolParams(n=4, f=1, delta=2.0, pi=0.5, rho=0.1).d == pytest.approx(
            2.75
        )

    def test_tau_skew_is_6d(self):
        assert self.params().tau_skew == 6.0

    def test_phi_is_8d(self):
        assert self.params().phi == 8.0

    def test_delta_agr(self):
        assert self.params().delta_agr == (2 * 2 + 1) * 8.0  # 40

    def test_delta_0(self):
        assert self.params().delta_0 == 13.0

    def test_delta_rmv(self):
        assert self.params().delta_rmv == 53.0

    def test_delta_v(self):
        assert self.params().delta_v == 15.0 + 2 * 53.0  # 121

    def test_delta_node(self):
        assert self.params().delta_node == 121.0 + 40.0

    def test_delta_reset(self):
        assert self.params().delta_reset == 20.0 + 4 * 53.0  # 232

    def test_delta_stb(self):
        assert self.params().delta_stb == 464.0

    def test_quorums(self):
        p = self.params()
        assert p.weak_quorum == 3  # n - 2f
        assert p.strong_quorum == 5  # n - f

    def test_weak_quorum_exceeds_f(self):
        """n - 2f >= f + 1 ensures a correct member in every weak quorum."""
        for n in range(4, 30):
            p = ProtocolParams(n=n, f=max_faults(n))
            assert p.weak_quorum >= p.f + 1

    def test_round_deadline(self):
        p = self.params()
        assert p.round_deadline(0) == p.phi
        assert p.round_deadline(p.f) == p.delta_agr

    def test_with_faults(self):
        p = self.params().with_faults(1)
        assert p.f == 1
        assert p.n == 7

    def test_describe_contains_everything(self):
        desc = self.params().describe()
        for key in ("d", "phi", "delta_agr", "delta_stb", "delta_v"):
            assert key in desc


class TestOrderingInvariants:
    """Inequalities the proofs rely on, for every legal configuration."""

    @given(
        n=st.integers(min_value=4, max_value=40),
        delta=st.floats(min_value=0.01, max_value=100.0),
        rho=st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=80, deadline=None)
    def test_constant_ordering(self, n, delta, rho):
        params = ProtocolParams(n=n, f=max_faults(n), delta=delta, rho=rho)
        d = params.d
        # Claim 1's arithmetic: last(G, m) horizon fits inside Delta_reset.
        assert 19 * d + 4 * params.delta_rmv <= params.delta_reset
        # Delta_v leaves room past the last(G, m) expiry (2 Delta_rmv + 9d).
        assert params.delta_v > 2 * params.delta_rmv + 9 * d
        # Delta_0 exceeds the K-block re-send guard window.
        assert params.delta_0 > 6 * d
        # Phases are long enough for a full exchange round (>= 2d).
        assert params.phi >= 2 * d
        # Stabilization dominates every other constant.
        for value in (params.delta_agr, params.delta_rmv, params.delta_v):
            assert params.delta_stb > value


class TestBottom:
    def test_singleton(self):
        from repro.core.params import _Bottom

        assert _Bottom() is BOTTOM

    def test_falsy(self):
        assert not BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_distinct_from_none(self):
        assert BOTTOM is not None


class TestMaxFaults:
    def test_values(self):
        assert max_faults(4) == 1
        assert max_faults(6) == 1
        assert max_faults(7) == 2
        assert max_faults(10) == 3
        assert max_faults(13) == 4

    def test_too_small(self):
        with pytest.raises(ValueError):
            max_faults(3)

    @given(n=st.integers(min_value=4, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_always_satisfies_bound(self, n):
        f = max_faults(n)
        assert n > 3 * f
        assert n <= 3 * (f + 1)
