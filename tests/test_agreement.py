"""Tests for the ss-Byz-Agree protocol layer (Figure 1)."""

from __future__ import annotations

import pytest

from repro.core.agreement import AgreementInstance, ProtocolNode
from repro.core.params import BOTTOM, ProtocolParams
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import AdversarialDelay, FixedDelay, UniformDelay

from tests.conftest import make_cluster, run_agreement


class TestChainMatching:
    """The Block-S system-of-distinct-representatives check."""

    def check(self, per_level, r):
        inst = AgreementInstance.__new__(AgreementInstance)
        return AgreementInstance._distinct_chain_exists(inst, per_level, r)

    def test_empty_fails(self):
        assert not self.check({}, 1)

    def test_single_level(self):
        assert self.check({1: {5}}, 1)

    def test_missing_level_fails(self):
        assert not self.check({1: {5}, 3: {6}}, 3)

    def test_distinctness_required(self):
        # Same single node at both levels: no distinct assignment.
        assert not self.check({1: {5}, 2: {5}}, 2)

    def test_distinct_assignment_found(self):
        assert self.check({1: {5, 6}, 2: {5}}, 2)

    def test_backtracking_needed(self):
        # Greedy picking 5 for level 1 would starve level 2; matching exists.
        per_level = {1: {5, 6}, 2: {5}, 3: {6, 7}}
        assert self.check(per_level, 3)

    def test_no_assignment_when_pool_too_small(self):
        per_level = {1: {5, 6}, 2: {5, 6}, 3: {5, 6}}
        assert not self.check(per_level, 3)


class TestHappyPath:
    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_all_decide_generals_value(self, n):
        from repro.core.params import max_faults

        params = ProtocolParams(n=n, f=max_faults(n), delta=1.0, rho=1e-4)
        cluster = make_cluster(params, seed=1)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()

    def test_timeliness_bounds(self, params7):
        cluster = make_cluster(params7, seed=2)
        t0 = run_agreement(cluster, general=0, value="v")
        properties.timeliness_validity(cluster, 0, t0).expect()
        properties.timeliness_agreement(cluster, 0, validity_held=True).expect()

    def test_non_general_cannot_be_forged(self, params7):
        """No decision materializes for a General that never proposed."""
        cluster = make_cluster(params7, seed=3)
        run_agreement(cluster, general=0, value="v")
        assert cluster.decisions(5) == []
        properties.ia_unforgeability(cluster, 5, "v").expect()

    def test_decision_records_have_consistent_fields(self, params7):
        cluster = make_cluster(params7, seed=4)
        run_agreement(cluster, general=0, value="v")
        for dec in cluster.decisions(0):
            assert dec.general == 0
            assert dec.decided
            assert dec.tau_g_local is not None
            assert dec.tau_g_real is not None
            assert dec.tau_g_real <= dec.returned_real
            assert dec.returned_local is not None

    def test_every_correct_node_i_accepts(self, params7):
        from repro.harness.metrics import i_accept_events

        cluster = make_cluster(params7, seed=5)
        run_agreement(cluster, general=0, value="v")
        accepts = i_accept_events(cluster, 0)
        assert {node for node, *_ in accepts} == set(cluster.correct_ids)

    def test_fixed_extreme_delays_still_valid(self, params7):
        """Worst legal network: every message takes exactly delta."""
        cluster = make_cluster(params7, seed=6, policy=FixedDelay(params7.delta))
        t0 = run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()
        properties.timeliness_validity(cluster, 0, t0).expect()

    def test_adversarial_skewed_delays_still_valid(self, params7):
        policy = AdversarialDelay(
            0.01 * params7.delta, params7.delta, fast_set=frozenset({0, 1, 2})
        )
        cluster = make_cluster(params7, seed=7, policy=policy)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()
        properties.timeliness_agreement(cluster, 0).expect()

    def test_clock_offsets_do_not_matter(self, params7):
        """Identical runs modulo clock offsets produce the same decisions."""
        a = make_cluster(params7, seed=8, random_clock_offsets=False)
        b = make_cluster(params7, seed=8, random_clock_offsets=True)
        run_agreement(a, general=0, value="v")
        run_agreement(b, general=0, value="v")
        assert {d.node for d in a.decisions(0)} == {d.node for d in b.decisions(0)}
        assert {d.value for d in a.decisions(0)} == {d.value for d in b.decisions(0)}

    def test_general_itself_decides(self, params7):
        cluster = make_cluster(params7, seed=9)
        run_agreement(cluster, general=3, value="mid")
        assert any(d.node == 3 for d in cluster.decisions(3))


class TestGeneralPacing:
    """The Sending Validity Criteria IG1-IG3."""

    def test_back_to_back_proposals_refused(self, params7):
        cluster = make_cluster(params7, seed=10)
        assert cluster.propose(0, "a")
        assert not cluster.propose(0, "b")  # IG1: within Delta_0

    def test_different_value_allowed_after_delta_0(self, params7):
        cluster = make_cluster(params7, seed=11)
        assert cluster.propose(0, "a")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        node = cluster.protocol_node(0)
        # Wait out Delta_0 on the General's own clock.
        while not node.may_propose("b"):
            cluster.run_for(params7.d)
        assert cluster.propose(0, "b")

    def test_same_value_needs_delta_v(self, params7):
        cluster = make_cluster(params7, seed=12)
        assert cluster.propose(0, "a")
        cluster.run_for(params7.delta_0 + 5 * params7.d)
        assert not cluster.propose(0, "a")  # IG2: same value within Delta_v
        cluster.run_for(params7.delta_v)
        assert cluster.propose(0, "a")

    def test_two_sequential_agreements_both_valid(self, params7):
        cluster = make_cluster(params7, seed=13)
        run_agreement(cluster, general=0, value="a")
        node = cluster.protocol_node(0)
        while not node.may_propose("b"):
            cluster.run_for(params7.d)
        run_agreement(cluster, general=0, value="b")
        values = [d.value for d in cluster.decisions(0)]
        assert values.count("a") == len(cluster.correct_ids)
        assert values.count("b") == len(cluster.correct_ids)

    def test_separation_across_agreements(self, params7):
        cluster = make_cluster(params7, seed=14)
        run_agreement(cluster, general=0, value="a")
        node = cluster.protocol_node(0)
        while not node.may_propose("b"):
            cluster.run_for(params7.d)
        run_agreement(cluster, general=0, value="b")
        properties.separation(cluster, 0).expect()

    def test_different_generals_independent(self, params7):
        cluster = make_cluster(params7, seed=15)
        run_agreement(cluster, general=0, value="from0")
        run_agreement(cluster, general=1, value="from1")
        properties.validity(cluster, 0, "from0").expect()
        properties.validity(cluster, 1, "from1").expect()


class TestTpsProperties:
    """The msgd-broadcast TPS-* properties over real cluster runs."""

    def test_tps_suite_on_happy_path(self, params7):
        cluster = make_cluster(params7, seed=16)
        run_agreement(cluster, general=0, value="v")
        properties.tps_correctness(cluster, 0).expect()
        properties.tps_unforgeability(cluster, 0).expect()
        properties.tps_relay(cluster, 0).expect()
        properties.tps_detection(cluster, 0).expect()

    def test_ia_relay_on_happy_path(self, params7):
        cluster = make_cluster(params7, seed=17)
        run_agreement(cluster, general=0, value="v")
        properties.ia_relay(cluster, 0).expect()


class TestCrashFaults:
    @pytest.mark.parametrize("crashed", [1, 2])
    def test_validity_with_crashed_nodes(self, params7, crashed):
        from repro.faults.byzantine import CrashStrategy

        byz = {6 - i: CrashStrategy() for i in range(crashed)}
        cluster = make_cluster(params7, seed=18, byzantine=byz)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()

    def test_crashed_general_no_decisions(self, params7):
        from repro.faults.byzantine import CrashStrategy

        cluster = make_cluster(params7, seed=19, byzantine={0: CrashStrategy()})
        cluster.run_for(2 * params7.delta_agr)
        assert cluster.decisions(0) == []


class TestInstanceHygiene:
    def test_instance_resets_after_return(self, params7):
        cluster = make_cluster(params7, seed=20)
        run_agreement(cluster, general=0, value="v")
        for node in cluster.correct_nodes():
            inst = node.instance(0)
            assert inst.tau_g is None
            assert not inst.stopped
            assert inst.mb.anchor is None

    def test_stale_anchor_self_heals(self, params7):
        cluster = make_cluster(params7, seed=21)
        node = cluster.correct_nodes()[2]
        inst = node.instance(0)
        inst.tau_g = node.local_now() - 10 * params7.delta_agr
        inst.mb.set_anchor(inst.tau_g)
        cluster.run_for(3 * params7.d)
        assert inst.tau_g is None

    def test_future_anchor_self_heals(self, params7):
        cluster = make_cluster(params7, seed=22)
        node = cluster.correct_nodes()[2]
        inst = node.instance(0)
        inst.tau_g = node.local_now() + 100 * params7.d
        cluster.run_for(3 * params7.d)
        assert inst.tau_g is None

    def test_lost_reset_timer_self_heals(self, params7):
        cluster = make_cluster(params7, seed=23)
        node = cluster.correct_nodes()[1]
        inst = node.instance(0)
        inst.stopped = True
        inst.returned_at = node.local_now()
        node.cancel_timers()  # lose the 3d reset timer (simulated fault)
        # Restart the cleanup tick that cancel_timers also removed.
        node.every_local(params7.d, node._cleanup_tick)
        cluster.run_for(10 * params7.d)
        assert not inst.stopped
