"""Tests for the ablation drivers (small seed budgets)."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.harness.ablations import (
    run_a1_phi_ablation,
    run_a2_cleanup_interval,
    run_a3_resend_throttle,
)


class TestPhiScaleKnob:
    def test_phi_scale_scales_phase(self):
        base = ProtocolParams(n=7, f=2, delta=1.0)
        half = ProtocolParams(n=7, f=2, delta=1.0, phi_scale=0.5)
        assert half.phi == pytest.approx(base.phi / 2)
        assert half.delta_agr == pytest.approx(base.delta_agr / 2)

    def test_phi_scale_validated(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=7, f=2, phi_scale=0.0)


class TestA1:
    def test_paper_phi_safe_small_phi_broken(self):
        rows = run_a1_phi_ablation(phi_scales=(0.25, 1.0), seeds=range(4))
        small, paper = rows[0], rows[1]
        assert paper["violations"] == 0
        assert small["violations"] > 0


class TestA2:
    def test_default_cadence_recovers(self):
        rows = run_a2_cleanup_interval(intervals_d=(1.0, 4.0), seeds=range(2))
        for row in rows:
            assert row["recovered"] == row["runs"]


class TestA3:
    def test_throttle_trades_messages_not_correctness(self):
        rows = run_a3_resend_throttle(gaps_d=(0.5, 2.0), seeds=range(2))
        assert all(row["validity_ok"] == row["runs"] for row in rows)
        assert rows[0]["messages_mean"] >= rows[1]["messages_mean"]
