"""Tests for the observability layer: metrics registry, HTTP endpoints,
fault-payload parsing, and the asyncio control plane end to end.

The socket-backend control plane (per-child /metrics, parent /status +
/faults, supervised recovery) is exercised by ``scripts/
live_cluster_gate.py`` in CI; these tests cover everything that runs
in-process.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.core.agreement import Decision
from repro.core.params import ProtocolParams
from repro.obs import (
    AsyncioControlPlane,
    MetricsRegistry,
    NodeMetrics,
    ObservabilityServer,
    REQUIRED_SERIES,
    parse_fault_payload,
    parse_prometheus_text,
)


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), (
            resp.read().decode()
        )


def _post(url: str, payload: object) -> tuple[int, dict]:
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=5.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestMetricsRegistry:
    def test_counter_gauge_render_and_parse_round_trip(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_test_total", "help", {"node": "1"})
        gauge = reg.gauge("repro_test_live", "help", {"node": "1"})
        counter.inc()
        counter.inc(2.0)
        gauge.set(7)
        gauge.set(3)
        text = reg.render()
        assert "# HELP repro_test_total help" in text
        assert "# TYPE repro_test_total counter" in text
        assert "# TYPE repro_test_live gauge" in text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_test_total"] == {'{node="1"}': 3.0}
        assert parsed["repro_test_live"] == {'{node="1"}': 3.0}

    def test_counter_set_total_is_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_test_total", "help")
        counter.set_total(10)
        counter.set_total(4)  # stale snapshot must never move it backwards
        assert counter.value == 10
        counter.set_total(11)
        assert counter.value == 11

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "repro_lat_seconds", "help", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        parsed = parse_prometheus_text(reg.render())
        buckets = parsed["repro_lat_seconds_bucket"]
        assert buckets['{le="0.1"}'] == 1
        assert buckets['{le="1"}'] == 3
        assert buckets['{le="10"}'] == 4
        assert buckets['{le="+Inf"}'] == 5
        assert parsed["repro_lat_seconds_count"][""] == 5
        assert parsed["repro_lat_seconds_sum"][""] == pytest.approx(56.05)

    def test_duplicate_and_invalid_names_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_dup_total", "help", {"node": "0"})
        with pytest.raises(ValueError, match="duplicate"):
            reg.counter("repro_dup_total", "help", {"node": "0"})
        # Same name, different labels: fine (one series per label set).
        reg.counter("repro_dup_total", "help", {"node": "1"})
        with pytest.raises(ValueError, match="invalid"):
            reg.counter("bad name", "help")

    def test_help_and_type_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("repro_multi_total", "help", {"node": "0"})
        reg.counter("repro_multi_total", "help", {"node": "1"})
        text = reg.render()
        assert text.count("# HELP repro_multi_total") == 1
        assert text.count("# TYPE repro_multi_total") == 1


class TestNodeMetrics:
    def test_exposes_every_required_series(self):
        metrics = NodeMetrics(node_id=3, time_scale=0.05)
        parsed = parse_prometheus_text(metrics.render())
        exposed = set(parsed)
        for name in REQUIRED_SERIES:
            assert name in exposed or f"{name}_count" in exposed, name

    def test_observe_decision_scales_latency_to_wall_seconds(self):
        metrics = NodeMetrics(node_id=0, time_scale=0.1)
        decision = Decision(
            node=0, general=(0, 0), value=("a",),
            tau_g_local=0.0, tau_g_real=2.0,
            returned_local=8.0, returned_real=8.0,
        )
        metrics.observe_decision(decision)
        # 6 protocol units at scale 0.1 = 0.6 wall seconds.
        assert metrics.decision_latency.count == 1
        assert metrics.decision_latency.sum == pytest.approx(0.6)
        assert metrics.decisions.value == 1

    def test_observe_decision_tolerates_unanchored_abort(self):
        # An abort whose initiation never anchored carries tau_g_real=None.
        # observe_decision heads the node's decision-tap chain: raising here
        # would unwind the applier/coordinator taps and wedge the slot
        # pipeline cluster-wide (every correct node aborts identically).
        from repro.core.params import BOTTOM

        metrics = NodeMetrics(node_id=0, time_scale=0.1)
        abort = Decision(
            node=0, general=(0, 7), value=BOTTOM,
            tau_g_local=None, tau_g_real=None,
            returned_local=9.0, returned_real=9.0,
        )
        metrics.observe_decision(abort)  # must not raise
        assert metrics.decisions.value == 1
        assert metrics.decision_latency.count == 0

    def test_sample_consumes_decide_latencies_exactly_once(self):
        from types import SimpleNamespace

        metrics = NodeMetrics(node_id=0, time_scale=1.0)
        latencies = [0.1, 0.2]
        service = SimpleNamespace(
            applier=None, coordinator=SimpleNamespace(latencies=latencies)
        )
        metrics.sample(service=service)
        assert metrics.decide_latency.count == 2
        latencies.append(0.3)
        metrics.sample(service=service)
        assert metrics.decide_latency.count == 3
        assert metrics.decide_latency.sum == pytest.approx(0.6)


class TestParseFaultPayload:
    def test_accepts_bare_list_and_actions_wrapper(self):
        actions = [{"at_d": 0.0, "do": "crash", "nodes": [2]}]
        script = parse_fault_payload(actions)
        assert len(script.actions) == 1
        wrapped = parse_fault_payload({"actions": actions})
        assert len(wrapped.actions) == 1

    def test_rejects_empty_and_malformed(self):
        with pytest.raises(ValueError, match="non-empty"):
            parse_fault_payload([])
        with pytest.raises(ValueError, match="non-empty"):
            parse_fault_payload({"actions": []})
        with pytest.raises(ValueError, match="non-empty"):
            parse_fault_payload("crash")
        with pytest.raises((KeyError, ValueError, TypeError)):
            parse_fault_payload([{"do": "no-such-fault", "at_d": 0.0}])


class TestObservabilityServer:
    def test_routes_end_to_end(self):
        seen: list[object] = []

        def faults(spec):
            seen.append(spec)
            if spec == ["boom"]:
                raise ValueError("bad spec")
            return {"accepted": 1}

        server = ObservabilityServer(
            render=lambda: "repro_up 1\n",
            status=lambda: {"ok": True},
            faults=faults,
        ).start()
        try:
            code, ctype, body = _get(f"{server.url}/metrics")
            assert code == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            assert parse_prometheus_text(body) == {"repro_up": {"": 1.0}}

            code, ctype, body = _get(f"{server.url}/status")
            assert code == 200
            assert ctype == "application/json"
            assert json.loads(body) == {"ok": True}

            code, _, body = _get(f"{server.url}/healthz")
            assert code == 200 and body == "ok\n"

            code, reply = _post(f"{server.url}/faults", [{"x": 1}])
            assert code == 200 and reply == {"accepted": 1}
            assert seen == [[{"x": 1}]]

            # Validation errors map to 400, not 500.
            code, reply = _post(f"{server.url}/faults", ["boom"])
            assert code == 400 and "bad spec" in reply["error"]

            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/nope")
            assert err.value.code == 404
        finally:
            server.close()

    def test_unwired_routes_404(self):
        server = ObservabilityServer(render=lambda: "").start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/status")
            assert err.value.code == 404
            code, reply = _post(f"{server.url}/faults", [])
            assert code == 404
        finally:
            server.close()


class TestAsyncioControlPlane:
    def test_serves_metrics_status_and_installs_faults(self):
        from repro.runtime.aio import AsyncioCluster
        from repro.service import ReplicatedLogService

        params = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)

        async def body():
            cluster = AsyncioCluster(params, seed=21, time_scale=0.05)
            service = ReplicatedLogService(
                cluster, primary=0, window=4, max_batch=32
            )
            plane = AsyncioControlPlane(cluster, service).start()
            try:
                report = await service.run_workload(
                    rate=500.0, total=60, seed=3, drain_timeout_s=30.0
                )
                plane.sample()
                url = plane.server.url
                _, _, text = await asyncio.to_thread(
                    _get, f"{url}/metrics"
                )
                _, _, status_body = await asyncio.to_thread(
                    _get, f"{url}/status"
                )
                code, reply = await asyncio.to_thread(
                    _post, f"{url}/faults",
                    [{"at_d": 60.0, "do": "crash", "nodes": [2]}],
                )
                bad_code, bad_reply = await asyncio.to_thread(
                    _post, f"{url}/faults", []
                )
                # Give call_soon_threadsafe a turn to install the driver.
                await asyncio.sleep(0)
                drivers = len(plane._drivers)
                return (
                    report, text, json.loads(status_body),
                    (code, reply), (bad_code, bad_reply), drivers,
                )
            finally:
                await plane.close()
                cluster.close()

        report, text, status, good, bad, drivers = asyncio.run(body())
        assert report.identical_logs and report.commands_applied == 60

        parsed = parse_prometheus_text(text)
        # Every node's label set is present for the required series.
        for node_id in range(params.n):
            label = f'{{node="{node_id}"}}'
            assert parsed["repro_arrivals_total"][label] >= 0
            assert parsed["repro_live_slot_instances"][label] >= 0
        # Decisions flowed through the observer into the histograms.
        assert sum(parsed["repro_decisions_total"].values()) > 0
        assert sum(parsed["repro_decision_latency_seconds_count"].values()) > 0
        # The primary's decide latencies were streamed in.
        assert parsed["repro_decide_latency_seconds_count"]['{node="0"}'] == 60
        assert parsed["repro_commands_applied_total"]['{node="0"}'] == 60

        assert status["backend"] == "asyncio"
        assert status["n"] == 4 and status["f"] == 1
        assert status["service"]["commands_decided"] == 60
        assert all(node["alive"] for node in status["nodes"].values())

        code, reply = good
        assert code == 200
        assert reply == {"accepted": 1, "backend": "asyncio"}
        assert status["faults_injected"] in (0, 1)  # cache refresh timing
        assert drivers == 1
        bad_code, _ = bad
        assert bad_code == 400

    def test_raising_observer_does_not_starve_the_chain(self):
        # Observers dispatch at the head of the decision-tap chain; one
        # that raises must neither unwind the service taps above it nor
        # starve observers registered after it.
        from repro.runtime.aio import AsyncioCluster

        params = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)

        async def body():
            cluster = AsyncioCluster(params, seed=5, time_scale=0.05)
            try:
                seen = []

                def bad_observer(decision):
                    raise TypeError("observability must not break dispatch")

                cluster.add_decision_observer(bad_observer)
                cluster.add_decision_observer(seen.append)
                decision = Decision(
                    node=0, general=(0, 0), value=("a",),
                    tau_g_local=0.0, tau_g_real=0.0,
                    returned_local=1.0, returned_real=1.0,
                )
                cluster._on_decision(decision)  # must not raise
                return seen
            finally:
                cluster.close()

        seen = asyncio.run(body())
        assert len(seen) == 1
