"""The paper's Section 6 proof machinery, lemma by lemma, as scenario tests.

These tests target the *intermediate* claims the proofs rest on, not just
the end-to-end theorems -- the places where an implementation subtly
diverging from the paper would first show up.
"""

from __future__ import annotations

import pytest

from repro.core.initiator_accept import InitiatorAccept
from repro.core.messages import ApproveMsg, ReadyMsg, SupportMsg
from repro.core.params import ProtocolParams
from repro.harness import metrics, properties
from repro.harness.scenario import Cluster, ScenarioConfig

from tests.conftest import make_cluster, run_agreement
from tests.helpers import FakeHost

G = 9


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=0.0)


def drain(host, ia, duration, step):
    for _ in range(int(duration / step) + 1):
        host.advance(step)
        ia.cleanup()


class TestClaim1:
    """Claim 1: after Delta_reset of General silence, state is fresh and a
    new initiation succeeds at every correct node."""

    def test_fresh_after_delta_reset_silence(self, params7):
        host = FakeHost(params7)
        accepts = []
        ia = InitiatorAccept(host, G, lambda v, t: accepts.append(v))
        # Garbage phase: partial waves for several values.
        for value in ("a", "b"):
            for sender in (1, 2, 3, 4, 5):
                ia.on_message(SupportMsg(G, value), sender)
                ia.on_message(ApproveMsg(G, value), sender)
        drain(host, ia, params7.delta_reset, params7.d)
        # Data structure must now be fresh for any value (Definition 8).
        assert ia.invoke("c") is True

    def test_k1_succeeds_at_all_correct_nodes_after_quiet_period(self, params7):
        cluster = make_cluster(ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4), seed=1)
        cluster.run_for(cluster.params.delta_reset)
        k1_fails_before = cluster.tracer.count("ia_k1_rejected")
        assert cluster.propose(general=0, value="m")
        cluster.run_for(5 * cluster.params.d)
        assert cluster.tracer.count("ia_k1_rejected") == k1_fails_before


class TestClaim2And3:
    """Claims 2/3 (via Corollaries 3/4): two correct nodes executing
    Line M2/M4 for the same (G, m) do so within a small window of each
    other, or more than 2 Delta_rmv apart."""

    def _m_execution_times(self, cluster, general, value, line):
        events = []
        for node_id in cluster.correct_ids:
            inst = cluster.protocol_node(node_id).instance(general)
            stamp = inst.ia.line_exec.get((line, value))
            if stamp is not None:
                node = cluster.protocol_node(node_id)
                events.append(node.clock.real_at_local(stamp))
        return events

    def test_m2_executions_cluster_tightly(self, params7):
        cluster = make_cluster(ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4), seed=2)
        cluster.propose(general=0, value="m")
        cluster.run_for(4 * cluster.params.d)  # before the +3d post-return reset
        times = self._m_execution_times(cluster, 0, "m", "M2")
        assert len(times) == len(cluster.correct_ids)
        assert max(times) - min(times) <= 9 * cluster.params.d  # Corollary 3

    def test_m4_executions_cluster_tightly(self, params7):
        cluster = make_cluster(ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4), seed=3)
        cluster.propose(general=0, value="m")
        cluster.run_for(4 * cluster.params.d)  # before the +3d post-return reset
        times = self._m_execution_times(cluster, 0, "m", "M4")
        assert len(times) == len(cluster.correct_ids)
        assert max(times) - min(times) <= 7 * cluster.params.d  # Corollary 4


class TestClaim4:
    """Claim 4: with no recent M2/M4 executions, ready waves die out --
    planted ready evidence cannot produce N2/N4 executions."""

    def test_ready_wave_without_m_executions_dies(self, params7):
        host = FakeHost(params7)
        accepts = []
        ia = InitiatorAccept(host, G, lambda v, t: accepts.append(v))
        # Arm the flag and plant a sub-quorum of ready messages, then let
        # the arming decay with no approve traffic at all.
        for sender in (1, 2, 3):
            ia.on_message(ApproveMsg(G, "m"), sender)
        drain(host, ia, params7.delta_rmv + params7.d, params7.d)
        # Flag decayed; now a full forged ready quorum arrives.
        for sender in (1, 2, 3, 4, 5):
            ia.on_message(ReadyMsg(G, "m"), sender)
        assert accepts == []


class TestClaim5:
    """Claim 5: any recording time in i_values is backed by a support sent
    by a correct node no earlier than the recording."""

    def test_recording_time_backed_by_real_support(self, params7):
        cluster = make_cluster(ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4), seed=4)
        t0 = cluster.sim.now
        cluster.propose(general=0, value="m")
        cluster.run_for(6 * cluster.params.d)
        first_support = cluster.tracer.first(
            "ia_support_sent", lambda ev: ev.detail.get("general") == 0
        )
        assert first_support is not None
        for node_id, _t, _m, anchor_real in metrics.i_accept_events(cluster, 0):
            # The anchor precedes (or equals, minus d slack) some correct
            # support sending time.
            assert anchor_real <= first_support.real_time + cluster.params.d


class TestLemma7And8:
    """Lemmas 7/8: deciders and aborters cannot coexist across the round
    boundary -- over many adversarial runs, never both a decide and an
    abort for the same (G, m)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_no_decide_abort_mix(self, seed):
        from repro.faults.byzantine import (
            EquivocatingGeneralStrategy,
            TwoFacedParticipantStrategy,
        )

        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        byz = {
            0: EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5)),
            6: TwoFacedParticipantStrategy((1, 2, 3)),
        }
        cluster = make_cluster(params, seed=seed, byzantine=byz)
        cluster.run_for(3 * params.delta_agr)
        latest = cluster.latest_decision_per_node(0)
        deciders = {n for n, d in latest.items() if d.decided}
        if deciders:
            # Lemma 8: if anyone decides, *everyone* decides (same value).
            assert deciders == set(cluster.correct_ids)


class TestCorollary6:
    """Corollary 6: a node that is non-faulty for Delta_node becomes
    correct -- a recovered (resumed) node participates correctly in the
    next agreement."""

    def test_resumed_node_rejoins(self, params7):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        cluster = make_cluster(params, seed=5)
        victim = cluster.protocol_node(3)
        victim.crash()
        run_agreement(cluster, general=0, value="while-down")
        # Victim missed the agreement entirely.
        assert not any(d.node == 3 for d in cluster.decisions(0))
        victim.resume()
        victim.every_local(params.d, victim._cleanup_tick)  # timers were dead
        cluster.run_for(params.delta_node)
        node0 = cluster.protocol_node(0)
        while not node0.may_propose("after-recovery"):
            cluster.run_for(params.d)
        since = cluster.sim.now
        run_agreement(cluster, general=0, value="after-recovery")
        latest = cluster.latest_decision_per_node(0, since_real=since)
        assert latest[3].value == "after-recovery"
        properties.agreement(cluster, 0, since_real=since).expect()


class TestTimelinessProperty1:
    """Timeliness-1 details (a)-(d) under a correct General, many seeds."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bounds(self, seed):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        cluster = make_cluster(params, seed=seed)
        t0 = run_agreement(cluster, general=0, value="v")
        decided = list(cluster.latest_decision_per_node(0).values())
        # (a) with validity: spread <= 2d.
        spread = metrics.decision_spread_real(decided)
        assert spread is not None and spread <= 2 * params.d
        # (b) anchors within 6d.
        anchors = metrics.anchor_spread_real(decided)
        assert anchors is not None and anchors <= 6 * params.d
        # (c) anchors within [t1 - 2d, t2] of the invocation interval.
        for dec in decided:
            assert t0 - 2 * params.d <= dec.tau_g_real <= t0 + 2 * params.d
        # (d) anchor precedes decision, gap <= Delta_agr.
        for dec in decided:
            assert dec.tau_g_real <= dec.returned_real
            assert dec.returned_real - dec.tau_g_real <= params.delta_agr
