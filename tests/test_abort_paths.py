"""Driving the protocol into its abort blocks (T/U) with crafted attacks.

The happy paths decide via Block R; these tests build the executions the
paper's Lemma 7 reasons about: a Byzantine cabal delays the completion of
the Initiator-Accept wave so that every accepting node's anchor is stale
(past Block R's freshness bound), no one ever msgd-broadcasts, the
broadcaster count stays at zero, and Block T returns BOTTOM at the round
deadline.  Also the paper's observation that "some nodes [may] associate a
BOTTOM with a faulty sending and others may not notice the sending at all".

Attack anatomy (n = 7, f = 2; Byzantine: General 0 and helper 6):

* Initiator goes only to nodes 1-3; with Byzantine supports they approve,
  so ready *flags* arm everywhere (flags live Delta_rmv) but only nodes 1-2
  also receive Byzantine approves, reach the n - f = 5 approve quorum, and
  send ready: exactly two correct ready messages exist -- below the
  n - 2f = 3 amplification threshold, so the wave stalls.
* Block N is untimed, so the cabal can complete it arbitrarily late: at
  ``release_d`` it finally sends its own ready messages.  Now 4 distinct
  readies are visible, amplification fires at the flag-armed nodes, the
  n - f quorum completes, and everyone I-accepts -- with an anchor
  ~release_d + 3d stale, far past Block R's freshness bound.  Nobody
  relays, the broadcasters set stays empty, and Block T aborts everyone.
"""

from __future__ import annotations

import pytest

from repro.core.messages import ApproveMsg, InitiatorMsg, ReadyMsg, SupportMsg
from repro.core.params import BOTTOM, ProtocolParams
from repro.faults.byzantine import ScriptedStrategy
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import FixedDelay


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


def stalled_wave_attack(params: ProtocolParams, release_d: float = 10.0):
    """Byzantine scripts for the delayed-completion attack described above.

    ``release_d = None`` means the cabal never releases its ready messages:
    the wave stalls forever and no correct node returns anything.
    """
    d = params.d
    seeded = (1, 2, 3)
    early_approved = (1, 2)
    everyone = tuple(range(params.n))
    script = []
    script.append((0.05 * d, seeded, InitiatorMsg(0, "m")))
    for t in (0.2 * d, 0.9 * d):
        script.append((t, seeded, SupportMsg(0, "m")))
    for t in (2.2 * d, 2.6 * d):
        script.append((t, early_approved, ApproveMsg(0, "m")))
    if release_d is not None:
        for t in (release_d * d, (release_d + 0.3) * d):
            script.append((t, everyone, ReadyMsg(0, "m")))
    general = ScriptedStrategy(tuple(script))
    helper = ScriptedStrategy(
        tuple((t, targets, payload) for t, targets, payload in script[1:])
    )
    return {0: general, 6: helper}


def build(params: ProtocolParams, seed: int, release_d):
    return Cluster(
        ScenarioConfig(
            params=params,
            seed=seed,
            byzantine=stalled_wave_attack(params, release_d),
            policy=FixedDelay(0.1 * params.delta),
        )
    )


class TestAllAbort:
    def test_stale_anchor_makes_everyone_abort(self, params7):
        cluster = build(params7, seed=1, release_d=10.0)
        cluster.run_for(3 * params7.delta_agr)
        latest = cluster.latest_decision_per_node(0)
        deciders = {n for n, dec in latest.items() if dec.decided}
        aborters = {n for n, dec in latest.items() if dec.value is BOTTOM}
        assert deciders == set(), f"unexpected deciders: {deciders}"
        assert aborters == set(cluster.correct_ids), latest
        properties.agreement(cluster, 0).expect()

    def test_abort_lands_at_the_t_block_deadline(self, params7):
        cluster = build(params7, seed=2, release_d=10.0)
        cluster.run_for(3 * params7.delta_agr)
        returns = [
            dec
            for dec in cluster.latest_decision_per_node(0).values()
            if dec.value is BOTTOM and dec.tau_g_real is not None
        ]
        assert returns
        for dec in returns:
            elapsed = dec.returned_real - dec.tau_g_real
            # Block T's first armable deadline is r = 2: (2*2 + 1) * Phi
            # (for f = 2 it coincides with Block U's hard stop).
            assert elapsed <= 5 * params7.phi + params7.d
            assert elapsed > 3 * params7.phi  # not an early return

    def test_anchors_still_agree_among_aborters(self, params7):
        """Even pure-BOTTOM executions anchor consistently (IA-3A)."""
        cluster = build(params7, seed=3, release_d=10.0)
        cluster.run_for(3 * params7.delta_agr)
        anchors = [
            dec.tau_g_real
            for dec in cluster.latest_decision_per_node(0).values()
            if dec.tau_g_real is not None
        ]
        assert len(anchors) >= 2
        assert max(anchors) - min(anchors) <= 6 * params7.d


class TestStalledForever:
    def test_unreleased_wave_returns_nothing(self, params7):
        """Without the late release, nobody ever reaches the ready quorum:
        no decisions, no aborts -- the initiation just dies (the paper's
        "may not notice the sending at all" outcome)."""
        cluster = build(params7, seed=4, release_d=None)
        cluster.run_for(3 * params7.delta_agr)
        assert cluster.decisions(0) == []
        properties.agreement(cluster, 0).expect()

    def test_stalled_state_drains(self, params7):
        """The stalled wave's residue decays; the log does not grow."""
        cluster = build(params7, seed=5, release_d=None)
        cluster.run_for(3 * params7.delta_agr)
        cluster.run_for(2 * params7.delta_rmv)
        for node in cluster.correct_nodes():
            inst = node.instances.get(0)
            if inst is not None:
                assert inst.ia.log.total_records() == 0

    def test_aborted_instance_recovers_for_next_agreement(self, params7):
        """After an all-abort execution, a correct General's next agreement
        goes through cleanly on the same instances."""
        cluster = build(params7, seed=6, release_d=10.0)
        cluster.run_for(3 * params7.delta_agr)
        node = cluster.protocol_node(1)
        guard = 0
        while not node.may_propose("fresh"):
            cluster.run_for(params7.d)
            guard += 1
            assert guard < 10_000
        since = cluster.sim.now
        assert cluster.propose(general=1, value="fresh")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        properties.validity(cluster, 1, "fresh", since_real=since).expect()
