"""Unit tests for bounded-drift clocks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import ClockConfig, DriftClock, check_drift_bound
from repro.sim.engine import Simulator


class TestClockConfig:
    def test_defaults(self):
        cfg = ClockConfig()
        assert cfg.rate == 1.0
        assert cfg.offset == 0.0
        assert cfg.wrap is None

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            ClockConfig(rate=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ClockConfig(rate=-0.5)

    def test_bad_wrap_rejected(self):
        with pytest.raises(ValueError):
            ClockConfig(wrap=0.0)


class TestReading:
    def test_identity_clock_tracks_real_time(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig())
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert clock.local_now() == pytest.approx(5.0)

    def test_offset_shifts_reading(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(offset=100.0))
        assert clock.local_now() == pytest.approx(100.0)
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        assert clock.local_now() == pytest.approx(103.0)

    def test_fast_clock_runs_fast(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=1.1))
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert clock.local_now() == pytest.approx(11.0)

    def test_slow_clock_runs_slow(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=0.9))
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert clock.local_now() == pytest.approx(9.0)

    def test_local_at_arbitrary_real_time(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=2.0, offset=1.0))
        assert clock.local_at(3.0) == pytest.approx(7.0)

    def test_wrap_display(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(offset=95.0, wrap=100.0))
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert clock.local_now() == pytest.approx(105.0)  # unwrapped
        assert clock.display_now() == pytest.approx(5.0)  # wrapped


class TestInverse:
    def test_real_at_local_roundtrip(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=1.00005, offset=77.0))
        for real in (0.0, 1.5, 100.0):
            assert clock.real_at_local(clock.local_at(real)) == pytest.approx(real)

    def test_real_delay_for_local(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=2.0))
        assert clock.real_delay_for_local(10.0) == pytest.approx(5.0)

    def test_negative_interval_rejected(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig())
        with pytest.raises(ValueError):
            clock.real_delay_for_local(-1.0)

    def test_local_elapsed_between(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=1.5))
        assert clock.local_elapsed_between(2.0, 6.0) == pytest.approx(6.0)


class TestCorruption:
    def test_corrupt_offset_changes_reading_not_rate(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=1.2))
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        clock.corrupt_offset(1000.0)
        assert clock.local_now() == pytest.approx(1000.0)
        assert clock.rate == 1.2
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        # Still advances at the hardware rate after corruption.
        assert clock.local_now() == pytest.approx(1000.0 + 1.2 * 5.0)

    def test_intervals_after_corruption_are_consistent(self):
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig())
        clock.corrupt_offset(-500.0)
        a = clock.local_now()
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        assert clock.local_now() - a == pytest.approx(7.0)


class TestDriftBound:
    def test_check_drift_bound(self):
        assert check_drift_bound(1.0, 0.0)
        assert check_drift_bound(1.0001, 0.001)
        assert not check_drift_bound(1.01, 0.001)
        assert not check_drift_bound(0.98, 0.001)

    @given(
        rate=st.floats(min_value=0.99, max_value=1.01),
        interval=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_paper_drift_inequality(self, rate, interval):
        """Definition 1: (1-rho)(v-u) <= local(v)-local(u) <= (1+rho)(v-u)."""
        rho = 0.01
        sim = Simulator()
        clock = DriftClock(sim, ClockConfig(rate=rate))
        elapsed_local = clock.local_at(interval) - clock.local_at(0.0)
        assert (1 - rho) * interval - 1e-9 <= elapsed_local <= (1 + rho) * interval + 1e-9
