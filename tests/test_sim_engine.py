"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.5).now == 42.5

    def test_schedule_at_runs_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_schedule_in_relative(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_in(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.9, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_zero_delay_ok(self):
        sim = Simulator()
        seen = []
        sim.schedule_in(0.0, lambda: seen.append(True))
        sim.run()
        assert seen == [True]

    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(3))
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2, 3]

    def test_ties_broken_by_scheduling_order(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_event_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth: int) -> None:
            seen.append(depth)
            if depth < 5:
                sim.schedule_in(1.0, lambda: chain(depth + 1))

        sim.schedule_in(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule_at(1.0, lambda: seen.append(True))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        seen = []
        keep = sim.schedule_at(1.0, lambda: seen.append("keep"))
        drop = sim.schedule_at(1.0, lambda: seen.append("drop"))
        drop.cancel()
        sim.run()
        assert seen == ["keep"]
        assert not keep.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        handle = sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0

    def test_run_until_leaves_future_events_queued(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        sim.run()
        assert seen == [5]

    def test_run_until_inclusive_of_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(3))
        sim.run_until(3.0)
        assert seen == [3]

    def test_run_max_events(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: seen.append(i))
        executed = sim.run(max_events=4)
        assert executed == 4
        assert seen == [0, 1, 2, 3]

    def test_step_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(2.0, lambda: seen.append(2))
        assert sim.step() is True
        assert seen == [1]

    def test_step_empty_returns_false(self):
        assert Simulator().step() is False

    def test_stop_from_within_event(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse() -> None:
            sim.run()

        sim.schedule_at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 7

    def test_run_until_advances_now_even_with_no_events(self):
        sim = Simulator()
        sim.run_until(9.0)
        assert sim.now == 9.0


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_execution_order_is_sorted_by_time(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.schedule_at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_subset(self, spec):
        sim = Simulator()
        seen = []
        expected = []
        for t, keep in spec:
            handle = sim.schedule_at(t, lambda t=t: seen.append(t))
            if keep:
                expected.append(t)
            else:
                handle.cancel()
        sim.run()
        assert sorted(seen) == sorted(expected)


class TestLiveEventAccounting:
    """pending_events is tracked incrementally -- exercise the bookkeeping."""

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        handle = sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_execution_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run_until(1.5)
        handle.cancel()  # already executed; must not disturb the count
        assert sim.pending_events == 1
        assert sim.run() == 1
        assert sim.pending_events == 0

    def test_count_tracks_mixed_schedule_cancel_run(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_events == 5
        executed = sim.run()
        assert executed == 5
        assert sim.pending_events == 0

    def test_cancel_heavy_queue_pending_is_cheap_and_exact(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i), lambda: None) for i in range(2000)]
        for handle in handles:
            if handle.time % 2 == 0:
                handle.cancel()
        # Repeated introspection used to be an O(queue) scan per call.
        for _ in range(100):
            assert sim.pending_events == 1000

    def test_step_updates_count(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.step()
        assert sim.pending_events == 1

    def test_rescheduling_inside_action_keeps_count(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                sim.schedule_in(1.0, tick)

        sim.schedule_in(1.0, tick)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.pending_events == 0
