"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestConstants:
    def test_prints_all_constants(self, capsys):
        assert main(["constants", "--n", "7", "--f", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("d", "phi", "delta_agr", "delta_stb"):
            assert name in out

    def test_default_f_is_max(self, capsys):
        assert main(["constants", "--n", "10"]) == 0
        assert "f            = 3" in capsys.readouterr().out


class TestRun:
    def test_happy_path_exit_zero(self, capsys):
        assert main(["run", "--n", "4", "--seed", "1", "--value", "go"]) == 0
        out = capsys.readouterr().out
        assert "'go'" in out
        assert "validity:  True" in out

    def test_equivocate_attack_reports_agreement(self, capsys):
        assert main(["run", "--n", "7", "--seed", "2", "--attack", "equivocate"]) == 0
        assert "agreement: True" in capsys.readouterr().out

    def test_crash_attack_no_decisions(self, capsys):
        assert main(["run", "--n", "7", "--seed", "3", "--attack", "crash"]) == 0
        assert "no correct node returned anything" in capsys.readouterr().out

    def test_staggered_attack(self, capsys):
        assert main(["run", "--n", "7", "--seed", "4", "--attack", "staggered"]) == 0
        assert "agreement: True" in capsys.readouterr().out


class TestStabilize:
    def test_recovers(self, capsys):
        assert main(["stabilize", "--n", "7", "--seed", "5", "--garbage", "150"]) == 0
        out = capsys.readouterr().out
        assert "post-stabilization validity: True" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--attack", "nuclear"])
