"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestConstants:
    def test_prints_all_constants(self, capsys):
        assert main(["constants", "--n", "7", "--f", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("d", "phi", "delta_agr", "delta_stb"):
            assert name in out

    def test_default_f_is_max(self, capsys):
        assert main(["constants", "--n", "10"]) == 0
        assert "f            = 3" in capsys.readouterr().out


class TestRun:
    def test_happy_path_exit_zero(self, capsys):
        assert main(["run", "--n", "4", "--seed", "1", "--value", "go"]) == 0
        out = capsys.readouterr().out
        assert "'go'" in out
        assert "validity:  True" in out

    def test_equivocate_attack_reports_agreement(self, capsys):
        assert main(["run", "--n", "7", "--seed", "2", "--attack", "equivocate"]) == 0
        assert "agreement: True" in capsys.readouterr().out

    def test_crash_attack_no_decisions(self, capsys):
        assert main(["run", "--n", "7", "--seed", "3", "--attack", "crash"]) == 0
        assert "no correct node returned anything" in capsys.readouterr().out

    def test_staggered_attack(self, capsys):
        assert main(["run", "--n", "7", "--seed", "4", "--attack", "staggered"]) == 0
        assert "agreement: True" in capsys.readouterr().out


class TestRunAsync:
    def test_reaches_agreement_with_byzantine_mirror(self, capsys):
        assert main(["run-async", "--n", "4", "--f", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "byzantine node 3: mirror" in out
        assert "agreement: True" in out
        assert "decided:   3/3 nodes" in out

    def test_correct_only_cast(self, capsys):
        assert main(
            ["run-async", "--n", "4", "--f", "1", "--attack", "none",
             "--time-scale", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "decided:   4/4 nodes" in out


class TestRunSocket:
    def test_reaches_agreement_with_byzantine_mirror(self, capsys):
        """One full CLI run over real UDP: agreement, drained timers,
        every child exited 0 (the no-orphans gate)."""
        assert main(["run-socket", "--n", "4", "--f", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "byzantine node 3: mirror" in out
        assert "live timers: all drained" in out
        assert "children:    all exited 0" in out
        assert "agreement: True" in out
        assert "decided:   3/3 nodes" in out

    def test_general_out_of_range_exits_2(self, capsys):
        assert main(["run-socket", "--n", "4", "--f", "1", "--general", "9"]) == 2


class TestStabilize:
    def test_recovers(self, capsys):
        assert main(["stabilize", "--n", "7", "--seed", "5", "--garbage", "150"]) == 0
        out = capsys.readouterr().out
        assert "post-stabilization validity: True" in out


class TestSeedFanout:
    def test_run_multiple_seeds_summary(self, capsys):
        assert main(["run", "--n", "4", "--seeds", "0", "1", "2"]) == 0
        out = capsys.readouterr().out
        for seed in (0, 1, 2):
            assert f"seed {seed}: agreement=True" in out
        assert "3 seeds: all ok" in out

    def test_run_seeds_with_workers(self, capsys):
        assert main(["run", "--n", "4", "--seeds", "0", "1", "--workers", "2"]) == 0
        assert "2 seeds: all ok" in capsys.readouterr().out

    def test_stabilize_multiple_seeds(self, capsys):
        assert main(
            ["stabilize", "--n", "4", "--garbage", "60", "--seeds", "0", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed 0: proposal_unblocked=True post_stb_validity=True" in out
        assert "2 seeds: all recovered" in out


class TestSuite:
    def test_smoke_preset(self, capsys):
        assert main(["suite", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Scenario matrix: smoke" in out
        assert "partition_heal" in out
        assert "cells with agreement on every seed" in out

    def test_smoke_preset_with_workers_and_seeds(self, capsys):
        assert main(
            ["suite", "--preset", "smoke", "--workers", "2", "--seeds", "0", "3"]
        ) == 0
        assert "partition_heal" in capsys.readouterr().out

    def test_csv_output(self, capsys):
        assert main(["suite", "--preset", "smoke", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("n,f,backend,cast,policy,timeline")

    def test_config_file(self, capsys, tmp_path):
        import json

        config = {
            "name": "filecfg",
            "seeds": [0],
            "base": {"value": "v"},
            "grid": {"n": [4], "timeline": ["none"]},
        }
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(config))
        assert main(["suite", "--config", str(path)]) == 0
        assert "Scenario matrix: filecfg" in capsys.readouterr().out

    def test_unknown_preset_exits_2(self, capsys):
        assert main(["suite", "--preset", "nope"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_missing_preset_and_config_exits_2(self, capsys):
        assert main(["suite"]) == 2
        assert "need --preset or --config" in capsys.readouterr().err


class TestListExperiments:
    def test_lists_all_ten(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        names = {
            line.split()[0]
            for line in out.splitlines()
            if line and not line.startswith(" ")
        }
        assert {f"e{i}" for i in range(1, 11)} <= names
        assert "defaults:" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--attack", "nuclear"])
