"""Tests for the TPS'87 and EIG baselines."""

from __future__ import annotations

import pytest

from repro.baselines.eig import DEFAULT_VALUE, EigCluster
from repro.baselines.tps87 import Tps87Cluster
from repro.core.params import BOTTOM, ProtocolParams
from repro.net.delivery import UniformDelay


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0)


class TestTps87:
    def test_happy_path_all_decide(self, params7):
        cluster = Tps87Cluster(params7, seed=1)
        cluster.initiate("V")
        decisions = cluster.run_to_completion()
        assert len(decisions) == params7.n
        assert {d.value for d in decisions} == {"V"}

    def test_latency_is_phase_quantized(self, params7):
        """Time-driven rounds: decision lands exactly at a phase boundary."""
        for frac in (0.1, 1.0):
            cluster = Tps87Cluster(
                params7, seed=2, policy=UniformDelay(0.0, frac * params7.delta)
            )
            cluster.initiate("V")
            decisions = cluster.run_to_completion()
            for dec in decisions:
                phases = dec.returned_real / params7.phi
                assert phases == pytest.approx(round(phases), abs=1e-6)

    def test_latency_does_not_improve_with_fast_network(self, params7):
        fast = Tps87Cluster(params7, seed=3, policy=UniformDelay(0.0, 0.05))
        fast.initiate("V")
        slow = Tps87Cluster(params7, seed=3, policy=UniformDelay(0.5, 1.0))
        slow.initiate("V")
        fast_latency = max(d.returned_real for d in fast.run_to_completion())
        slow_latency = max(d.returned_real for d in slow.run_to_completion())
        assert fast_latency == pytest.approx(slow_latency)

    def test_no_initiation_aborts(self, params7):
        cluster = Tps87Cluster(params7, seed=4)
        decisions = cluster.run_to_completion()
        assert all(d.value is BOTTOM for d in decisions)

    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_scales_across_n(self, n):
        from repro.core.params import max_faults

        params = ProtocolParams(n=n, f=max_faults(n), delta=1.0)
        cluster = Tps87Cluster(params, seed=5)
        cluster.initiate("V")
        decisions = cluster.run_to_completion()
        assert {d.value for d in decisions} == {"V"}
        assert len(decisions) == n


class TestEig:
    def test_happy_path(self, params7):
        cluster = EigCluster(params7, seed=1)
        cluster.initiate("V")
        decisions = cluster.run_to_completion()
        assert decisions == {i: "V" for i in range(params7.n)}

    def test_equivocating_general_still_agrees(self, params7):
        """EIG handles *Byzantine* faults fine -- that is not its weakness."""
        cluster = EigCluster(params7, seed=2)
        # General (node 0, counted among the f faults) splits its value.
        cluster.initiate_equivocating(
            {i: ("A" if i < 4 else "B") for i in range(params7.n)}
        )
        decisions = cluster.run_to_completion()
        non_general = {v for node, v in decisions.items() if node != 0}
        assert len(non_general) == 1  # agreement among the rest

    def test_transient_corruption_breaks_it(self, params7):
        """EIG's weakness: corrupted state yields wrong/garbage decisions."""
        bad_runs = 0
        for seed in range(10):
            cluster = EigCluster(params7, seed=seed)
            cluster.initiate("V")
            cluster.corrupt_mid_run(["A", "B"], at_round=params7.f)
            decisions = cluster.run_to_completion()
            values = set(decisions.values())
            if values != {"V"}:
                bad_runs += 1
        assert bad_runs >= 8  # corruption almost always destroys the outcome

    def test_default_value_on_empty_tree(self, params7):
        cluster = EigCluster(params7, seed=3)
        decisions = cluster.run_to_completion()  # nobody initiated
        assert set(decisions.values()) == {DEFAULT_VALUE}

    def test_malformed_reports_discarded(self, params7):
        """Reports with wrong path length or duplicate labels are dropped."""
        from repro.baselines.eig import EigRoundMsg

        cluster = EigCluster(params7, seed=4)
        cluster.initiate("V")
        victim = cluster.nodes[1]
        # Path too long for round 1 and a duplicate-label path.
        forged = EigRoundMsg(0, 1, (((0, 2, 3), "X"),))
        cluster.net.send(2, 1, forged)
        decisions = cluster.run_to_completion()
        assert decisions[1] == "V"
        assert all((0, 2, 3, 2) not in victim.tree for victim in [victim])
