"""Unit tests for the structured tracer."""

from __future__ import annotations

from repro.sim.trace import TraceEvent, Tracer


class TestRecording:
    def test_record_and_read_back(self):
        tracer = Tracer()
        tracer.record(1.0, 3, "send", receiver=5)
        assert len(tracer) == 1
        ev = tracer.events[0]
        assert ev.real_time == 1.0
        assert ev.node == 3
        assert ev.kind == "send"
        assert ev.detail == {"receiver": 5}

    def test_local_time_recorded(self):
        tracer = Tracer()
        tracer.record(1.0, 3, "decide", local_time=42.0)
        assert tracer.events[0].local_time == 42.0

    def test_disabled_tracer_keeps_counts_only(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, 3, "send")
        tracer.record(2.0, 4, "send")
        assert len(tracer) == 0
        assert tracer.count("send") == 2

    def test_counts_by_kind(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, 0, "a")
        tracer.record(0.0, 0, "b")
        assert tracer.count("a") == 3
        assert tracer.count("b") == 1
        assert tracer.count("missing") == 0


class TestQueries:
    def make(self) -> Tracer:
        tracer = Tracer()
        tracer.record(1.0, 0, "send", payload="x")
        tracer.record(2.0, 1, "deliver", payload="x")
        tracer.record(3.0, 0, "decide", value="v")
        tracer.record(4.0, 1, "decide", value="v")
        return tracer

    def test_of_kind(self):
        tracer = self.make()
        assert [ev.real_time for ev in tracer.of_kind("decide")] == [3.0, 4.0]

    def test_by_node(self):
        tracer = self.make()
        assert [ev.kind for ev in tracer.by_node(0)] == ["send", "decide"]

    def test_filter(self):
        tracer = self.make()
        late = tracer.filter(lambda ev: ev.real_time >= 3.0)
        assert len(late) == 2

    def test_first(self):
        tracer = self.make()
        assert tracer.first("decide").node == 0
        assert tracer.first("decide", lambda ev: ev.node == 1).real_time == 4.0
        assert tracer.first("nothing") is None

    def test_iteration(self):
        tracer = self.make()
        assert len(list(tracer)) == 4

    def test_events_are_frozen(self):
        ev = TraceEvent(real_time=0.0, node=None, kind="x")
        try:
            ev.kind = "y"  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
