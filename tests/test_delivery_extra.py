"""Tests for the bursty and partition delivery policies."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import BurstyDelay, FixedDelay, LinkPartitionPolicy, UniformDelay
from repro.sim.rand import RandomSource

from tests.conftest import make_cluster, run_agreement


class TestBurstyDelay:
    def test_regime_alternation(self):
        clock = {"now": 0.0}
        policy = BurstyDelay(
            now_fn=lambda: clock["now"],
            period=10.0,
            fast_max=0.1,
            slow_min=0.5,
            slow_max=1.0,
        )
        rng = RandomSource(1)
        clock["now"] = 5.0  # fast phase
        assert policy.decide(0, 1, "x", rng).delay <= 0.1
        clock["now"] = 15.0  # slow phase
        assert policy.decide(0, 1, "x", rng).delay >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyDelay(lambda: 0.0, period=0.0, fast_max=0.1, slow_min=0.2, slow_max=0.3)
        with pytest.raises(ValueError):
            BurstyDelay(lambda: 0.0, period=1.0, fast_max=0.1, slow_min=0.5, slow_max=0.3)

    def test_agreement_survives_bursty_network(self):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        cluster = make_cluster(params, seed=1)
        policy = BurstyDelay(
            now_fn=lambda: cluster.sim.now,
            period=3.0 * params.d,
            fast_max=0.1 * params.delta,
            slow_min=0.5 * params.delta,
            slow_max=params.delta,  # still within the model bound
        )
        cluster.set_policy(policy)
        t0 = run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()
        properties.timeliness_validity(cluster, 0, t0).expect()


class TestLinkPartition:
    def test_cut_blocks_cross_traffic_only(self):
        policy = LinkPartitionPolicy(FixedDelay(1.0), island=frozenset({0, 1}))
        rng = RandomSource(2)
        assert policy.decide(0, 5, "x", rng).drop  # crosses the cut
        assert policy.decide(5, 0, "x", rng).drop
        assert not policy.decide(0, 1, "x", rng).drop  # inside island
        assert not policy.decide(4, 5, "x", rng).drop  # outside island

    def test_heal_restores(self):
        policy = LinkPartitionPolicy(FixedDelay(1.0), island=frozenset({0}))
        rng = RandomSource(3)
        policy.heal()
        assert not policy.decide(0, 5, "x", rng).drop

    def test_recovery_after_partition_phase(self):
        """Partition during the faulty period, heal, stabilize, agree."""
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        cluster = make_cluster(params, seed=4)
        partition = LinkPartitionPolicy(
            UniformDelay(0.1 * params.delta, params.delta),
            island=frozenset({0, 1, 2}),
        )
        cluster.set_policy(partition)
        # Someone tries to agree across the cut: must not complete anywhere.
        cluster.propose(general=0, value="doomed")
        cluster.run_for(2 * params.delta_agr)
        latest = cluster.latest_decision_per_node(0)
        assert not any(dec.decided for dec in latest.values())
        # Heal; the network is now correct; wait out stabilization.
        partition.heal()
        cluster.mark_coherent()
        cluster.run_for(params.delta_stb)
        since = cluster.sim.now
        node = cluster.protocol_node(1)
        guard = 0
        while not node.may_propose("after-heal"):
            cluster.run_for(params.d)
            guard += 1
            assert guard < 10_000
        assert cluster.propose(general=1, value="after-heal")
        cluster.run_for(params.delta_agr + 10 * params.d)
        properties.validity(cluster, 1, "after-heal", since_real=since).expect()
