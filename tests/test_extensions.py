"""Tests for the extensions: concurrent invocations and pulse sync."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.extensions.concurrent import (
    ConcurrentGeneral,
    IndexReuseError,
    indexed_general,
)
from repro.extensions.pulse_sync import PulseConfig, PulseSyncCluster
from repro.faults.byzantine import CrashStrategy, MirrorParticipantStrategy
from repro.harness.scenario import Cluster, ScenarioConfig


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


class TestConcurrentInvocations:
    def test_three_concurrent_agreements(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=1))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        indexes = [cg.propose(v) for v in ("a", "b", "c")]
        assert indexes == [0, 1, 2]
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        values = cg.decided_values(cluster.correct_nodes())
        assert values == {0: {"a"}, 1: {"b"}, 2: {"c"}}

    def test_no_pacing_across_indexes(self, params7):
        """The whole point: back-to-back initiations are legal."""
        cluster = Cluster(ScenarioConfig(params=params7, seed=2))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        for i in range(5):
            cg.propose(f"v{i}")  # no waiting whatsoever
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        values = cg.decided_values(cluster.correct_nodes())
        assert values == {i: {f"v{i}"} for i in range(5)}

    def test_index_reuse_within_delta_v_rejected(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=3))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("a", index=7)
        with pytest.raises(ValueError, match="reused within Delta_v"):
            cg.propose("b", index=7)

    def test_index_reuse_error_is_typed(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=8))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("a", index=0)
        with pytest.raises(IndexReuseError):
            cg.propose("b", index=0)
        assert issubclass(IndexReuseError, ValueError)

    def test_reuse_allowed_after_delta_v(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=9))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("a", index=7)
        cluster.run_for(params7.delta_v + params7.d)
        cg.propose("b", index=7)  # pacing satisfied: no error

    def test_explicit_index_bumps_allocator(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=10))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("a", index=5)
        assert cg.next_index == 6
        # The next default allocation cannot collide with the explicit one.
        assert cg.propose("b") == 6

    def test_pacing_map_pruned_after_delta_v(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=11))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        for _ in range(10):
            cg.propose("v")
        assert len(cg._index_last_used) == 10
        cluster.run_for(params7.delta_v + params7.d)
        cg.propose("fresh")
        # Expired stamps were swept; only the fresh initiation remains.
        assert len(cg._index_last_used) == 1

    def test_agreement_per_index_with_byzantine_participant(self, params7):
        cluster = Cluster(
            ScenarioConfig(
                params=params7, seed=4, byzantine={6: MirrorParticipantStrategy()}
            )
        )
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("x")
        cg.propose("y")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        values = cg.decided_values(cluster.correct_nodes())
        assert all(len(vals) == 1 for vals in values.values())
        assert values[0] == {"x"} and values[1] == {"y"}

    def test_indexed_key_shape(self):
        assert indexed_general(3, 9) == (3, 9)

    def test_each_node_records_indexed_decisions(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=5))
        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("solo")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        for node in cluster.correct_nodes():
            per_index = cg.decisions_at(node)
            assert per_index[0].value == "solo"
            assert per_index[0].general == (0, 0)


class TestPulseSync:
    def test_pulses_fire_with_bounded_skew(self, params7):
        ps = PulseSyncCluster(params7, seed=1)
        ps.run_for(6 * ps.pulse_config.cycle)
        trains = ps.pulse_trains()
        counts = {node: len(train) for node, train in trains.items()}
        assert min(counts.values()) >= 4
        # Every node fired the same number of pulses (no one skipped).
        assert len(set(counts.values())) == 1
        assert ps.max_skew() <= 3 * params7.d

    def test_period_bounded(self, params7):
        ps = PulseSyncCluster(params7, seed=2)
        ps.run_for(8 * ps.pulse_config.cycle)
        for train in ps.pulse_trains().values():
            gaps = [b - a for a, b in zip(train, train[1:])]
            assert all(gap >= ps.pulse_config.refractory for gap in gaps)
            upper = (
                ps.pulse_config.cycle
                + params7.n * ps.pulse_config.retry_gap
                + params7.delta_agr
            )
            assert all(gap <= upper for gap in gaps)

    def test_survives_crashed_lowest_node(self, params7):
        """Node 0 is the usual initiator; with it crashed the next correct
        node's staggered timer takes over."""
        ps = PulseSyncCluster(params7, seed=3, byzantine={0: CrashStrategy()})
        ps.run_for(8 * ps.pulse_config.cycle)
        counts = {node: len(train) for node, train in ps.pulse_trains().items()}
        assert min(counts.values()) >= 3
        assert ps.max_skew() <= 3 * params7.d

    def test_recovers_from_havoc(self, params7):
        from repro.faults.transient import TransientFaultInjector

        ps = PulseSyncCluster(params7, seed=4)
        ps.run_for(2 * ps.pulse_config.cycle)
        injector = TransientFaultInjector(
            params7,
            ps.cluster.rng.split("inj"),
            value_pool=[("pulse", 0, 1), "junk"],
            generals=list(range(params7.n)),
        )
        injector.havoc(
            [ps.cluster.nodes[i] for i in ps.cluster.correct_ids],
            ps.cluster.net,
            garbage_messages=200,
        )
        ps.run_for(params7.delta_stb)
        before = {node: len(t) for node, t in ps.pulse_trains().items()}
        ps.run_for(4 * ps.pulse_config.cycle)
        after = {node: len(t) for node, t in ps.pulse_trains().items()}
        # Pulsing resumed at every correct node after stabilization...
        assert all(after[node] > before[node] for node in after)
        # ...and the post-stabilization pulses are tightly aligned.
        events = ps.aligned_pulses()
        settle = ps.cluster.sim.now - 3 * ps.pulse_config.cycle
        late_events = [ev for ev in events if min(ev.values()) > settle]
        for event in late_events:
            assert max(event.values()) - min(event.values()) <= 3 * params7.d

    def test_cycle_too_short_rejected(self, params7):
        bad = PulseConfig(cycle=params7.d, retry_gap=1.0, refractory=0.5)
        with pytest.raises(ValueError, match="cycle too short"):
            PulseSyncCluster(params7, seed=5, pulse_config=bad)

    def test_default_config_sane(self, params7):
        cfg = PulseConfig.default_for(params7)
        assert cfg.cycle >= params7.delta_0 + params7.delta_agr
        assert cfg.refractory < cfg.cycle
