"""The checkers themselves must detect violations (tests of the test tools).

Each test fabricates a trace/decision set with a known violation and checks
the corresponding checker flags it.  Without these, a silently-broken
checker would make the whole reproduction vacuous.
"""

from __future__ import annotations

import pytest

from repro.core.agreement import Decision
from repro.core.params import BOTTOM, ProtocolParams
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig

from tests.conftest import make_cluster, run_agreement


@pytest.fixture
def params4() -> ProtocolParams:
    return ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)


def forged_decision(cluster, node, value, tau_g_real=None, returned_real=1.0):
    return Decision(
        node=node,
        general=0,
        value=value,
        tau_g_local=tau_g_real,
        tau_g_real=tau_g_real,
        returned_local=returned_real,
        returned_real=returned_real,
    )


class TestAgreementChecker:
    def test_detects_split(self, params4):
        cluster = make_cluster(params4, seed=1)
        cluster.protocol_node(0).decisions.append(forged_decision(cluster, 0, "A"))
        cluster.protocol_node(1).decisions.append(forged_decision(cluster, 1, "B"))
        assert not properties.agreement(cluster, 0).holds

    def test_detects_partial_decision(self, params4):
        cluster = make_cluster(params4, seed=2)
        cluster.protocol_node(0).decisions.append(forged_decision(cluster, 0, "A"))
        # Other correct nodes have no decision at all -> violated.
        assert not properties.agreement(cluster, 0).holds

    def test_decide_plus_abort_mix_is_violation(self, params4):
        cluster = make_cluster(params4, seed=3)
        cluster.protocol_node(0).decisions.append(forged_decision(cluster, 0, "A"))
        for node_id in cluster.correct_ids[1:]:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(cluster, node_id, BOTTOM)
            )
        assert not properties.agreement(cluster, 0).holds

    def test_all_abort_is_fine(self, params4):
        cluster = make_cluster(params4, seed=4)
        for node_id in cluster.correct_ids:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(cluster, node_id, BOTTOM)
            )
        assert properties.agreement(cluster, 0).holds

    def test_uses_latest_decision_only(self, params4):
        """Pre-stabilization garbage decisions are superseded by later ones."""
        cluster = make_cluster(params4, seed=5)
        for node_id in cluster.correct_ids:
            node = cluster.protocol_node(node_id)
            node.decisions.append(
                forged_decision(cluster, node_id, f"garbage{node_id}", returned_real=1.0)
            )
            node.decisions.append(
                forged_decision(cluster, node_id, "final", returned_real=2.0)
            )
        assert properties.agreement(cluster, 0).holds


class TestValidityChecker:
    def test_detects_wrong_value(self, params4):
        cluster = make_cluster(params4, seed=6)
        run_agreement(cluster, general=0, value="v")
        assert not properties.validity(cluster, 0, "other").holds

    def test_detects_missing_node(self, params4):
        cluster = make_cluster(params4, seed=7)
        for node_id in cluster.correct_ids[:-1]:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(cluster, node_id, "v")
            )
        assert not properties.validity(cluster, 0, "v").holds


class TestTimelinessCheckers:
    def test_detects_late_decision(self, params4):
        cluster = make_cluster(params4, seed=8)
        for node_id in cluster.correct_ids:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(
                    cluster, node_id, "v", tau_g_real=0.0, returned_real=100.0
                )
            )
        assert not properties.timeliness_validity(cluster, 0, t0_real=0.0).holds

    def test_detects_excess_spread(self, params4):
        cluster = make_cluster(params4, seed=9)
        times = {0: 1.0, 1: 1.5, 2: 1.4, 3: 30.0}  # node 3 way off
        for node_id in cluster.correct_ids:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(
                    cluster, node_id, "v", tau_g_real=0.5, returned_real=times[node_id]
                )
            )
        assert not properties.timeliness_agreement(cluster, 0).holds

    def test_detects_anchor_after_decision(self, params4):
        cluster = make_cluster(params4, seed=10)
        for node_id in cluster.correct_ids:
            cluster.protocol_node(node_id).decisions.append(
                forged_decision(
                    cluster, node_id, "v", tau_g_real=5.0, returned_real=1.0
                )
            )
        assert not properties.timeliness_agreement(cluster, 0).holds


class TestIaCheckers:
    def test_unforgeability_flags_accepts(self, params4):
        cluster = make_cluster(params4, seed=11)
        run_agreement(cluster, general=0, value="v")
        # The value *was* accepted, so claiming it was never invoked fails.
        assert not properties.ia_unforgeability(cluster, 0, "v").holds

    def test_separation_flags_close_distinct_values(self, params4):
        cluster = make_cluster(params4, seed=12)
        node = cluster.protocol_node(0)
        # Two I-accepts for different values 1d apart (must be > 4d).
        t = cluster.sim.now
        cluster.tracer.record(t, 0, "i_accept", general=0, value="a",
                              tau_g_local=node.clock.local_at(t))
        cluster.tracer.record(
            t, 0, "i_accept", general=0, value="b",
            tau_g_local=node.clock.local_at(t + params4.d),
        )
        assert not properties.separation(cluster, 0).holds


class TestTpsCheckers:
    def test_correctness_flags_missing_accepts(self, params4):
        cluster = make_cluster(params4, seed=13)
        cluster.tracer.record(0.0, 0, "mb_invoke", general=0, value="v", k=1)
        # No accepts recorded at all.
        assert not properties.tps_correctness(cluster, 0).holds

    def test_unforgeability_flags_uninvoked_accept(self, params4):
        cluster = make_cluster(params4, seed=14)
        cluster.tracer.record(
            0.0, 0, "mb_accept", general=0, origin=1, value="v", k=1
        )
        assert not properties.tps_unforgeability(cluster, 0).holds

    def test_detection_flags_false_broadcaster(self, params4):
        cluster = make_cluster(params4, seed=15)
        cluster.tracer.record(0.0, 0, "mb_broadcaster", general=0, origin=2, k=1)
        assert not properties.tps_detection(cluster, 0).holds

    def test_relay_flags_partial_accepts(self, params4):
        cluster = make_cluster(params4, seed=16)
        cluster.tracer.record(
            0.0, 0, "mb_accept", general=0, origin=9, value="v", k=1
        )
        # Only one of four correct nodes accepted.
        assert not properties.tps_relay(cluster, 0).holds


class TestReportApi:
    def test_bool_protocol(self):
        good = properties.PropertyReport("x", True)
        bad = properties.PropertyReport("x", False, {"why": "because"})
        assert good and not bad

    def test_expect_raises_with_details(self):
        bad = properties.PropertyReport("prop", False, {"why": "because"})
        with pytest.raises(AssertionError, match="prop violated"):
            bad.expect()

    def test_check_all_stable_runs_every_checker(self, params4):
        cluster = make_cluster(params4, seed=17)
        run_agreement(cluster, general=0, value="v")
        reports = properties.check_all_stable(cluster, 0)
        assert len(reports) == 8
        assert all(reports)
