"""Agreement must survive every Byzantine strategy in the repertoire."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.faults.byzantine import (
    ByzantineNode,
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    NoiseStrategy,
    ScriptedStrategy,
    SelectiveGeneralStrategy,
    SplitWorldStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.core.messages import InitiatorMsg, ReadyMsg, SupportMsg
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig

from tests.conftest import make_cluster, run_agreement


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


class TestByzantineGeneral:
    def test_equivocating_general_never_splits(self, params7):
        for seed in range(5):
            byz = {0: EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5, 6))}
            cluster = make_cluster(params7, seed=seed, byzantine=byz)
            cluster.run_for(3 * params7.delta_agr)
            properties.agreement(cluster, 0).expect()

    def test_equivocation_with_twofaced_helper(self, params7):
        for seed in range(5):
            byz = {
                0: EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5)),
                6: TwoFacedParticipantStrategy((1, 2, 3)),
            }
            cluster = make_cluster(params7, seed=seed, byzantine=byz)
            cluster.run_for(3 * params7.delta_agr)
            properties.agreement(cluster, 0).expect()
            properties.separation(cluster, 0).expect()

    @pytest.mark.parametrize("spread_d", [1.0, 4.0, 10.0, 24.0])
    def test_staggered_general(self, params7, spread_d):
        for seed in range(3):
            byz = {0: StaggeredGeneralStrategy("S", spread_local=spread_d * params7.d)}
            cluster = make_cluster(params7, seed=seed, byzantine=byz)
            cluster.run_for(3 * params7.delta_agr)
            properties.agreement(cluster, 0).expect()

    def test_selective_general_above_quorum_all_decide(self, params7):
        byz = {0: SelectiveGeneralStrategy("X", (1, 2, 3, 4, 5))}
        cluster = make_cluster(params7, seed=3, byzantine=byz)
        cluster.run_for(3 * params7.delta_agr)
        rep = properties.agreement(cluster, 0)
        rep.expect()
        latest = cluster.latest_decision_per_node(0)
        # With 5 of 6 correct nodes seeded, the wave completes: all decide.
        assert all(dec.decided for dec in latest.values())
        assert len(latest) == len(cluster.correct_ids)

    def test_selective_general_below_quorum_nobody_decides(self, params7):
        byz = {0: SelectiveGeneralStrategy("X", (1, 2))}
        cluster = make_cluster(params7, seed=4, byzantine=byz)
        cluster.run_for(3 * params7.delta_agr)
        latest = cluster.latest_decision_per_node(0)
        assert not any(dec.decided for dec in latest.values())

    def test_split_world_within_bound_holds(self, params7):
        for seed in range(5):
            byz = {
                0: EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5)),
                6: SplitWorldStrategy(0, "A", "B", (1, 2, 3), (4, 5)),
            }
            cluster = make_cluster(params7, seed=seed, byzantine=byz)
            cluster.run_for(3 * params7.delta_agr)
            properties.agreement(cluster, 0).expect()

    def test_split_world_beyond_bound_breaks(self, params7):
        """With f' = 3 > f the partition attack succeeds: the bound is tight."""
        splits = 0
        for seed in range(5):
            byz = {
                0: EquivocatingGeneralStrategy("A", "B", (1, 2), (3, 4)),
                5: SplitWorldStrategy(0, "A", "B", (1, 2), (3, 4)),
                6: SplitWorldStrategy(0, "A", "B", (1, 2), (3, 4)),
            }
            cluster = Cluster(
                ScenarioConfig(
                    params=params7,
                    seed=seed,
                    byzantine=byz,
                    allow_extra_byzantine=True,
                )
            )
            cluster.run_for(3 * params7.delta_agr)
            if not properties.agreement(cluster, 0).holds:
                splits += 1
        assert splits >= 4  # the attack is essentially deterministic


class TestByzantineParticipants:
    def test_noise_does_not_disturb_correct_general(self, params7):
        byz = {
            6: lambda rng: NoiseStrategy(
                rng, ["A", "B", "v"], [0, 1, 6], interval_local=0.5 * params7.d
            )
        }
        cluster = make_cluster(params7, seed=5, byzantine=byz)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()

    def test_mirror_does_not_disturb_correct_general(self, params7):
        byz = {6: MirrorParticipantStrategy()}
        cluster = make_cluster(params7, seed=6, byzantine=byz)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()

    def test_two_byzantine_participants(self, params7):
        byz = {5: MirrorParticipantStrategy(), 6: TwoFacedParticipantStrategy((1, 2))}
        cluster = make_cluster(params7, seed=7, byzantine=byz)
        run_agreement(cluster, general=0, value="v")
        properties.validity(cluster, 0, "v").expect()
        properties.timeliness_agreement(cluster, 0).expect()

    def test_noise_cannot_forge_acceptance_for_correct_general(self, params7):
        """IA-2: f noisy nodes cannot forge a value on behalf of a *correct*
        General -- Initiator messages claiming node 0 fail the authenticated-
        sender check, and the noise alone can never assemble n - f quorums.

        (A noisy node claiming its *own* general-ship is a legitimate
        Byzantine initiation, not forgery -- see the Byzantine-General tests.)
        """
        byz = {
            5: lambda rng: NoiseStrategy(
                rng, ["forged"], [0], interval_local=0.3 * params7.d
            ),
            6: lambda rng: NoiseStrategy(
                rng, ["forged"], [0], interval_local=0.3 * params7.d
            ),
        }
        cluster = make_cluster(params7, seed=8, byzantine=byz)
        cluster.run_for(2 * params7.delta_agr)
        properties.ia_unforgeability(cluster, 0, "forged").expect()
        assert cluster.decisions(0) == []

    def test_noisy_self_general_preserves_agreement(self, params7):
        """A noisy node may legitimately initiate as its *own* General; the
        outcome may be a decision, but Agreement must hold regardless."""
        byz = {
            5: lambda rng: NoiseStrategy(
                rng, ["x", "y"], [5], interval_local=0.3 * params7.d
            ),
            6: lambda rng: NoiseStrategy(
                rng, ["x", "y"], [5], interval_local=0.3 * params7.d
            ),
        }
        for seed in range(4):
            cluster = make_cluster(params7, seed=seed, byzantine=byz)
            cluster.run_for(2 * params7.delta_agr)
            properties.agreement(cluster, 5).expect()


class TestScriptedEdges:
    def test_forged_ready_quorum_alone_is_ignored(self, params7):
        """f scripted nodes sending ready cannot trigger N4 (needs n - f)."""
        script = tuple(
            (i * 0.1 * params7.d, (1, 2, 3, 4), ReadyMsg(5, "evil")) for i in range(20)
        )
        byz = {5: ScriptedStrategy(script), 6: ScriptedStrategy(script)}
        cluster = make_cluster(params7, seed=9, byzantine=byz)
        cluster.run_for(params7.delta_agr)
        properties.ia_unforgeability(cluster, 5, "evil").expect()

    def test_support_at_window_boundary(self, params7):
        """Supports spread just over 2d never trigger an approve wave."""
        gap = 2.0 * params7.d + 0.01
        script = tuple(
            (i * gap, tuple(range(7)), SupportMsg(6, "edge")) for i in range(5)
        )
        byz = {6: ScriptedStrategy(script)}
        cluster = make_cluster(params7, seed=10, byzantine=byz)
        cluster.run_for(params7.delta_agr)
        # One Byzantine supporter is far below every quorum anyway, but more
        # importantly no correct node ever sends approve for the value.
        approvals = [
            ev
            for ev in cluster.tracer.of_kind("ia_approve_sent")
            if ev.detail.get("general") == 6 and ev.detail.get("value") == "edge"
        ]
        assert approvals == []

    def test_replayed_initiator_respects_last_gm(self, params7):
        """A General replaying (Initiator, G, m) every few d cannot make
        correct nodes send support repeatedly (Block K's last(G, m) guard)."""
        script = tuple(
            (i * 3.0 * params7.d, tuple(range(7)), InitiatorMsg(6, "replay"))
            for i in range(10)
        )
        byz = {6: ScriptedStrategy(script)}
        cluster = make_cluster(params7, seed=11, byzantine=byz)
        cluster.run_for(params7.delta_agr)
        per_node_supports: dict[int, int] = {}
        for ev in cluster.tracer.of_kind("ia_support_sent"):
            if ev.detail.get("general") == 6:
                per_node_supports[ev.node] = per_node_supports.get(ev.node, 0) + 1
        # Each correct node supports at most once per last(G, m) lifetime;
        # over Delta_agr = 40d that is a single support.
        assert all(count <= 2 for count in per_node_supports.values())
