"""Unit tests for the Initiator-Accept primitive (Figure 2), block by block."""

from __future__ import annotations

import pytest

from repro.core.initiator_accept import InitiatorAccept
from repro.core.messages import ApproveMsg, ReadyMsg, SupportMsg
from repro.core.params import ProtocolParams

from tests.helpers import FakeHost

G = 9  # the General's id in these tests (host node is 0)


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=0.0)


@pytest.fixture
def setup(params):
    host = FakeHost(params)
    accepts: list[tuple[object, float]] = []
    ia = InitiatorAccept(host, G, lambda value, tau: accepts.append((value, tau)))
    return host, ia, accepts


def feed_support(ia, senders, value="m"):
    for sender in senders:
        ia.on_message(SupportMsg(G, value), sender)


def feed_approve(ia, senders, value="m"):
    for sender in senders:
        ia.on_message(ApproveMsg(G, value), sender)


def feed_ready(ia, senders, value="m"):
    for sender in senders:
        ia.on_message(ReadyMsg(G, value), sender)


class TestBlockK:
    def test_fresh_invoke_sends_support(self, setup):
        host, ia, _ = setup
        assert ia.invoke("m") is True
        supports = host.sent_of(SupportMsg)
        assert supports == [SupportMsg(G, "m")]

    def test_invoke_records_anchor_d_before_now(self, setup, params):
        host, ia, _ = setup
        host.advance(10.0)
        ia.invoke("m")
        assert ia.i_values["m"].recording == pytest.approx(
            host.local_now() - params.d
        )

    def test_invoke_blocked_by_other_live_value(self, setup):
        _host, ia, _ = setup
        ia.invoke("m")
        assert ia.invoke("m2") is False

    def test_invoke_blocked_by_last_g(self, setup):
        host, ia, _ = setup
        ia.last_g = host.local_now()
        assert ia.invoke("m") is False

    def test_invoke_blocked_by_recent_own_support(self, setup, params):
        host, ia, _ = setup
        ia.invoke("m")
        # i_values for m is live and last_gm was just set; even after i_values
        # would pass, the recent support send blocks within d.
        host.advance(0.5 * params.d)
        assert ia.invoke("m") is False

    def test_invoke_blocked_by_last_gm_d_ago(self, setup, params):
        host, ia, _ = setup
        # Plant last(G, m) = set 2d ago (so it was set at tau - d too).
        host.advance(5.0)
        ia._last_gm("m").assign(host.local_now() - 2 * params.d, host.local_now() - 2 * params.d)
        assert ia.invoke("m") is False

    def test_invoke_allowed_when_last_gm_set_after_tau_minus_d(self, setup, params):
        host, ia, _ = setup
        host.advance(5.0)
        # Set only half a d ago: at tau - d it was still BOTTOM.
        recent = host.local_now() - 0.5 * params.d
        ia._last_gm("m").assign(recent, recent)
        assert ia.invoke("m") is True

    def test_invoke_during_ignore_window_rejected(self, setup, params):
        host, ia, _ = setup
        ia.ignore_until["m"] = host.local_now() + 3 * params.d
        assert ia.invoke("m") is False


class TestBlockL:
    def test_weak_quorum_sets_i_values(self, setup, params):
        host, ia, _ = setup
        host.advance(20.0)
        feed_support(ia, [1, 2, 3])  # n - 2f = 3
        entry = ia.i_values.get("m")
        assert entry is not None
        # All arrived at the same instant: alpha = 0, recording = now - 2d.
        assert entry.recording == pytest.approx(host.local_now() - 2 * params.d)

    def test_below_weak_quorum_does_nothing(self, setup):
        _host, ia, _ = setup
        feed_support(ia, [1, 2])
        assert "m" not in ia.i_values

    def test_stale_supports_outside_4d_ignored(self, setup, params):
        host, ia, _ = setup
        feed_support(ia, [1, 2])
        host.advance(5 * params.d)  # first two now stale
        feed_support(ia, [3])
        assert "m" not in ia.i_values

    def test_recording_time_uses_kth_latest(self, setup, params):
        host, ia, _ = setup
        host.advance(20.0)
        feed_support(ia, [1])
        host.advance(1.0)
        feed_support(ia, [2])
        host.advance(1.0)
        feed_support(ia, [3])
        # kth (3rd) latest distinct arrival is sender 1's, 2d ago.
        expected = (host.local_now() - 2.0) - 2 * params.d
        assert ia.i_values["m"].recording == pytest.approx(expected)

    def test_recording_never_decreases(self, setup, params):
        host, ia, _ = setup
        host.advance(20.0)
        feed_support(ia, [1, 2, 3, 4])
        first = ia.i_values["m"].recording
        host.advance(1.0)
        feed_support(ia, [5])  # refresh with a later quorum
        assert ia.i_values["m"].recording >= first

    def test_strong_quorum_within_2d_sends_approve(self, setup, params):
        host, ia, _ = setup
        feed_support(ia, [1, 2, 3, 4, 5])  # n - f = 5 at the same instant
        assert host.sent_of(ApproveMsg) == [ApproveMsg(G, "m")]

    def test_spread_out_strong_quorum_does_not_approve(self, setup, params):
        host, ia, _ = setup
        for sender in (1, 2, 3, 4, 5):
            feed_support(ia, [sender])
            host.advance(params.d)  # total spread 5d > 2d window
        assert host.sent_of(ApproveMsg) == []


class TestBlockM:
    def test_weak_approve_quorum_arms_ready(self, setup, params):
        host, ia, _ = setup
        feed_approve(ia, [1, 2, 3])
        assert ia.ready["m"].is_set(host.local_now(), params.delta_rmv)

    def test_strong_approve_quorum_sends_ready(self, setup):
        host, ia, _ = setup
        feed_approve(ia, [1, 2, 3, 4, 5])
        assert ReadyMsg(G, "m") in host.sent_of(ReadyMsg)

    def test_approve_window_is_5d_for_weak(self, setup, params):
        host, ia, _ = setup
        feed_approve(ia, [1, 2])
        host.advance(6 * params.d)
        feed_approve(ia, [3])
        assert not ia.ready["m"].is_set(host.local_now(), params.delta_rmv)

    def test_strong_window_is_3d(self, setup, params):
        host, ia, _ = setup
        feed_approve(ia, [1, 2])
        host.advance(4 * params.d)
        feed_approve(ia, [3, 4, 5])
        # Only 3 approves inside [now-3d, now] -> below n-f; and the ready
        # flag may be armed (weak quorum in 5d) but no ready message sent.
        assert host.sent_of(ReadyMsg) == []


class TestBlockN:
    def test_no_ready_flag_no_acceptance(self, setup):
        _host, ia, accepts = setup
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert accepts == []

    def test_amplification_on_weak_quorum(self, setup):
        host, ia, _ = setup
        feed_approve(ia, [1, 2, 3])  # arm ready flag (no ready msg sent)
        assert host.sent_of(ReadyMsg) == []
        feed_ready(ia, [1, 2, 3])  # weak quorum of ready messages
        assert host.sent_of(ReadyMsg) == [ReadyMsg(G, "m")]

    def test_full_wave_accepts_with_recorded_anchor(self, setup, params):
        host, ia, accepts = setup
        host.advance(10.0)
        feed_support(ia, [1, 2, 3])  # sets i_values
        anchor = ia.i_values["m"].recording
        feed_approve(ia, [1, 2, 3])
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert accepts == [("m", pytest.approx(anchor))]

    def test_accept_clears_i_values_and_ignores(self, setup, params):
        host, ia, accepts = setup
        host.advance(10.0)
        feed_support(ia, [1, 2, 3])
        feed_approve(ia, [1, 2, 3])
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert ia.i_values == {}
        assert ia.ignore_until["m"] > host.local_now()
        # Messages during the ignore window are dropped entirely.
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert len(accepts) == 1

    def test_accept_sets_last_g_and_last_gm(self, setup):
        host, ia, _ = setup
        host.advance(10.0)
        feed_support(ia, [1, 2, 3])
        feed_approve(ia, [1, 2, 3])
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert ia.last_g == pytest.approx(host.local_now())
        assert ia.last_gm["m"].current == pytest.approx(host.local_now())

    def test_forged_wave_without_anchor_rejected(self, setup):
        """Hardening: a ready quorum with no live i_values must not accept."""
        host, ia, accepts = setup
        feed_approve(ia, [1, 2, 3])  # arms ready but i_values only via L1...
        ia.i_values.clear()  # simulate decayed/corrupted anchor
        feed_ready(ia, [1, 2, 3, 4, 5])
        assert accepts == []
        assert "ia_n4_no_anchor" in host.traced_kinds()


class TestCleanup:
    def test_last_g_expires(self, setup, params):
        host, ia, _ = setup
        ia.last_g = host.local_now()
        host.advance(params.delta_0 - 6 * params.d + 1.0)
        ia.cleanup()
        assert ia.last_g is None

    def test_future_last_g_removed(self, setup, params):
        host, ia, _ = setup
        ia.last_g = host.local_now() + 100.0
        ia.cleanup()
        assert ia.last_g is None

    def test_last_gm_expires_on_long_horizon(self, setup, params):
        host, ia, _ = setup
        now = host.local_now()
        ia._last_gm("m").assign(now, now)
        host.advance(2 * params.delta_rmv + 9 * params.d + 1.0)
        ia.cleanup()
        assert ia.last_gm["m"].current is None

    def test_last_gm_survives_short_horizon(self, setup, params):
        host, ia, _ = setup
        now = host.local_now()
        ia._last_gm("m").assign(now, now)
        host.advance(params.delta_rmv)  # well inside 2*delta_rmv + 9d
        ia.cleanup()
        assert ia.last_gm["m"].current is not None

    def test_i_values_expire(self, setup, params):
        host, ia, _ = setup
        ia.invoke("m")
        host.advance(params.delta_rmv + 1.0)
        ia.cleanup()
        assert "m" not in ia.i_values

    def test_ready_decays(self, setup, params):
        host, ia, _ = setup
        feed_approve(ia, [1, 2, 3])
        host.advance(params.delta_rmv + 1.0)
        ia.cleanup()
        assert not ia.ready["m"].is_set(host.local_now(), params.delta_rmv)

    def test_log_pruned_by_age(self, setup, params):
        host, ia, _ = setup
        feed_support(ia, [1, 2])
        host.advance(params.delta_rmv + 1.0)
        ia.cleanup()
        assert ia.log.total_records() == 0

    def test_corrupted_state_drains_after_horizons(self, setup, params):
        """From arbitrary garbage, repeated cleanup fully drains the state."""
        from repro.sim.rand import RandomSource

        host, ia, accepts = setup
        host.advance(100.0)
        ia.corrupt(RandomSource(11), ["a", "b", "c"])
        horizon = 2 * params.delta_rmv + 10 * params.d
        steps = int(horizon / params.d) + 2
        for _ in range(steps):
            host.advance(params.d)
            ia.cleanup()
        assert ia.i_values == {}
        assert ia.last_g is None
        assert ia.log.total_records() == 0
        assert all(
            not flag.is_set(host.local_now(), params.delta_rmv)
            for flag in ia.ready.values()
        )
        assert all(var.current is None for var in ia.last_gm.values())


class TestReset:
    def test_reset_clears_log_but_keeps_pacing(self, setup):
        host, ia, _ = setup
        ia.invoke("m")
        feed_support(ia, [1, 2, 3])
        last_gm_before = ia.last_gm["m"].current
        ia.reset()
        assert ia.log.total_records() == 0
        assert ia.i_values == {}
        assert ia.last_gm["m"].current == last_gm_before  # pacing survives
