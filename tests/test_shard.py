"""Tests for the sharded simulation kernel (repro.sim.shard).

The contract under test is the tentpole invariant: at a fixed seed, a
sharded run -- any shard count, either transport -- produces **bit-identical**
result rows, network counters, and trace digests to the serial kernel.
Plus the guard rails: unsupported features fail with a clear
:class:`ShardError` instead of silently diverging.
"""

from __future__ import annotations

import pytest

from repro.faults.timeline import FaultScript, Havoc, Restart, build_timeline
from repro.harness.registry import run_experiment
from repro.harness.scenario import Cluster, ScenarioConfig, set_default_shards
from repro.harness.suite import SUITE_PRESETS, run_suite
from repro.net.delivery import (
    AdversarialDelay,
    BurstyDelay,
    FixedDelay,
    IncoherentDelivery,
    LinkPartitionPolicy,
    UniformDelay,
)
from repro.core.params import ProtocolParams
from repro.sim.shard import ShardError, ShardedCluster
from repro.sim.trace import trace_digest


def make_params(n: int) -> ProtocolParams:
    return ProtocolParams(n=n, f=1, delta=1.0, rho=1e-4)


# ---------------------------------------------------------------------------
# DeliveryPolicy.min_delay(): the conservative-sync lookahead bound
# ---------------------------------------------------------------------------
class TestMinDelay:
    def test_fixed_delay(self):
        assert FixedDelay(0.25).min_delay() == 0.25

    def test_uniform_delay_is_lower_bound(self):
        assert UniformDelay(0.1, 1.0).min_delay() == 0.1

    def test_adversarial_delay_is_fast_bound(self):
        policy = AdversarialDelay(0.2, 1.0, fast_set=frozenset({1, 2}))
        assert policy.min_delay() == 0.2

    def test_incoherent_offers_no_lookahead(self):
        assert IncoherentDelivery(0.5, 3.0).min_delay() == 0.0

    def test_bursty_fast_regime_floor_is_zero(self):
        policy = BurstyDelay(
            now_fn=lambda: 0.0, period=1.0, fast_max=0.2, slow_min=0.8, slow_max=1.0
        )
        assert policy.min_delay() == 0.0

    def test_partition_wrapper_inherits_inner_bound(self):
        inner = UniformDelay(0.3, 0.9)
        wrapped = LinkPartitionPolicy(inner, frozenset({0, 1}))
        assert wrapped.min_delay() == 0.3
        # Healing does not change the bound: cross-cut copies were dropped,
        # never delayed, so the delivered-copy floor was inner's all along.
        wrapped.heal()
        assert wrapped.min_delay() == 0.3

    def test_nested_wrappers(self):
        policy = LinkPartitionPolicy(
            LinkPartitionPolicy(FixedDelay(0.5), frozenset({0})), frozenset({1})
        )
        assert policy.min_delay() == 0.5


# ---------------------------------------------------------------------------
# Serial-vs-sharded differentials
# ---------------------------------------------------------------------------
def _traced_run(
    shards,
    transport="inline",
    timeline="partition_heal",
    n=7,
    seed=0,
) -> tuple:
    """One traced scenario run; returns (digest, net counters, decisions)."""
    params = make_params(n)
    cluster = Cluster(
        ScenarioConfig(
            params=params,
            seed=seed,
            trace=True,
            shards=shards,
            shard_transport=transport,
        )
    )
    try:
        build_timeline(timeline, params).install(cluster)
        cluster.propose(general=0, value="v")
        cluster.run_for(params.delta_agr + 10 * params.d)
        digest = trace_digest(cluster.tracer)
        counters = (
            cluster.net.sent_count,
            cluster.net.delivered_count,
            cluster.net.dropped_partition,
            cluster.net.dropped_policy,
        )
        decisions = sorted(
            (node_id, repr(dec.value), dec.returned_real)
            for node_id, dec in cluster.latest_decision_per_node(0).items()
        )
        return digest, counters, decisions
    finally:
        if cluster.sharded:
            cluster.close()


class TestDifferential:
    """Bit-identical rows and digests at shards in {1, 2, 4}, >= 3 seeds."""

    def test_e1_rows_bit_identical(self):
        serial = run_experiment("e1", ns=(4,), seeds=range(3))
        for shards in (1, 2, 4):
            sharded = run_experiment(
                "e1", ns=(4,), seeds=range(3), shards=shards,
                shard_transport="inline",
            )
            assert sharded == serial, f"shards={shards} diverged"

    def test_e5_rows_bit_identical(self):
        serial = run_experiment("e5", n=4, delay_fracs=(0.5,), seeds=range(3))
        for shards in (1, 2, 4):
            sharded = run_experiment(
                "e5", n=4, delay_fracs=(0.5,), seeds=range(3), shards=shards,
                shard_transport="inline",
            )
            assert sharded == serial, f"shards={shards} diverged"

    def test_e9_rows_bit_identical(self):
        serial = run_experiment("e9", ns=(4, 7), seeds=range(3))
        for shards in (1, 2, 4):
            sharded = run_experiment(
                "e9", ns=(4, 7), seeds=range(3), shards=shards,
                shard_transport="inline",
            )
            assert sharded == serial, f"shards={shards} diverged"

    def test_suite_smoke_rows_and_digests_bit_identical(self):
        seeds = [0, 1, 2]
        serial = run_suite(SUITE_PRESETS["smoke"], seeds=seeds)
        sharded = run_suite(
            SUITE_PRESETS["smoke"], seeds=seeds, shards=2, shard_transport="inline"
        )
        assert sharded == serial

    @pytest.mark.parametrize("timeline", ["none", "partition_heal", "churn"])
    def test_ordered_trace_digest_bit_identical(self, timeline):
        serial = _traced_run(None, timeline=timeline)
        for shards in (2, 4):
            assert _traced_run(shards, timeline=timeline) == serial

    def test_multiple_seeds_traced(self):
        for seed in (0, 1, 2):
            assert _traced_run(2, seed=seed) == _traced_run(None, seed=seed)

    def test_process_transport_matches_serial(self):
        assert _traced_run(2, transport="process") == _traced_run(None)

    def test_default_shards_context(self):
        serial = _traced_run(None)
        previous = set_default_shards(2, "inline")
        try:
            assert _traced_run(None) == serial
        finally:
            set_default_shards(*previous)


class TestDegenerate:
    def test_one_shard_goes_through_facade(self):
        params = make_params(4)
        cluster = Cluster(
            ScenarioConfig(params=params, seed=0, shards=1, shard_transport="inline")
        )
        try:
            assert cluster.sharded
            assert cluster.shard_count == 1
        finally:
            cluster.close()
        assert _traced_run(1, n=4) == _traced_run(None, n=4)

    def test_one_node_per_shard(self):
        assert _traced_run(7, n=7) == _traced_run(None, n=7)

    def test_shard_count_above_n_is_clamped(self):
        params = make_params(4)
        cluster = Cluster(
            ScenarioConfig(params=params, seed=0, shards=9, shard_transport="inline")
        )
        try:
            assert cluster.requested_shards == 9
            assert cluster.shard_count == 4  # one node per shard at most
        finally:
            cluster.close()
        assert _traced_run(9, n=4) == _traced_run(None, n=4)


# ---------------------------------------------------------------------------
# Facade surface and guard rails
# ---------------------------------------------------------------------------
def _sharded(n=4, **config_kwargs) -> ShardedCluster:
    config = ScenarioConfig(
        params=make_params(n),
        seed=0,
        shards=2,
        shard_transport="inline",
        **config_kwargs,
    )
    return Cluster(config)


class TestFacade:
    def test_context_manager_and_idempotent_close(self):
        with _sharded() as cluster:
            assert cluster.sharded
            cluster.close()  # early close inside the block is fine
        cluster.close()

    def test_correct_and_byzantine_ids_match_serial(self):
        from repro.faults.byzantine import CrashStrategy

        byz = {3: CrashStrategy()}
        serial = Cluster(ScenarioConfig(params=make_params(4), seed=0, byzantine=byz))
        with _sharded(byzantine=byz) as sharded:
            assert sharded.correct_ids == serial.correct_ids
            assert sharded.byzantine_ids == serial.byzantine_ids

    def test_byzantine_cast_validation_matches_serial(self):
        from repro.faults.byzantine import CrashStrategy

        byz = {1: CrashStrategy(), 2: CrashStrategy()}  # f=1 for n=4
        with pytest.raises(ValueError, match="exceeds f="):
            _sharded(byzantine=byz)

    def test_propose_byzantine_general_raises(self):
        from repro.faults.byzantine import CrashStrategy

        with _sharded(byzantine={3: CrashStrategy()}) as cluster:
            with pytest.raises(TypeError, match="not a correct protocol node"):
                cluster.propose(general=3, value="v")

    def test_live_node_access_raises_shard_error(self):
        with _sharded() as cluster:
            with pytest.raises(ShardError):
                cluster.nodes
            with pytest.raises(ShardError):
                cluster.correct_nodes()
            with pytest.raises(ShardError):
                cluster.protocol_node(0)
            with pytest.raises(ShardError):
                cluster.node(0)
            with pytest.raises(ShardError):
                cluster.net.policy

    def test_unknown_transport_raises(self):
        with pytest.raises(ShardError, match="unknown shard transport"):
            Cluster(
                ScenarioConfig(
                    params=make_params(4), seed=0, shards=2, shard_transport="bogus"
                )
            )


class TestUnsupported:
    def test_max_events_raises(self):
        with _sharded() as cluster:
            with pytest.raises(ShardError, match="max_events"):
                cluster.run_for(1.0, max_events=10)

    def test_havoc_timeline_raises(self):
        script = FaultScript((Havoc(at_d=1.0, garbage=10),))
        with _sharded() as cluster:
            with pytest.raises(ShardError, match="Havoc"):
                script.install(cluster)

    def test_scrambled_restart_raises(self):
        script = FaultScript((Restart(at_d=1.0, nodes=(0,), scramble=True),))
        with _sharded() as cluster:
            with pytest.raises(ShardError, match="scramble"):
                script.install(cluster)

    def test_zero_lookahead_policy_raises_with_multiple_shards(self):
        with _sharded() as cluster:
            cluster.net.set_policy(IncoherentDelivery(0.1, 2.0))
            cluster.propose(general=0, value="v")
            with pytest.raises(ShardError, match="lookahead"):
                cluster.run_for(5.0)

    def test_zero_lookahead_policy_fine_on_one_shard(self):
        params = make_params(4)
        config = ScenarioConfig(
            params=params, seed=0, shards=1, shard_transport="inline"
        )
        with Cluster(config) as cluster:
            cluster.net.set_policy(IncoherentDelivery(0.1, 2.0))
            cluster.propose(general=0, value="v")
            cluster.run_for(5.0)  # single shard needs no lookahead
