"""Live fault injection: drivers, drop matrix, scramble parity, chaos e2e.

Covers the wall-clock side of the fault-script story:

* :func:`~repro.faults.live.validate_live_script` rejects sim-only actions
  and unresolvable policy names *before* a run starts.
* The sender-side drop matrix on :class:`~repro.runtime.aio.
  AsyncioTransport` -- isolate/reconnect, partition/heal (stacked cuts
  included) -- attributes suppressed copies to ``dropped_fault_count``.
* The sim timeline's ``Restart(scramble=True)`` and the live helpers
  (:func:`crash_in_process` / :func:`restart_in_process`) are the *same*
  implementation: applied to identical clusters with identically-derived
  randomness they produce bit-identical post-restart protocol state.
* The chaos runner end to end: SIGKILL a node mid-agreement with full
  state loss, the supervisor respawns it with scrambled state, and every
  node -- the revenant included -- converges on the agreed value with a
  clean teardown.
"""

from __future__ import annotations

import asyncio
import signal

import pytest

from repro.core.params import ProtocolParams
from repro.faults.byzantine import CrashStrategy
from repro.faults.live import (
    LIVE_POLICY_BUILDERS,
    build_live_policy,
    crash_in_process,
    restart_in_process,
    run_chaos_agreement,
    validate_live_script,
)
from repro.faults.timeline import (
    Crash,
    FaultScript,
    Havoc,
    Heal,
    Partition,
    Restart,
    SwapPolicy,
    SwapStrategy,
)
from repro.faults.transient import TransientFaultInjector, wipe_protocol_state
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import FixedDelay
from repro.runtime.aio import AsyncioTransport
from repro.sim.rand import RandomSource

PARAMS = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)


# ---------------------------------------------------------------------------
# Pre-run validation
# ---------------------------------------------------------------------------
class TestValidateLiveScript:
    def test_accepts_the_live_supported_actions(self) -> None:
        script = FaultScript(
            (
                Crash(at_d=1.0, nodes=(2,), state_loss=True),
                Restart(at_d=2.0, nodes=(2,), scramble=True),
                Partition(at_d=3.0, island=frozenset({0, 1})),
                Heal(at_d=4.0),
                SwapPolicy(at_d=5.0, policy="fast"),
            )
        )
        validate_live_script(script, backend="socket")
        validate_live_script(script, backend="asyncio")

    def test_rejects_swap_strategy(self) -> None:
        script = FaultScript(
            (SwapStrategy(at_d=1.0, node=3, strategy=CrashStrategy()),)
        )
        with pytest.raises(ValueError, match="sim only"):
            validate_live_script(script)

    def test_rejects_havoc(self) -> None:
        with pytest.raises(ValueError, match="sim only"):
            validate_live_script(FaultScript((Havoc(at_d=1.0),)))

    def test_rejects_policy_factories(self) -> None:
        script = FaultScript(
            (SwapPolicy(at_d=1.0, policy=lambda cluster: FixedDelay(0.0)),)
        )
        with pytest.raises(ValueError, match="must name a registered policy"):
            validate_live_script(script)

    def test_rejects_unknown_policy_names(self) -> None:
        script = FaultScript((SwapPolicy(at_d=1.0, policy="nope"),))
        with pytest.raises(ValueError, match="unknown live policy"):
            validate_live_script(script)

    def test_every_registered_policy_builds(self) -> None:
        for name in LIVE_POLICY_BUILDERS:
            policy = build_live_policy(name, PARAMS, lambda: 0.0)
            decision = policy.decide(0, 1, "payload", RandomSource(7, "probe"))
            assert decision.delay >= 0.0

    def test_restart_spec_roundtrips_scramble_fields(self) -> None:
        """The JSON spec form carries the new scramble knobs unchanged."""
        script = FaultScript.from_spec(
            [
                {"do": "crash", "at_d": 1.0, "nodes": [2], "state_loss": True},
                {
                    "do": "restart",
                    "at_d": 2.0,
                    "nodes": [2],
                    "scramble": True,
                    "value_pool": ["A", "B"],
                    "generals": [0],
                },
            ]
        )
        restart = script.actions[1]
        assert restart.scramble is True
        assert restart.value_pool == ("A", "B")
        assert restart.generals == (0,)
        validate_live_script(script)


# ---------------------------------------------------------------------------
# Sender-side drop matrix (asyncio transport; the socket one shares the code)
# ---------------------------------------------------------------------------
async def _mini_fabric(n: int = 3):
    transport = AsyncioTransport(
        time_scale=0.001,
        policy=FixedDelay(0.0),
        rand=RandomSource(5, "net"),
    )
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        transport.register(i, inboxes[i].append)
    return transport, inboxes


def _payloads(inbox) -> list:
    return [(e.sender, e.payload) for e in inbox]


class TestDropMatrix:
    def test_isolate_suppresses_both_directions(self) -> None:
        async def body() -> None:
            transport, inboxes = await _mini_fabric()
            transport.isolate([2])
            transport.send(0, 2, "to-isolated")
            transport.send(2, 0, "from-isolated")
            transport.send(0, 1, "between-connected")
            await asyncio.sleep(0.02)
            assert _payloads(inboxes[2]) == []
            assert _payloads(inboxes[0]) == []
            assert _payloads(inboxes[1]) == [(0, "between-connected")]
            assert transport.dropped_fault_count == 2
            transport.reconnect([2])
            transport.send(0, 2, "after-reconnect")
            await asyncio.sleep(0.02)
            assert _payloads(inboxes[2]) == [(0, "after-reconnect")]
            assert transport.dropped_fault_count == 2

        asyncio.run(body())

    def test_partition_cuts_cross_island_only_and_heals(self) -> None:
        async def body() -> None:
            transport, inboxes = await _mini_fabric()
            transport.set_partition(frozenset({0}))
            transport.send(0, 1, "cross-cut")
            transport.send(1, 2, "same-side")
            await asyncio.sleep(0.02)
            assert _payloads(inboxes[1]) == []
            assert _payloads(inboxes[2]) == [(1, "same-side")]
            assert transport.dropped_fault_count == 1
            transport.heal_partitions()
            transport.send(0, 1, "after-heal")
            await asyncio.sleep(0.02)
            assert _payloads(inboxes[1]) == [(0, "after-heal")]

        asyncio.run(body())

    def test_heal_unwraps_stacked_partitions(self) -> None:
        async def body() -> None:
            transport, inboxes = await _mini_fabric()
            base = transport.policy
            transport.set_partition(frozenset({0}))
            transport.set_partition(frozenset({2}))
            transport.send(0, 1, "x")
            transport.send(1, 2, "y")
            await asyncio.sleep(0.02)
            assert _payloads(inboxes[1]) == []
            assert _payloads(inboxes[2]) == []
            transport.heal_partitions()
            assert transport.policy is base, "heal must unwrap the whole stack"
            transport.broadcast(1, "wave")
            await asyncio.sleep(0.02)
            for inbox in inboxes.values():
                assert (1, "wave") in _payloads(inbox)

        asyncio.run(body())


# ---------------------------------------------------------------------------
# One scramble implementation: sim timeline vs live helpers, differentially
# ---------------------------------------------------------------------------
def _node_state_snapshot(node) -> tuple:
    """The protocol variables both crash/restart paths are supposed to touch."""
    insts = []
    for general in sorted(node.instances):
        inst = node.instances[general]
        insts.append(
            (
                general,
                inst.tau_g,
                inst.accepted_value,
                inst.stopped,
                inst.returned_at,
                inst.ia.last_g,
                sorted(inst.ia.last_gm),
                inst.mb.anchor,
            )
        )
    return (
        tuple(insts),
        node._last_initiation,
        sorted(node._last_initiation_by_value.items()),
        node._failed_initiation_at,
    )


class TestScrambleParity:
    # Non-integer offsets keep the fault instants clear of the cleanup
    # ticks (armed at construction, firing on integer multiples of d), so
    # both clusters see the exact same event order.
    CRASH_AT = 1.25
    RESTART_AT = 2.25

    def test_timeline_restart_equals_live_helpers(self) -> None:
        """Crash+scrambled-Restart via the sim timeline == the live helpers.

        Two identical sim clusters; on one the script fires through
        ``FaultScript.install``, on the other :func:`crash_in_process` and
        :func:`restart_in_process` (what the asyncio driver calls) are
        applied by hand with the identically-derived injector stream.  The
        post-restart protocol state must match bit for bit -- there is one
        scramble implementation, not two drifting copies.
        """
        script = FaultScript(
            (
                Crash(at_d=self.CRASH_AT, nodes=(2,), state_loss=True),
                Restart(
                    at_d=self.RESTART_AT,
                    nodes=(2,),
                    scramble=True,
                    value_pool=("A", "B"),
                    generals=(0,),
                ),
            )
        )
        scripted = Cluster(ScenarioConfig(params=PARAMS, seed=7))
        script.install(scripted)
        scripted.run_for(self.RESTART_AT + 0.25)

        manual = Cluster(ScenarioConfig(params=PARAMS, seed=7))
        node = manual.nodes[2]
        manual.run_for(self.CRASH_AT)
        crash_in_process(node, state_loss=True)
        assert node.instances == {} and node._last_initiation is None
        manual.run_for(self.RESTART_AT - self.CRASH_AT)
        injector = TransientFaultInjector(
            PARAMS,
            manual.rng.split(f"timeline/restart/1@{self.RESTART_AT!r}"),
            value_pool=["A", "B"],
            generals=[0],
        )
        restart_in_process(node, injector)
        manual.run_for(0.25)

        assert _node_state_snapshot(scripted.nodes[2]) == _node_state_snapshot(
            manual.nodes[2]
        )

    def test_wipe_protocol_state_is_total(self) -> None:
        cluster = Cluster(ScenarioConfig(params=PARAMS, seed=1))
        node = cluster.nodes[1]
        cluster.run_for(2.0)
        node.instance(0)
        node._last_initiation = 1.5
        node._last_initiation_by_value["v"] = 1.5
        node._failed_initiation_at = 1.0
        wipe_protocol_state(node)
        assert node.instances == {}
        assert node._last_initiation is None
        assert node._last_initiation_by_value == {}
        assert node._failed_initiation_at is None

    def test_restart_without_crash_is_a_noop(self) -> None:
        cluster = Cluster(ScenarioConfig(params=PARAMS, seed=1))
        node = cluster.nodes[1]
        before = node.live_timer_count()
        restart_in_process(node)  # not crashed: must not double the cleanup tick
        assert node.live_timer_count() == before


# ---------------------------------------------------------------------------
# Chaos end to end: kill, heal, re-converge, clean teardown
# ---------------------------------------------------------------------------
class TestChaosSmoke:
    HARD_TIMEOUT_S = 300  # a wedged run must fail loudly, not hang the suite

    def test_n4_f1_kill_and_reconverge(self) -> None:
        signal.alarm(self.HARD_TIMEOUT_S)
        try:
            chaos = run_chaos_agreement(
                n=4, f=1, seed=0, value="v", time_scale=0.02
            )
        finally:
            signal.alarm(0)
        report = chaos.report
        assert chaos.agreed, f"not all correct nodes agreed: {report.decisions}"
        assert chaos.converged, "the agreed value is not the proposed one"
        assert chaos.victims_recovered, (
            f"victims {chaos.victims} did not re-decide after their kill: "
            f"restarts={report.restart_counts} decisions={report.decisions}"
        )
        assert chaos.recovery_latency_d is not None
        assert chaos.recovery_latency_d <= chaos.recovery_bound_d
        for victim in chaos.victims:
            assert report.restart_counts.get(victim, 0) >= 1
        assert all(why == "ok" for why in report.exit_reasons.values()), (
            f"exit reasons: {report.exit_reasons}"
        )
        assert report.clean_exit, (
            f"exit_codes={report.exit_codes} live_timers={report.live_timers}"
        )
        assert chaos.ok

    def test_general_cannot_be_a_victim(self) -> None:
        with pytest.raises(ValueError, match="General"):
            run_chaos_agreement(n=4, f=1, general=0, victims=[0])
