"""Self-stabilization: convergence from arbitrary states (Corollary 5)."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.faults.transient import TransientFaultInjector
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import IncoherentDelivery, UniformDelay

from tests.conftest import make_cluster


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


def injector_for(cluster: Cluster, generals=(0, 1)) -> TransientFaultInjector:
    return TransientFaultInjector(
        cluster.params,
        cluster.rng.split("injector"),
        value_pool=["A", "B", "C"],
        generals=list(generals),
    )


def stabilize_and_agree(cluster: Cluster, value="recovered", general=0):
    """Wait Delta_stb, then run one agreement; returns (since, t0)."""
    cluster.mark_coherent()
    cluster.run_for(cluster.params.delta_stb)
    since = cluster.sim.now
    t0 = cluster.sim.now
    assert cluster.propose(general=general, value=value)
    cluster.run_for(cluster.params.delta_agr + 10 * cluster.params.d)
    return since, t0


class TestRandomCorruption:
    @pytest.mark.parametrize("seed", range(5))
    def test_full_havoc_recovers(self, params7, seed):
        cluster = make_cluster(params7, seed=seed)
        cluster.run_for(5.0 * params7.d)
        injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 300)
        since, t0 = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()
        properties.timeliness_validity(cluster, 0, t0, since_real=since).expect()

    def test_corruption_of_clocks_only(self, params7):
        cluster = make_cluster(params7, seed=50)
        for node in cluster.correct_nodes():
            node.clock.corrupt_offset(
                cluster.rng.split(f"o/{node.node_id}").uniform(-1e6, 1e6)
            )
        since, t0 = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()

    def test_garbage_traffic_only(self, params7):
        cluster = make_cluster(params7, seed=51)
        injector_for(cluster).inject_garbage_traffic(cluster.net, 500, 2 * params7.d)
        since, _t0 = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()

    def test_repeated_havoc_cycles(self, params7):
        """Corrupt, recover, corrupt again -- each recovery must succeed."""
        cluster = make_cluster(params7, seed=52)
        for cycle in range(2):
            injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 150)
            since, _ = stabilize_and_agree(cluster, value=f"cycle{cycle}")
            properties.validity(
                cluster, 0, f"cycle{cycle}", since_real=since
            ).expect()
            # Wait out the General's same/different-value pacing.
            cluster.run_for(params7.delta_v)


class TestTargetedCorruption:
    def test_fake_ready_wave_cannot_cascade(self, params7):
        """Claim 4's hazard: planted near-miss ready quorums must drain."""
        cluster = make_cluster(params7, seed=60)
        inj = injector_for(cluster)
        for node in cluster.correct_nodes():
            inj.plant_fake_ready_wave(node, general=0, value="ghost")
        cluster.run_for(params7.delta_stb)
        # No correct node may have decided the ghost value.
        assert all(
            dec.value != "ghost" for dec in cluster.decisions(0)
        )
        since, _ = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()

    def test_stale_anchor_heals(self, params7):
        cluster = make_cluster(params7, seed=61)
        inj = injector_for(cluster)
        for node in cluster.correct_nodes()[:3]:
            inj.plant_stale_anchor(node, general=0, value="old")
        since, _ = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()

    def test_poisoned_last_gm_does_not_block_forever(self, params7):
        """Future last(G, m) stamps must be cleaned, restoring liveness."""
        cluster = make_cluster(params7, seed=62)
        inj = injector_for(cluster)
        for node in cluster.correct_nodes():
            inj.plant_poisoned_last_gm(node, general=0, value="recovered")
        since, _ = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()


class TestIncoherentPeriod:
    def test_recovery_after_lossy_network_phase(self, params7):
        """Run through a drop-happy network phase, then stabilize."""
        cluster = make_cluster(params7, seed=70)
        cluster.set_policy(IncoherentDelivery(0.4, 20.0 * params7.d))
        injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 200)
        cluster.run_for(50.0 * params7.d)  # chaos with losses and huge delays
        cluster.set_policy(UniformDelay(0.1 * params7.delta, params7.delta))
        since, t0 = stabilize_and_agree(cluster)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()
        properties.timeliness_validity(cluster, 0, t0, since_real=since).expect()

    def test_no_ghost_decisions_after_stabilization(self, params7):
        """Post-stabilization, decisions only follow real initiations."""
        cluster = make_cluster(params7, seed=71)
        injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 300)
        cluster.mark_coherent()
        cluster.run_for(params7.delta_stb)
        since = cluster.sim.now
        cluster.run_for(2 * params7.delta_agr)  # nobody proposes
        assert cluster.decisions(0, since_real=since) == []
        assert cluster.decisions(1, since_real=since) == []


class TestConvergenceTime:
    def test_convergence_within_delta_stb(self, params7):
        """The paper's bound: stable after 2 * Delta_reset of coherence.

        We verify the *measured* convergence: an agreement started exactly
        Delta_stb after coherence always succeeds (tested across seeds).
        """
        for seed in range(3):
            cluster = make_cluster(params7, seed=100 + seed)
            injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 300)
            since, t0 = stabilize_and_agree(cluster)
            properties.validity(cluster, 0, "recovered", since_real=since).expect()

    def test_empirical_convergence_often_faster(self, params7):
        """Shape check: in practice the state drains before Delta_stb."""
        cluster = make_cluster(params7, seed=110)
        injector_for(cluster).havoc(cluster.correct_nodes(), cluster.net, 200)
        cluster.mark_coherent()
        # Try at half the bound; record (not assert) the outcome, then assert
        # at the full bound.  Half-bound success is typical but not promised.
        cluster.run_for(params7.delta_stb / 2)
        half_ok = cluster.propose(general=1, value="early")
        if half_ok:
            cluster.run_for(params7.delta_agr + 10 * params7.d)
        cluster.run_for(params7.delta_stb)
        since = cluster.sim.now
        guard = 0
        while not cluster.propose(general=0, value="late"):
            cluster.run_for(params7.delta_0)
            guard += 1
            assert guard < 100, "General blocked long past stabilization"
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        properties.validity(cluster, 0, "late", since_real=since).expect()
