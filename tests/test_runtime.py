"""Host-conformance suite: Sim, Asyncio and Socket hosts against one contract.

The sans-I/O refactor is only worth anything if every backend honours the
same :class:`~repro.runtime.api.ProtocolHost` semantics, so the contract is
written once as backend-agnostic coroutines -- monotonic ``now()``, timers
firing in deadline order (FIFO at equal deadlines), cancelation never
firing and staying idempotent, refusal of timers after ``close()``,
``live_timer_count()`` draining to zero, authenticated transport, exactly
one broadcast copy per node (the sender included), per-node randomness,
trace attribution (also under interleaved sends) -- and executed against
all three backends.  A new backend earns its keep by passing this file.

The asyncio and socket halves necessarily run against the wall clock:
delays are kept tiny and assertions are about *ordering and counting*,
never exact timing.  Plus end-to-end smokes: a 4-node, f = 1 agreement
over real coroutines, and the same over real UDP datagrams with one OS
process per node, each with a Byzantine sender in the cast.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.params import BOTTOM, ProtocolParams
from repro.faults.byzantine import MirrorParticipantStrategy, TwoFacedParticipantStrategy
from repro.net.delivery import FixedDelay
from repro.net.network import Network
from repro.runtime.aio import AsyncioCluster, AsyncioHost, AsyncioTransport, run_agreement_async
from repro.runtime.framing import derive_key
from repro.runtime.sim_host import SimHost
from repro.runtime.socket_host import SocketHost, SocketTransport, run_agreement_socket
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

PARAMS = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)


# ---------------------------------------------------------------------------
# Backend harnesses: build hosts, advance time, in one uniform shape
# ---------------------------------------------------------------------------
class SimHarness:
    """Discrete-event backend: time advances by running the kernel."""

    name = "sim"

    def __init__(self) -> None:
        self.sim = Simulator()
        self.tracer = Tracer(enabled=True)
        self.net = Network(self.sim, FixedDelay(0.25), RandomSource(11), self.tracer)
        self.hosts: list[SimHost] = []

    def make_host(self, node_id: int) -> SimHost:
        host = SimHost(
            node_id,
            self.sim,
            self.net,
            self.tracer,
            rand=RandomSource(11, f"host/{node_id}"),
            params=PARAMS,
        )
        self.hosts.append(host)
        return host

    async def drive(self, duration_units: float) -> None:
        self.sim.run_until(self.sim.now + duration_units)

    def close(self) -> None:
        for host in self.hosts:
            host.close()


class AioHarness:
    """Asyncio backend: time advances by actually sleeping (scaled)."""

    name = "asyncio"
    TIME_SCALE = 0.002  # 2 ms per protocol unit: fast, yet >> loop jitter

    def __init__(self) -> None:
        self.tracer = Tracer(enabled=True)
        self.transport = AsyncioTransport(
            time_scale=self.TIME_SCALE,
            policy=FixedDelay(0.25),
            rand=RandomSource(11, "net"),
            tracer=self.tracer,
        )
        self.hosts: list[AsyncioHost] = []

    def make_host(self, node_id: int) -> AsyncioHost:
        host = AsyncioHost(
            node_id,
            self.transport,
            params=PARAMS,
            rand=RandomSource(11, f"host/{node_id}"),
            tracer=self.tracer,
        )
        self.hosts.append(host)
        return host

    async def drive(self, duration_units: float) -> None:
        # A slack unit absorbs call_later granularity; assertions below are
        # about ordering/counting, not exact arrival times.
        await asyncio.sleep((duration_units + 1.0) * self.TIME_SCALE)

    def close(self) -> None:
        for host in self.hosts:
            host.close()


class SocketHarness:
    """Socket backend: real UDP datagrams between in-process hosts.

    The conformance half runs every host on one loop (the multiprocessing
    orchestration is exercised by the end-to-end smokes below); the bytes
    still cross the kernel's UDP stack, so framing, authentication and the
    reader wiring are all on the hook.
    """

    name = "socket"
    TIME_SCALE = 0.005  # 5 ms per protocol unit: UDP latency stays far below

    def __init__(self) -> None:
        self.tracer = Tracer(enabled=True)
        self.directory: dict[int, tuple[str, int]] = {}
        self.auth_key = derive_key("conformance")
        self.epoch = time.time()
        self.transports: list[SocketTransport] = []
        self.hosts: list[SocketHost] = []

    def make_host(self, node_id: int) -> SocketHost:
        transport = SocketTransport(
            node_id,
            auth_key=self.auth_key,
            time_scale=self.TIME_SCALE,
            epoch_wall=self.epoch,
            directory=self.directory,
            policy=FixedDelay(0.25),
            rand=RandomSource(11, f"net/{node_id}"),
            tracer=self.tracer,
        )
        host = SocketHost(
            node_id,
            transport,
            params=PARAMS,
            rand=RandomSource(11, f"host/{node_id}"),
            tracer=self.tracer,
        )
        self.transports.append(transport)
        self.hosts.append(host)
        return host

    async def drive(self, duration_units: float) -> None:
        # Datagram transit adds (sub-ms) latency on top of call_later
        # granularity; 1.5 units of slack keeps a loaded machine honest.
        await asyncio.sleep((duration_units + 1.5) * self.TIME_SCALE)

    def close(self) -> None:
        for host in self.hosts:
            host.close()
        for transport in self.transports:
            transport.close()


# ---------------------------------------------------------------------------
# The contract, backend-agnostic
# ---------------------------------------------------------------------------
async def contract_monotonic_now(h) -> None:
    host = h.make_host(0)
    readings = [host.now()]
    for _ in range(3):
        await h.drive(1.0)
        readings.append(host.now())
    assert readings == sorted(readings), "now() went backwards"
    assert readings[-1] > readings[0], "now() never advanced"


async def contract_timers_fire_in_deadline_order(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    host.schedule_after(3.0, lambda: fired.append("late"))
    host.schedule_after(1.0, lambda: fired.append("early"))
    host.schedule_after(2.0, lambda: fired.append("middle"))
    await h.drive(5.0)
    assert fired == ["early", "middle", "late"]


async def contract_equal_deadlines_fifo(h) -> None:
    host = h.make_host(0)
    fired: list[int] = []
    for i in range(5):
        host.schedule_after(1.0, lambda i=i: fired.append(i))
    await h.drive(3.0)
    assert fired == [0, 1, 2, 3, 4], "same-deadline timers must fire FIFO"


async def contract_canceled_timer_never_fires(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    keep = host.schedule_after(1.0, lambda: fired.append("keep"))
    drop = host.schedule_after(1.0, lambda: fired.append("drop"))
    assert keep.alive and drop.alive
    drop.cancel()
    assert not drop.alive
    drop.cancel()  # idempotent
    await h.drive(3.0)
    assert fired == ["keep"]
    assert not keep.alive  # consumed by firing


async def contract_schedule_at_absolute_local_time(h) -> None:
    host = h.make_host(0)
    fired: list[float] = []
    target = host.now() + 2.0
    host.schedule_at(target, lambda: fired.append(host.now()))
    await h.drive(4.0)
    assert len(fired) == 1
    assert fired[0] >= target - 1e-9


async def contract_live_timer_count_drains_to_zero(h) -> None:
    host = h.make_host(0)
    handles = [host.schedule_after(1.0 + i, lambda: None) for i in range(4)]
    assert host.live_timer_count() == 4
    handles[0].cancel()
    assert host.live_timer_count() == 3
    await h.drive(10.0)
    assert host.live_timer_count() == 0, "fired timers must leave the registry"
    host.schedule_after(1.0, lambda: None)
    host.cancel_all_timers()
    assert host.live_timer_count() == 0, "cancel_all_timers must drain"


async def contract_transport_authenticates_sender(h) -> None:
    host_a, host_b = h.make_host(0), h.make_host(1)
    inbox_a: list = []
    inbox_b: list = []
    host_a.attach(inbox_a.append)
    host_b.attach(inbox_b.append)
    host_a.send(1, "hello")
    await h.drive(2.0)
    assert [(e.sender, e.payload) for e in inbox_b] == [(0, "hello")]
    assert inbox_a == []


async def contract_broadcast_reaches_all_including_self(h) -> None:
    hosts = [h.make_host(i) for i in range(3)]
    inboxes: list[list] = [[] for _ in hosts]
    for host, inbox in zip(hosts, inboxes):
        host.attach(inbox.append)
    hosts[2].broadcast("wave")
    await h.drive(2.0)
    for inbox in inboxes:
        assert [(e.sender, e.payload) for e in inbox] == [(2, "wave")]


async def contract_rand_is_per_node_deterministic(h) -> None:
    host = h.make_host(0)
    draws = [host.rand.randint(0, 10 ** 9) for _ in range(4)]
    replay = RandomSource(11, "host/0")
    assert draws == [replay.randint(0, 10 ** 9) for _ in range(4)]


async def contract_trace_attributes_node_and_local_time(h) -> None:
    host = h.make_host(0)
    assert host.trace_enabled
    host.trace("conformance_probe", detail=42)
    events = [ev for ev in h.tracer.events if ev.kind == "conformance_probe"]
    assert len(events) == 1
    assert events[0].node == 0
    assert events[0].detail == {"detail": 42}
    assert events[0].local_time is not None


async def contract_schedule_after_close_is_refused(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    host.schedule_after(1.0, lambda: fired.append("pre"))
    host.close()
    refused = host.schedule_after(0.5, lambda: fired.append("post"))
    assert not refused.alive, "a closed host must hand back a dead handle"
    refused.cancel()  # harmless on a never-armed handle
    at = host.schedule_at(host.now() + 0.5, lambda: fired.append("post_at"))
    assert not at.alive
    assert host.live_timer_count() == 0, "close() must leave the registry drained"
    await h.drive(3.0)
    assert fired == [], "nothing may fire after close()"


async def contract_cancel_is_idempotent(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    doomed = host.schedule_after(1.0, lambda: fired.append("doomed"))
    kept = host.schedule_after(1.0, lambda: fired.append("kept"))
    doomed.cancel()
    assert not doomed.alive
    doomed.cancel()  # second cancel: no error, no state change
    assert not doomed.alive
    assert host.live_timer_count() == 1
    await h.drive(3.0)
    assert fired == ["kept"]
    assert not kept.alive  # consumed by firing
    kept.cancel()  # cancel after fire: a no-op, not an error
    kept.cancel()
    assert not kept.alive
    assert host.live_timer_count() == 0


async def contract_broadcast_one_copy_per_node_exactly(h) -> None:
    """Interleaved broadcasts each land exactly once everywhere.

    Guards the include-self-exactly-once semantics: a transport must not
    deliver a duplicate self-copy (e.g. a local shortcut on top of the
    loopback datagram) and must not skip the sender either.
    """
    hosts = [h.make_host(i) for i in range(3)]
    inboxes: list[list] = [[] for _ in hosts]
    for host, inbox in zip(hosts, inboxes):
        host.attach(inbox.append)
    hosts[0].broadcast("a0")
    hosts[1].broadcast("b0")
    hosts[0].broadcast("a1")
    await h.drive(2.0)
    expected = [(0, "a0"), (0, "a1"), (1, "b0")]
    for node_id, inbox in enumerate(inboxes):
        copies = sorted((e.sender, e.payload) for e in inbox)
        assert copies == expected, f"node {node_id} saw {copies}"


async def contract_trace_attribution_survives_interleaved_sends(h) -> None:
    host_a, host_b = h.make_host(0), h.make_host(1)
    host_a.attach(lambda e: None)
    host_b.attach(lambda e: None)
    host_a.send(1, "x1")
    host_b.send(0, "y1")
    host_a.trace("probe", mark="a")
    host_a.send(1, "x2")
    host_b.trace("probe", mark="b")
    await h.drive(2.0)
    sends = [ev for ev in h.tracer.events if ev.kind == "send"]
    assert [(ev.node, ev.detail["payload"]) for ev in sends] == [
        (0, "x1"),
        (1, "y1"),
        (0, "x2"),
    ], "send events must be attributed to the true sender, in send order"
    probes = [ev for ev in h.tracer.events if ev.kind == "probe"]
    assert [(ev.node, ev.detail["mark"]) for ev in probes] == [(0, "a"), (1, "b")]
    delivers = {
        (ev.node, ev.detail["payload"])
        for ev in h.tracer.events
        if ev.kind == "deliver"
    }
    assert delivers == {(1, "x1"), (1, "x2"), (0, "y1")}, (
        "deliver events must be attributed to the receiving node"
    )


async def contract_close_then_respawn_starts_fresh(h) -> None:
    """The supervisor's restart model, at the host-contract level.

    Closing a host kills its incarnation for good: its registry drains and
    it keeps refusing timers even after a *new* host for the same node id
    exists.  The respawned incarnation starts with an empty registry and
    arms timers normally -- nothing leaks across incarnations.
    """
    old = h.make_host(0)
    fired: list[str] = []
    old.schedule_after(1.0, lambda: fired.append("old"))
    old.close()
    assert old.live_timer_count() == 0, "close() must drain the registry"
    fresh = h.make_host(0)  # the respawned incarnation
    stale = old.schedule_after(0.5, lambda: fired.append("stale"))
    assert not stale.alive, "a dead incarnation must keep refusing timers"
    assert fresh.live_timer_count() == 0, "a respawn must start fresh"
    live = fresh.schedule_after(1.0, lambda: fired.append("fresh"))
    assert live.alive
    await h.drive(3.0)
    assert fired == ["fresh"], "only the new incarnation's timers may fire"
    assert fresh.live_timer_count() == 0


async def contract_coalescing_preserves_per_sender_fifo(h) -> None:
    """A burst to one receiver arrives in send order, coalesced or not.

    The wire backends pack same-receiver messages into BATCH datagrams at
    delivery-release time; the sim backend never coalesces.  Either way the
    per-sender FIFO guarantee the protocol layer leans on must hold: twelve
    back-to-back sends (equal policy delay, so the wire backends *will*
    coalesce them) land as exactly twelve envelopes, in order.
    """
    host_a, host_b = h.make_host(0), h.make_host(1)
    inbox: list = []
    host_a.attach(lambda e: None)
    host_b.attach(inbox.append)
    burst = [f"m{i}" for i in range(12)]
    for payload in burst:
        host_a.send(1, payload)
    await h.drive(2.0)
    assert [e.payload for e in inbox] == burst, "coalescing reordered a burst"
    assert all(e.sender == 0 for e in inbox)


CONTRACTS = [
    contract_monotonic_now,
    contract_timers_fire_in_deadline_order,
    contract_equal_deadlines_fifo,
    contract_canceled_timer_never_fires,
    contract_schedule_at_absolute_local_time,
    contract_live_timer_count_drains_to_zero,
    contract_transport_authenticates_sender,
    contract_broadcast_reaches_all_including_self,
    contract_rand_is_per_node_deterministic,
    contract_trace_attributes_node_and_local_time,
    contract_schedule_after_close_is_refused,
    contract_cancel_is_idempotent,
    contract_broadcast_one_copy_per_node_exactly,
    contract_trace_attribution_survives_interleaved_sends,
    contract_close_then_respawn_starts_fresh,
    contract_coalescing_preserves_per_sender_fifo,
]
CONTRACT_IDS = [fn.__name__.removeprefix("contract_") for fn in CONTRACTS]


async def _run_contract(harness_cls, contract) -> None:
    harness = harness_cls()
    try:
        await contract(harness)
    finally:
        harness.close()


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_sim_host_conformance(contract) -> None:
    asyncio.run(_run_contract(SimHarness, contract))


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_asyncio_host_conformance(contract) -> None:
    asyncio.run(_run_contract(AioHarness, contract))


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_socket_host_conformance(contract) -> None:
    asyncio.run(_run_contract(SocketHarness, contract))


# ---------------------------------------------------------------------------
# Asyncio end-to-end smoke: agreement with a Byzantine sender in the cast
# ---------------------------------------------------------------------------
class TestAsyncioAgreementSmoke:
    def test_n4_f1_agreement_under_byzantine_mirror_sender(self) -> None:
        """All three correct nodes decide the General's value over asyncio."""
        cluster, decisions = asyncio.run(
            run_agreement_async(
                n=4,
                f=1,
                seed=3,
                value="v",
                byzantine={3: MirrorParticipantStrategy()},
                time_scale=0.02,
            )
        )
        assert sorted(decisions) == [0, 1, 2]
        assert all(dec.value == "v" for dec in decisions.values())
        assert cluster.transport.delivered_count > 0
        # Timer hygiene across the whole cluster: close() ran, so every
        # host's registry (cleanup ticks included) is drained.
        for host in cluster.hosts.values():
            assert host.live_timer_count() == 0

    def test_n4_f1_agreement_under_twofaced_sender(self) -> None:
        """A quorum-splitting participant cannot split 3 correct nodes."""
        _cluster, decisions = asyncio.run(
            run_agreement_async(
                n=4,
                f=1,
                seed=9,
                value="w",
                byzantine={3: TwoFacedParticipantStrategy(camp=(0, 1))},
                time_scale=0.02,
            )
        )
        decided = {repr(d.value) for d in decisions.values() if d.value is not BOTTOM}
        assert len(decided) <= 1, f"correct nodes split: {decided}"
        assert decided == {"'w'"}

    def test_correct_only_cluster_reuses_protocol_unchanged(self) -> None:
        """No Byzantine cast: plain agreement, and counters look sane."""
        cluster, decisions = asyncio.run(
            run_agreement_async(n=4, f=1, seed=0, value="x", time_scale=0.02)
        )
        assert sorted(decisions) == [0, 1, 2, 3]
        assert {d.value for d in decisions.values()} == {"x"}
        assert cluster.transport.sent_count >= cluster.transport.delivered_count


# ---------------------------------------------------------------------------
# Socket end-to-end smoke: real UDP datagrams, one OS process per node
# ---------------------------------------------------------------------------
class TestSocketAgreementSmoke:
    def test_n4_f1_agreement_under_byzantine_mirror_sender(self) -> None:
        """All three correct nodes decide the value over real sockets.

        The full loop: spawn children, broker the address book, stream
        decisions back over the results pipes, tear everything down -- with
        zero live timers and every child exiting 0 (no orphans).
        """
        report, decisions = run_agreement_socket(
            n=4,
            f=1,
            seed=3,
            value="v",
            byzantine={3: MirrorParticipantStrategy()},
            time_scale=0.05,
        )
        assert sorted(decisions) == [0, 1, 2]
        assert all(dec.value == "v" for dec in decisions.values())
        assert report.delivered_count > 0
        assert report.rejected_count == 0, "well-keyed frames must authenticate"
        assert report.exit_codes == {0: 0, 1: 0, 2: 0, 3: 0}
        # Post-close registries must be drained -- and the check is not
        # vacuous: every correct node held at least its perpetual cleanup
        # tick going into close(), so teardown genuinely reaped timers.
        assert all(count == 0 for count in report.live_timers.values()), (
            f"leaked timers: {report.live_timers}"
        )
        for node_id in report.correct_ids:
            assert report.timers_at_close[node_id] >= 1, (
                f"node {node_id} reported no live timers before close"
            )
        assert report.clean_exit

    def test_n4_f1_agreement_under_twofaced_sender(self) -> None:
        """A quorum-splitting participant cannot split 3 correct processes."""
        report, decisions = run_agreement_socket(
            n=4,
            f=1,
            seed=9,
            value="w",
            byzantine={3: TwoFacedParticipantStrategy(camp=(0, 1))},
            time_scale=0.05,
        )
        decided = {repr(d.value) for d in decisions.values() if d.value is not BOTTOM}
        assert len(decided) <= 1, f"correct nodes split: {decided}"
        assert decided == {"'w'"}
        assert report.clean_exit
