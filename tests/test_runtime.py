"""Host-conformance suite: SimHost and AsyncioHost against one contract.

The sans-I/O refactor is only worth anything if every backend honours the
same :class:`~repro.runtime.api.ProtocolHost` semantics, so the contract is
written once as backend-agnostic coroutines -- monotonic ``now()``, timers
firing in deadline order (FIFO at equal deadlines), cancelation never
firing, ``live_timer_count()`` draining to zero, authenticated transport,
per-node randomness, trace attribution -- and executed against both
backends.  A third backend earns its keep by passing this file.

The asyncio half necessarily runs against the wall clock: delays are kept
tiny and assertions are about *ordering and counting*, never exact timing.
Plus an end-to-end smoke: a 4-node, f = 1 agreement over real coroutines
with a Byzantine sender in the cast.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.params import BOTTOM, ProtocolParams
from repro.faults.byzantine import MirrorParticipantStrategy, TwoFacedParticipantStrategy
from repro.net.delivery import FixedDelay
from repro.net.network import Network
from repro.runtime.aio import AsyncioCluster, AsyncioHost, AsyncioTransport, run_agreement_async
from repro.runtime.sim_host import SimHost
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

PARAMS = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)


# ---------------------------------------------------------------------------
# Backend harnesses: build hosts, advance time, in one uniform shape
# ---------------------------------------------------------------------------
class SimHarness:
    """Discrete-event backend: time advances by running the kernel."""

    name = "sim"

    def __init__(self) -> None:
        self.sim = Simulator()
        self.tracer = Tracer(enabled=True)
        self.net = Network(self.sim, FixedDelay(0.25), RandomSource(11), self.tracer)

    def make_host(self, node_id: int) -> SimHost:
        return SimHost(
            node_id,
            self.sim,
            self.net,
            self.tracer,
            rand=RandomSource(11, f"host/{node_id}"),
            params=PARAMS,
        )

    async def drive(self, duration_units: float) -> None:
        self.sim.run_until(self.sim.now + duration_units)

    def close(self) -> None:
        pass


class AioHarness:
    """Asyncio backend: time advances by actually sleeping (scaled)."""

    name = "asyncio"
    TIME_SCALE = 0.002  # 2 ms per protocol unit: fast, yet >> loop jitter

    def __init__(self) -> None:
        self.tracer = Tracer(enabled=True)
        self.transport = AsyncioTransport(
            time_scale=self.TIME_SCALE,
            policy=FixedDelay(0.25),
            rand=RandomSource(11, "net"),
            tracer=self.tracer,
        )
        self.hosts: list[AsyncioHost] = []

    def make_host(self, node_id: int) -> AsyncioHost:
        host = AsyncioHost(
            node_id,
            self.transport,
            params=PARAMS,
            rand=RandomSource(11, f"host/{node_id}"),
            tracer=self.tracer,
        )
        self.hosts.append(host)
        return host

    async def drive(self, duration_units: float) -> None:
        # A slack unit absorbs call_later granularity; assertions below are
        # about ordering/counting, not exact arrival times.
        await asyncio.sleep((duration_units + 1.0) * self.TIME_SCALE)

    def close(self) -> None:
        for host in self.hosts:
            host.close()


# ---------------------------------------------------------------------------
# The contract, backend-agnostic
# ---------------------------------------------------------------------------
async def contract_monotonic_now(h) -> None:
    host = h.make_host(0)
    readings = [host.now()]
    for _ in range(3):
        await h.drive(1.0)
        readings.append(host.now())
    assert readings == sorted(readings), "now() went backwards"
    assert readings[-1] > readings[0], "now() never advanced"


async def contract_timers_fire_in_deadline_order(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    host.schedule_after(3.0, lambda: fired.append("late"))
    host.schedule_after(1.0, lambda: fired.append("early"))
    host.schedule_after(2.0, lambda: fired.append("middle"))
    await h.drive(5.0)
    assert fired == ["early", "middle", "late"]


async def contract_equal_deadlines_fifo(h) -> None:
    host = h.make_host(0)
    fired: list[int] = []
    for i in range(5):
        host.schedule_after(1.0, lambda i=i: fired.append(i))
    await h.drive(3.0)
    assert fired == [0, 1, 2, 3, 4], "same-deadline timers must fire FIFO"


async def contract_canceled_timer_never_fires(h) -> None:
    host = h.make_host(0)
    fired: list[str] = []
    keep = host.schedule_after(1.0, lambda: fired.append("keep"))
    drop = host.schedule_after(1.0, lambda: fired.append("drop"))
    assert keep.alive and drop.alive
    drop.cancel()
    assert not drop.alive
    drop.cancel()  # idempotent
    await h.drive(3.0)
    assert fired == ["keep"]
    assert not keep.alive  # consumed by firing


async def contract_schedule_at_absolute_local_time(h) -> None:
    host = h.make_host(0)
    fired: list[float] = []
    target = host.now() + 2.0
    host.schedule_at(target, lambda: fired.append(host.now()))
    await h.drive(4.0)
    assert len(fired) == 1
    assert fired[0] >= target - 1e-9


async def contract_live_timer_count_drains_to_zero(h) -> None:
    host = h.make_host(0)
    handles = [host.schedule_after(1.0 + i, lambda: None) for i in range(4)]
    assert host.live_timer_count() == 4
    handles[0].cancel()
    assert host.live_timer_count() == 3
    await h.drive(10.0)
    assert host.live_timer_count() == 0, "fired timers must leave the registry"
    host.schedule_after(1.0, lambda: None)
    host.cancel_all_timers()
    assert host.live_timer_count() == 0, "cancel_all_timers must drain"


async def contract_transport_authenticates_sender(h) -> None:
    host_a, host_b = h.make_host(0), h.make_host(1)
    inbox_a: list = []
    inbox_b: list = []
    host_a.attach(inbox_a.append)
    host_b.attach(inbox_b.append)
    host_a.send(1, "hello")
    await h.drive(2.0)
    assert [(e.sender, e.payload) for e in inbox_b] == [(0, "hello")]
    assert inbox_a == []


async def contract_broadcast_reaches_all_including_self(h) -> None:
    hosts = [h.make_host(i) for i in range(3)]
    inboxes: list[list] = [[] for _ in hosts]
    for host, inbox in zip(hosts, inboxes):
        host.attach(inbox.append)
    hosts[2].broadcast("wave")
    await h.drive(2.0)
    for inbox in inboxes:
        assert [(e.sender, e.payload) for e in inbox] == [(2, "wave")]


async def contract_rand_is_per_node_deterministic(h) -> None:
    host = h.make_host(0)
    draws = [host.rand.randint(0, 10 ** 9) for _ in range(4)]
    replay = RandomSource(11, "host/0")
    assert draws == [replay.randint(0, 10 ** 9) for _ in range(4)]


async def contract_trace_attributes_node_and_local_time(h) -> None:
    host = h.make_host(0)
    assert host.trace_enabled
    host.trace("conformance_probe", detail=42)
    events = [ev for ev in h.tracer.events if ev.kind == "conformance_probe"]
    assert len(events) == 1
    assert events[0].node == 0
    assert events[0].detail == {"detail": 42}
    assert events[0].local_time is not None


CONTRACTS = [
    contract_monotonic_now,
    contract_timers_fire_in_deadline_order,
    contract_equal_deadlines_fifo,
    contract_canceled_timer_never_fires,
    contract_schedule_at_absolute_local_time,
    contract_live_timer_count_drains_to_zero,
    contract_transport_authenticates_sender,
    contract_broadcast_reaches_all_including_self,
    contract_rand_is_per_node_deterministic,
    contract_trace_attributes_node_and_local_time,
]
CONTRACT_IDS = [fn.__name__.removeprefix("contract_") for fn in CONTRACTS]


async def _run_contract(harness_cls, contract) -> None:
    harness = harness_cls()
    try:
        await contract(harness)
    finally:
        harness.close()


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_sim_host_conformance(contract) -> None:
    asyncio.run(_run_contract(SimHarness, contract))


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_asyncio_host_conformance(contract) -> None:
    asyncio.run(_run_contract(AioHarness, contract))


# ---------------------------------------------------------------------------
# Asyncio end-to-end smoke: agreement with a Byzantine sender in the cast
# ---------------------------------------------------------------------------
class TestAsyncioAgreementSmoke:
    def test_n4_f1_agreement_under_byzantine_mirror_sender(self) -> None:
        """All three correct nodes decide the General's value over asyncio."""
        cluster, decisions = asyncio.run(
            run_agreement_async(
                n=4,
                f=1,
                seed=3,
                value="v",
                byzantine={3: MirrorParticipantStrategy()},
                time_scale=0.02,
            )
        )
        assert sorted(decisions) == [0, 1, 2]
        assert all(dec.value == "v" for dec in decisions.values())
        assert cluster.transport.delivered_count > 0
        # Timer hygiene across the whole cluster: close() ran, so every
        # host's registry (cleanup ticks included) is drained.
        for host in cluster.hosts.values():
            assert host.live_timer_count() == 0

    def test_n4_f1_agreement_under_twofaced_sender(self) -> None:
        """A quorum-splitting participant cannot split 3 correct nodes."""
        _cluster, decisions = asyncio.run(
            run_agreement_async(
                n=4,
                f=1,
                seed=9,
                value="w",
                byzantine={3: TwoFacedParticipantStrategy(camp=(0, 1))},
                time_scale=0.02,
            )
        )
        decided = {repr(d.value) for d in decisions.values() if d.value is not BOTTOM}
        assert len(decided) <= 1, f"correct nodes split: {decided}"
        assert decided == {"'w'"}

    def test_correct_only_cluster_reuses_protocol_unchanged(self) -> None:
        """No Byzantine cast: plain agreement, and counters look sane."""
        cluster, decisions = asyncio.run(
            run_agreement_async(n=4, f=1, seed=0, value="x", time_scale=0.02)
        )
        assert sorted(decisions) == [0, 1, 2, 3]
        assert {d.value for d in decisions.values()} == {"x"}
        assert cluster.transport.sent_count >= cluster.transport.delivered_count
