"""Tests for the scenario-matrix runner (repro.harness.suite)."""

from __future__ import annotations

import json

import pytest

from repro.core.params import ProtocolParams
from repro.harness.suite import (
    CAST_BUILDERS,
    SUITE_PRESETS,
    _run_cell,
    expand_grid,
    load_suite_config,
    run_suite,
    suite_report,
)

SMALL_SUITE = {
    "name": "unit",
    "seeds": [0, 1],
    "base": {"delta": 1.0, "rho": 1e-4, "value": "v"},
    "grid": {
        "n": [4],
        "timeline": ["none", "partition_heal"],
    },
}


class TestExpandGrid:
    def test_cartesian_product_in_declared_order(self):
        cells = expand_grid(
            {
                "base": {"delta": 1.0},
                "grid": {"n": [4, 7], "timeline": ["none", "churn"]},
            }
        )
        assert len(cells) == 4
        assert [(c["n"], c["timeline"]) for c in cells] == [
            (4, "none"),
            (4, "churn"),
            (7, "none"),
            (7, "churn"),
        ]
        assert all(c["delta"] == 1.0 for c in cells)

    def test_no_grid_yields_single_base_cell(self):
        assert expand_grid({"base": {"n": 4}}) == [{"n": 4}]


class TestCasts:
    def test_all_casts_respect_fault_bound(self):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        for name, builder in CAST_BUILDERS.items():
            cast = builder(params)
            assert len(cast) <= params.f, name
            assert 0 not in cast, f"{name}: the General must stay correct"

    def test_crash_f_is_maximal(self):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        assert len(CAST_BUILDERS["crash_f"](params)) == params.f

    def test_unknown_cast_raises(self):
        with pytest.raises(KeyError, match="unknown cast"):
            _run_cell({"n": 4, "cast": "gremlins"}, 0)


class TestRunSuite:
    def test_rows_one_per_cell_in_grid_order(self):
        rows = run_suite(SMALL_SUITE)
        assert [row["timeline"] for row in rows] == ["none", "partition_heal"]
        for row in rows:
            assert row["runs"] == 2
            assert row["agreement_ok"] == 2
            assert row["proposed"] == 2

    def test_partition_cell_attributes_loss(self):
        rows = run_suite(SMALL_SUITE)
        quiet, cut = rows
        assert quiet["dropped_partition_mean"] == 0
        assert cut["dropped_partition_mean"] > 0

    def test_seeds_override(self):
        rows = run_suite(SMALL_SUITE, seeds=[5])
        assert rows[0]["runs"] == 1

    def test_workers_bit_identical(self):
        serial = run_suite(SMALL_SUITE)
        for workers in (1, 4):
            assert run_suite(SMALL_SUITE, workers=workers) == serial

    def test_inline_timeline_cell(self):
        config = {
            "name": "inline",
            "seeds": [0],
            "base": {"n": 4, "value": "v"},
            "grid": {
                "timeline": [[{"at_d": 1.0, "do": "isolate", "nodes": [3]}]]
            },
        }
        rows = run_suite(config)
        assert rows[0]["timeline"] == "inline[1]"
        assert rows[0]["dropped_partition_mean"] > 0


class TestPresetsAndReport:
    def test_smoke_preset_runs_clean(self):
        rows = run_suite(SUITE_PRESETS["smoke"])
        assert all(row["agreement_ok"] == row["runs"] for row in rows)

    def test_report_contains_header_and_table(self):
        rows = run_suite(SMALL_SUITE)
        report = suite_report(SMALL_SUITE, rows)
        assert "Suite `unit`" in report
        assert "2/2 cells with agreement" in report
        assert "| timeline |" in report.replace("  ", " ")

    def test_load_suite_config(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(SMALL_SUITE))
        assert load_suite_config(path) == SMALL_SUITE
