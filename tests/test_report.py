"""Tests for the report/timeline rendering helpers."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.harness.report import (
    decision_table,
    rows_to_csv,
    rows_to_markdown,
    timeline,
)
from repro.harness.scenario import Cluster, ScenarioConfig

from tests.conftest import make_cluster, run_agreement


@pytest.fixture
def params4() -> ProtocolParams:
    return ProtocolParams(n=4, f=1, delta=1.0, rho=1e-4)


ROWS = [
    {"n": 4, "latency": 2.4444, "ok": True},
    {"n": 7, "latency": 2.5, "ok": True},
]


class TestMarkdown:
    def test_header_and_rows(self):
        text = rows_to_markdown(ROWS, title="demo")
        assert "### demo" in text
        assert "| n | latency | ok |" in text
        assert "| 4 | 2.444 | True |" in text
        assert text.count("\n") >= 5

    def test_empty(self):
        assert "no rows" in rows_to_markdown([], title="x")

    def test_missing_column_blank(self):
        text = rows_to_markdown([{"a": 1}, {"b": 2}])
        assert "|  |" in text  # second row has no "a"


class TestCsv:
    def test_round_trippable_shape(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().split("\n")
        assert lines[0] == "n,latency,ok"
        assert lines[1] == "4,2.444,True"
        assert len(lines) == 3

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestTimeline:
    def test_contains_protocol_milestones(self, params4):
        cluster = make_cluster(params4, seed=1)
        run_agreement(cluster, general=0, value="v")
        text = timeline(cluster)
        assert "propose" in text
        assert "i_accept" in text
        assert "decide" in text
        # Every line starts with a timestamp column.
        for line in text.splitlines():
            float(line.split()[0])  # must parse

    def test_node_filter(self, params4):
        cluster = make_cluster(params4, seed=2)
        run_agreement(cluster, general=0, value="v")
        text = timeline(cluster, node=1)
        assert all(" n1  " in line for line in text.splitlines())

    def test_limit_truncates(self, params4):
        cluster = make_cluster(params4, seed=3)
        run_agreement(cluster, general=0, value="v")
        text = timeline(cluster, limit=2)
        assert "truncated" in text
        assert len(text.splitlines()) == 3


class TestDecisionTable:
    def test_one_row_per_correct_node(self, params4):
        cluster = make_cluster(params4, seed=4)
        run_agreement(cluster, general=0, value="v")
        text = decision_table(cluster, 0)
        assert "Decisions for General 0" in text
        assert text.count("'v'") == len(cluster.correct_ids)
