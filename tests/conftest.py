"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import UniformDelay
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(12345)


@pytest.fixture
def params4() -> ProtocolParams:
    """Smallest legal configuration: n=4, f=1."""
    return ProtocolParams(n=4, f=1, delta=1.0, rho=1e-4)


@pytest.fixture
def params7() -> ProtocolParams:
    """The paper-typical n=7, f=2 configuration."""
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


def make_cluster(params: ProtocolParams, seed: int = 0, **kwargs) -> Cluster:
    """Convenience cluster builder used across integration tests."""
    return Cluster(ScenarioConfig(params=params, seed=seed, **kwargs))


def run_agreement(
    cluster: Cluster, general: int = 0, value: object = "v", extra: float = 10.0
) -> float:
    """Propose and run to completion; returns the initiation real-time."""
    t0 = cluster.sim.now
    assert cluster.propose(general=general, value=value)
    cluster.run_for(cluster.params.delta_agr + extra * cluster.params.d)
    return t0


@pytest.fixture
def fast_policy(params7: ProtocolParams) -> UniformDelay:
    """Delivery at a tenth of the worst case."""
    return UniformDelay(0.01 * params7.delta, 0.1 * params7.delta)
