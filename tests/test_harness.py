"""Tests for scenario construction, metrics, and stats helpers."""

from __future__ import annotations

import pytest

from repro.core.params import BOTTOM, ProtocolParams
from repro.harness import metrics
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.stats import fraction_true, percentile, summarize
from repro.faults.byzantine import CrashStrategy

from tests.conftest import make_cluster, run_agreement


@pytest.fixture
def params4() -> ProtocolParams:
    return ProtocolParams(n=4, f=1, delta=1.0, rho=1e-4)


class TestScenario:
    def test_builds_requested_topology(self, params4):
        cluster = make_cluster(params4, seed=1, byzantine={3: CrashStrategy()})
        assert cluster.correct_ids == [0, 1, 2]
        assert cluster.byzantine_ids == [3]
        assert len(cluster.nodes) == 4

    def test_rejects_too_many_byzantine(self, params4):
        with pytest.raises(ValueError):
            make_cluster(
                params4,
                byzantine={2: CrashStrategy(), 3: CrashStrategy()},
            )

    def test_allow_extra_byzantine_flag(self, params4):
        cluster = Cluster(
            ScenarioConfig(
                params=params4,
                byzantine={2: CrashStrategy(), 3: CrashStrategy()},
                allow_extra_byzantine=True,
            )
        )
        assert len(cluster.byzantine_ids) == 2

    def test_same_seed_reproduces_run_exactly(self, params4):
        a = make_cluster(params4, seed=9)
        b = make_cluster(params4, seed=9)
        run_agreement(a, general=0, value="v")
        run_agreement(b, general=0, value="v")
        da = [(d.node, d.value, d.returned_real) for d in a.decisions(0)]
        db = [(d.node, d.value, d.returned_real) for d in b.decisions(0)]
        assert da == db

    def test_different_seeds_differ(self, params4):
        a = make_cluster(params4, seed=1)
        b = make_cluster(params4, seed=2)
        run_agreement(a, general=0, value="v")
        run_agreement(b, general=0, value="v")
        ta = sorted(d.returned_real for d in a.decisions(0))
        tb = sorted(d.returned_real for d in b.decisions(0))
        assert ta != tb

    def test_drift_rates_within_rho(self, params4):
        cluster = make_cluster(params4, seed=3)
        for node in cluster.correct_nodes():
            assert 1 - params4.rho <= node.clock.rate <= 1 + params4.rho

    def test_drift_disabled(self, params4):
        cluster = make_cluster(params4, seed=4, drifted_rates=False)
        assert all(n.clock.rate == 1.0 for n in cluster.correct_nodes())

    def test_protocol_node_accessor_type_checks(self, params4):
        cluster = make_cluster(params4, seed=5, byzantine={3: CrashStrategy()})
        with pytest.raises(TypeError):
            cluster.protocol_node(3)

    def test_propose_via_byzantine_general_raises(self, params4):
        cluster = make_cluster(params4, seed=6, byzantine={0: CrashStrategy()})
        with pytest.raises(TypeError):
            cluster.propose(0, "v")


class TestMetrics:
    def test_spreads_and_latencies(self, params4):
        cluster = make_cluster(params4, seed=7)
        t0 = run_agreement(cluster, general=0, value="v")
        decs = cluster.decisions(0)
        spread = metrics.decision_spread_real(decs)
        anchors = metrics.anchor_spread_real(decs)
        lats = metrics.decision_latencies(decs, t0)
        assert spread is not None and spread >= 0
        assert anchors is not None and anchors >= 0
        assert len(lats) == len(decs)
        assert all(lat > 0 for lat in lats)

    def test_spread_none_for_singletons(self):
        assert metrics.decision_spread_real([]) is None

    def test_decided_only_filters_bottom(self, params4):
        cluster = make_cluster(params4, seed=8)
        from tests.test_properties_checkers import forged_decision

        decs = [
            forged_decision(cluster, 0, "v"),
            forged_decision(cluster, 1, BOTTOM),
        ]
        assert len(metrics.decided_only(decs)) == 1
        assert metrics.decision_values(decs) == {"v"}

    def test_message_stats(self, params4):
        cluster = make_cluster(params4, seed=9)
        run_agreement(cluster, general=0, value="v")
        stats = metrics.message_stats(cluster)
        assert stats["sent"] > 0
        assert stats["delivered"] <= stats["sent"]

    def test_i_accept_events_translation(self, params4):
        cluster = make_cluster(params4, seed=10)
        t0 = run_agreement(cluster, general=0, value="v")
        events = metrics.i_accept_events(cluster, 0)
        assert len(events) == len(cluster.correct_ids)
        for _node, real_t, value, anchor_real in events:
            assert value == "v"
            # Anchor (real) must sit near the initiation, before the accept.
            assert t0 - 2 * params4.d <= anchor_real <= real_t


class TestStats:
    def test_summarize_basics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_summarize_empty(self):
        assert summarize([]) is None

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_percentile_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_true(self):
        assert fraction_true([True, False, True, True]) == 0.75
        with pytest.raises(ValueError):
            fraction_true([])

    def test_summary_as_dict(self):
        s = summarize([5.0])
        assert s.as_dict()["count"] == 1


class TestSummarizeLatencies:
    """Nearest-rank percentiles, verified against hand-computed values.

    Nearest-rank: the q-th percentile of a sorted n-sample is the
    ``ceil(q * n)``-th smallest value.  The old ``int(q * n)`` index was
    one rank high everywhere it mattered: p50 of an even-sized sample
    took the upper middle, and p99 of exactly 100 samples took the max.
    """

    def test_even_sample_p50_is_lower_middle(self):
        from repro.harness.benchrecord import summarize_latencies

        out = summarize_latencies([0.004, 0.001, 0.003, 0.002])
        # ceil(0.5 * 4) = 2nd smallest = 2ms (the buggy index gave 3ms).
        assert out["p50_ms"] == pytest.approx(2.0)
        # ceil(0.99 * 4) = 4th smallest: p99 of 4 samples IS the max.
        assert out["p99_ms"] == pytest.approx(4.0)
        assert out["mean_ms"] == pytest.approx(2.5)
        assert out["max_ms"] == pytest.approx(4.0)

    def test_p99_of_100_samples_is_99th_value_not_max(self):
        from repro.harness.benchrecord import summarize_latencies

        out = summarize_latencies([i / 1000.0 for i in range(1, 101)])
        assert out["p50_ms"] == pytest.approx(50.0)
        # ceil(0.99 * 100) = 99th smallest = 99ms (the buggy index
        # returned the 100th -- the max -- so p99 == max on every
        # 100-sample run).
        assert out["p99_ms"] == pytest.approx(99.0)
        assert out["max_ms"] == pytest.approx(100.0)

    def test_odd_sample_p50_is_exact_middle(self):
        from repro.harness.benchrecord import summarize_latencies

        out = summarize_latencies([0.005, 0.001, 0.003])
        assert out["p50_ms"] == pytest.approx(3.0)

    def test_single_sample_and_empty(self):
        from repro.harness.benchrecord import summarize_latencies

        out = summarize_latencies([0.007])
        assert out["p50_ms"] == pytest.approx(7.0)
        assert out["p99_ms"] == pytest.approx(7.0)
        assert out["max_ms"] == pytest.approx(7.0)
        zeros = summarize_latencies([])
        assert zeros == {
            "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0
        }
