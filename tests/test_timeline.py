"""Tests for declarative fault timelines (repro.faults.timeline).

The core contract: a :class:`FaultScript` run is a pure function of
(scenario config, script, master seed) -- rows *and trace digests* are
bit-identical across repeated runs and across any worker count.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.core.params import ProtocolParams
from repro.faults.byzantine import CrashStrategy, MirrorParticipantStrategy
from repro.faults.timeline import (
    Crash,
    FaultScript,
    Heal,
    Isolate,
    Partition,
    Reconnect,
    Restart,
    SwapPolicy,
    SwapStrategy,
    build_policy,
    build_timeline,
)
from repro.harness import properties
from repro.harness.parallel import SeedPool, shutdown_shared_pools
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.suite import _run_cell
from repro.net.delivery import LinkPartitionPolicy, UniformDelay
from repro.sim.trace import trace_digest


def _params(n=4):
    return ProtocolParams(n=n, f=1, delta=1.0, rho=1e-4)


def _cluster(params, seed=0, **kwargs):
    return Cluster(ScenarioConfig(params=params, seed=seed, **kwargs))


class TestActions:
    def test_partition_wraps_and_heal_unwraps(self):
        params = _params()
        cluster = _cluster(params)
        script = FaultScript(
            (Partition(at_d=1.0, island=(0, 1)), Heal(at_d=2.0))
        )
        script.install(cluster)
        cluster.run_for(1.5 * params.d)
        assert isinstance(cluster.net.policy, LinkPartitionPolicy)
        assert cluster.net.policy.active
        cluster.run_for(1.0 * params.d)
        # Healing unwraps the wrapper entirely: flapping partition/heal
        # cycles must not deepen the per-message decide() chain.
        assert isinstance(cluster.net.policy, UniformDelay)

    def test_flapping_partitions_do_not_stack_wrappers(self):
        params = _params()
        cluster = _cluster(params)
        script = FaultScript(
            tuple(
                action
                for i in range(4)
                for action in (
                    Partition(at_d=1.0 + i, island=(0, 1)),
                    Heal(at_d=1.5 + i),
                )
            )
        )
        script.install(cluster)
        cluster.run_for(10 * params.d)
        assert isinstance(cluster.net.policy, UniformDelay)

    def test_partition_suppresses_cross_island_traffic(self):
        params = _params()
        cluster = _cluster(params)
        FaultScript((Partition(at_d=0.5, island=(0, 1)),)).install(cluster)
        cluster.propose(general=0, value="v")
        cluster.run_for(6 * params.d)
        assert cluster.net.dropped_partition > 0
        # A permanent quorum-less cut: nobody can decide.
        assert not any(
            dec.decided
            for dec in cluster.latest_decision_per_node(0).values()
        )

    def test_partition_heal_lets_agreement_complete_later(self):
        params = _params()
        # Long horizon: re-sends after the heal must finish the agreement.
        ok_seeds = 0
        for seed in range(3):
            cluster = _cluster(params, seed=seed)
            build_timeline("partition_heal", params).install(cluster)
            cluster.propose(general=0, value="v")
            cluster.run_for(24 * params.d)
            assert properties.agreement(cluster, 0).holds
            if any(
                dec.decided
                for dec in cluster.latest_decision_per_node(0).values()
            ):
                ok_seeds += 1
        assert ok_seeds >= 1  # at least some seeds decide through the cut

    def test_isolate_and_reconnect(self):
        params = _params()
        cluster = _cluster(params)
        script = FaultScript(
            (Isolate(at_d=0.5, nodes=(3,)), Reconnect(at_d=2.0, nodes=(3,)))
        )
        script.install(cluster)
        cluster.run_for(1.0 * params.d)
        assert 3 in cluster.net._partitioned
        cluster.run_for(1.5 * params.d)
        assert 3 not in cluster.net._partitioned

    def test_swap_policy_by_name(self):
        params = _params()
        cluster = _cluster(params)
        FaultScript((SwapPolicy(at_d=1.0, policy="fixed_max"),)).install(cluster)
        cluster.run_for(1.5 * params.d)
        from repro.net.delivery import FixedDelay

        assert isinstance(cluster.net.policy, FixedDelay)

    def test_unknown_policy_name_raises(self):
        params = _params()
        cluster = _cluster(params)
        with pytest.raises(KeyError, match="unknown policy"):
            build_policy("warp_speed", cluster)

    def test_crash_stops_participation_and_restart_resumes(self):
        params = _params()
        cluster = _cluster(params)
        script = FaultScript(
            (
                Crash(at_d=1.0, nodes=(3,), state_loss=True),
                Restart(at_d=3.0, nodes=(3,)),
            )
        )
        script.install(cluster)
        cluster.run_for(1.5 * params.d)
        node = cluster.nodes[3]
        assert node.crashed
        assert node.instances == {}  # state loss wiped the protocol state
        cluster.run_for(2.0 * params.d)
        assert not node.crashed
        # The cleanup tick was re-armed: it fires again after restart.
        before = cluster.sim.events_executed
        cluster.run_for(3.0 * params.d)
        assert cluster.sim.events_executed > before

    def test_restart_of_running_node_is_noop(self):
        params = _params()
        cluster = _cluster(params)
        # Restart without a matching crash: must not double the cleanup tick.
        FaultScript((Restart(at_d=1.0, nodes=(3,)),)).install(cluster)
        reference = _cluster(params, seed=0)
        cluster.propose(general=0, value="v")
        reference.propose(general=0, value="v")
        cluster.run_for(10 * params.d)
        reference.run_for(10 * params.d)
        # Same protocol behaviour as an unscripted run (modulo the one
        # timeline trace event / simulator event of the no-op firing).
        assert cluster.tracer.count("decide") == reference.tracer.count("decide")
        assert cluster.sim.events_executed == reference.sim.events_executed + 1

    def test_swap_strategy_validates_at_construction(self):
        with pytest.raises(ValueError, match="needs a Strategy"):
            SwapStrategy(at_d=1.0, node=2, strategy=None)
        with pytest.raises(ValueError, match="needs a Strategy"):
            FaultScript.from_spec([{"at_d": 1.0, "do": "swap_strategy", "node": 2}])

    def test_same_offset_havocs_get_independent_streams(self):
        from repro.faults.timeline import Havoc

        params = _params()
        action = Havoc(at_d=2.0, garbage=30)
        digests = []
        for index in (0, 1, 0):
            cluster = _cluster(params, seed=3)
            cluster.run_for(2 * params.d)
            action.apply(cluster, index=index)
            cluster.run_for(2 * params.d)
            digests.append(trace_digest(cluster.tracer))
        # The script position salts the stream: two equal actions at the
        # same offset inject *different* garbage (but each replays exactly).
        assert digests[0] != digests[1]
        assert digests[0] == digests[2]

    def test_churn_preserves_agreement_among_uncrashed(self):
        params = _params()
        script = build_timeline("churn", params)
        assert script.churned_nodes() == frozenset({3})
        cluster = _cluster(params)
        script.install(cluster)
        cluster.propose(general=0, value="v")
        cluster.run_for(24 * params.d)
        assert properties.agreement(
            cluster, 0, exclude=script.churned_nodes()
        ).holds

    def test_swap_strategy_requires_byzantine_node(self):
        params = _params()
        cluster = _cluster(params, byzantine={3: CrashStrategy()})
        ok = FaultScript(
            (SwapStrategy(at_d=1.0, node=3, strategy=MirrorParticipantStrategy()),)
        )
        ok.install(cluster)
        cluster.run_for(2 * params.d)
        assert isinstance(cluster.nodes[3].strategy, MirrorParticipantStrategy)

        bad = FaultScript(
            (SwapStrategy(at_d=1.0, node=1, strategy=MirrorParticipantStrategy()),)
        )
        cluster2 = _cluster(params)
        bad.install(cluster2)
        with pytest.raises(TypeError, match="not Byzantine"):
            cluster2.run_for(2 * params.d)


class TestFromSpec:
    def test_round_trip_from_dicts(self):
        script = FaultScript.from_spec(
            [
                {"at_d": 1.0, "do": "partition", "island": [0, 1]},
                {"at_d": 3.0, "do": "heal"},
                {"at_d": 4.0, "do": "crash", "nodes": [3], "state_loss": True},
                {"at_d": 5.0, "do": "restart", "nodes": [3]},
                {"at_d": 6.0, "do": "policy", "policy": "bursty"},
            ]
        )
        assert len(script) == 5
        assert script.actions[0] == Partition(at_d=1.0, island=(0, 1))
        assert script.churned_nodes() == frozenset({3})

    def test_unknown_action_raises(self):
        with pytest.raises(KeyError, match="unknown action"):
            FaultScript.from_spec([{"at_d": 0.0, "do": "meteor_strike"}])

    def test_unknown_timeline_name_raises(self):
        with pytest.raises(KeyError, match="unknown timeline"):
            build_timeline("nope", _params())

    def test_build_timeline_passthrough_and_inline(self):
        params = _params()
        script = FaultScript((Heal(at_d=1.0),))
        assert build_timeline(script, params) is script
        inline = build_timeline([{"at_d": 1.0, "do": "heal"}], params)
        assert inline.actions == script.actions


class TestDeterminism:
    """Bit-identical rows and trace digests: repeats and worker counts."""

    CELL = {
        "n": 4,
        "delta": 1.0,
        "rho": 1e-4,
        "value": "v",
        "trace": True,
        "run_for_d": 20.0,
        "timeline": [
            {"at_d": 1.0, "do": "partition", "island": [0, 1]},
            {"at_d": 3.0, "do": "heal"},
            {"at_d": 4.0, "do": "crash", "nodes": [3], "state_loss": True},
            {"at_d": 8.0, "do": "restart", "nodes": [3]},
            {"at_d": 10.0, "do": "policy", "policy": "bursty"},
        ],
    }

    def teardown_method(self):
        shutdown_shared_pools()

    def test_repeated_runs_identical(self):
        first = [_run_cell(self.CELL, seed) for seed in range(3)]
        second = [_run_cell(self.CELL, seed) for seed in range(3)]
        assert first == second
        # The digest covers the full event trace, not just the row numbers.
        assert all(len(r[-1]) == 64 for r in first)

    def test_workers_do_not_change_rows_or_digests(self):
        seeds = list(range(4))
        serial = [_run_cell(self.CELL, seed) for seed in seeds]
        for workers in (1, 4):
            with SeedPool.shared(workers) as pool:
                fanned = pool.map(partial(_run_cell, self.CELL), seeds)
            assert fanned == serial, f"workers={workers} diverged"

    def test_digest_sensitive_to_timeline(self):
        quiet = dict(self.CELL, timeline="none")
        a = _run_cell(self.CELL, 0)
        b = _run_cell(quiet, 0)
        assert a[-1] != b[-1]

    def test_scripted_havoc_is_seed_deterministic(self):
        cell = {
            "n": 4,
            "trace": True,
            "run_for_d": 20.0,
            "timeline": [
                {"at_d": 2.0, "do": "havoc", "garbage": 50},
                {"at_d": 2.0, "do": "coherent"},
            ],
        }
        assert _run_cell(cell, 7) == _run_cell(cell, 7)
        assert _run_cell(cell, 7) != _run_cell(cell, 8)


class TestTraceDigest:
    def test_digest_matches_for_equal_traces(self):
        params = _params()
        a = _cluster(params, seed=5)
        b = _cluster(params, seed=5)
        for cluster in (a, b):
            cluster.propose(general=0, value="x")
            cluster.run_for(6 * params.d)
        assert trace_digest(a.tracer) == trace_digest(b.tracer)

    def test_digest_differs_across_seeds(self):
        params = _params()
        a = _cluster(params, seed=5)
        b = _cluster(params, seed=6)
        for cluster in (a, b):
            cluster.propose(general=0, value="x")
            cluster.run_for(6 * params.d)
        assert trace_digest(a.tracer) != trace_digest(b.tracer)

    def test_disabled_tracing_still_digests_counts(self):
        params = _params()
        a = _cluster(params, seed=5, trace=False)
        a.propose(general=0, value="x")
        a.run_for(6 * params.d)
        digest = trace_digest(a.tracer)
        assert len(digest) == 64
        b = _cluster(params, seed=5, trace=False)
        b.propose(general=0, value="x")
        b.run_for(6 * params.d)
        assert trace_digest(b.tracer) == digest
