"""Unit tests for deterministic split randomness."""

from __future__ import annotations

from repro.sim.rand import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_split_is_deterministic(self):
        a = RandomSource(7).split("net")
        b = RandomSource(7).split("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_split_children_independent_of_sibling_consumption(self):
        """Adding a consumer must not perturb other streams."""
        root1 = RandomSource(9)
        net1 = root1.split("net")
        draws_before = [net1.random() for _ in range(5)]

        root2 = RandomSource(9)
        other = root2.split("clock")  # new consumer
        _ = [other.random() for _ in range(100)]
        net2 = root2.split("net")
        assert draws_before == [net2.random() for _ in range(5)]

    def test_nested_split_paths_differ(self):
        root = RandomSource(3)
        a = root.split("x").split("y")
        b = root.split("x/y")  # same flattened string, different path object
        assert a.path == "root/x/y"
        # Identical paths produce identical streams; this *is* the same path.
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]


class TestDraws:
    def test_uniform_in_range(self):
        rng = RandomSource(5)
        for _ in range(100):
            x = rng.uniform(2.0, 3.0)
            assert 2.0 <= x <= 3.0

    def test_randint_inclusive(self):
        rng = RandomSource(5)
        values = {rng.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_chance_extremes(self):
        rng = RandomSource(5)
        assert all(rng.chance(1.0) for _ in range(20))
        assert not any(rng.chance(0.0) for _ in range(20))

    def test_choice_and_sample(self):
        rng = RandomSource(5)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        picked = rng.sample(items, 2)
        assert len(picked) == 2
        assert len(set(picked)) == 2

    def test_shuffled_does_not_mutate(self):
        rng = RandomSource(5)
        items = [1, 2, 3, 4, 5]
        out = rng.shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items

    def test_gauss_returns_float(self):
        rng = RandomSource(5)
        assert isinstance(rng.gauss(0.0, 1.0), float)
