"""Soak tests: long multi-agreement workloads with continuous checking."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.faults.byzantine import MirrorParticipantStrategy, ReplayStrategy
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.workloads import (
    ChurnEvent,
    run_churn_stream,
    run_interleaved_generals,
    run_round_robin_generals,
    run_sequential_stream,
)


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


class TestSequentialStream:
    def test_ten_agreements_all_clean(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=1))
        records = run_sequential_stream(
            cluster, general=0, values=[f"v{i}" for i in range(10)]
        )
        assert len(records) == 10
        assert all(rec.validity_ok and rec.agreement_ok for rec in records)
        properties.separation(cluster, 0).expect()

    def test_stream_with_byzantine_participant(self, params7):
        cluster = Cluster(
            ScenarioConfig(
                params=params7, seed=2, byzantine={6: MirrorParticipantStrategy()}
            )
        )
        records = run_sequential_stream(
            cluster, general=0, values=[f"v{i}" for i in range(5)]
        )
        assert all(rec.validity_ok for rec in records)

    def test_stream_with_replay_attacker(self, params7):
        """Replayed stale waves must not produce phantom agreements."""
        cluster = Cluster(
            ScenarioConfig(
                params=params7,
                seed=3,
                byzantine={
                    6: ReplayStrategy(delay_local=20 * params7.d, bursts=4)
                },
            )
        )
        records = run_sequential_stream(
            cluster, general=0, values=["a", "b", "c"]
        )
        assert all(rec.validity_ok and rec.agreement_ok for rec in records)
        properties.separation(cluster, 0).expect()
        # No decision may exist that does not correspond to a real proposal.
        values_decided = {
            dec.value for dec in cluster.decisions(0) if dec.decided
        }
        assert values_decided <= {"a", "b", "c"}


class TestMultiGeneral:
    def test_round_robin(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=4))
        records = run_round_robin_generals(cluster, generals=(0, 1, 2), rounds=2)
        assert len(records) == 6
        assert all(rec.validity_ok and rec.agreement_ok for rec in records)

    def test_interleaved_concurrent_generals(self, params7):
        """Three Generals initiating simultaneously: instances independent."""
        cluster = Cluster(ScenarioConfig(params=params7, seed=5))
        records = run_interleaved_generals(
            cluster, generals=(0, 1, 2), values_per_general=2
        )
        assert len(records) == 6
        assert all(rec.validity_ok and rec.agreement_ok for rec in records)


class TestChurn:
    def test_crash_and_resume_mid_stream(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=6))
        churn = [
            ChurnEvent(step=1, node=5, action="crash"),
            ChurnEvent(step=2, node=6, action="crash"),
            ChurnEvent(step=3, node=5, action="resume"),
            ChurnEvent(step=4, node=6, action="resume"),
        ]
        records = run_churn_stream(
            cluster,
            general=0,
            values=[f"v{i}" for i in range(6)],
            churn=churn,
        )
        assert all(rec.validity_ok for rec in records), [
            (rec.value, rec.validity_ok) for rec in records
        ]
        assert all(rec.agreement_ok for rec in records)

    def test_churn_beyond_f_rejected(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=7))
        churn = [
            ChurnEvent(step=0, node=4, action="crash"),
            ChurnEvent(step=0, node=5, action="crash"),
            ChurnEvent(step=0, node=6, action="crash"),
        ]
        with pytest.raises(ValueError, match="exceeds the fault bound"):
            run_churn_stream(cluster, 0, ["v"], churn)

    def test_unknown_action_rejected(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=8))
        with pytest.raises(ValueError, match="unknown churn action"):
            run_churn_stream(
                cluster, 0, ["v"], [ChurnEvent(step=0, node=5, action="reboot")]
            )
