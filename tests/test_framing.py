"""Byte-level hardening tests for the shared wire framing.

Both non-sim transports (:class:`~repro.runtime.aio.AsyncioTransport` and
:class:`~repro.runtime.socket_host.SocketTransport`) move every message
through :mod:`repro.runtime.framing`, so this file is the single place the
wire format is pinned down: payload round-trips for the whole protocol
vocabulary, and refusal -- with the right exception -- of truncated,
oversized, tampered, forged-sender and garbage frames.
"""

from __future__ import annotations

import pytest

from repro.core.messages import (
    ALL_MESSAGE_TYPES,
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
)
from repro.core.params import BOTTOM
from repro.runtime import framing
from repro.runtime.framing import (
    Frame,
    FrameAuthError,
    FrameCodecError,
    FrameError,
    HEADER_BYTES,
    MAX_BODY_BYTES,
    MIN_FRAME_BYTES,
    OversizedFrameError,
    TruncatedFrameError,
    decode_frame,
    derive_key,
    encode_frame,
)

KEY = derive_key("test")
OTHER_KEY = derive_key("not-the-test-key")

ROUND_TRIP_PAYLOADS = [
    "a plain string value",
    0,
    -17,
    3.25,
    True,
    None,
    ("a", 1, ("nested", 2)),
    ["list", "of", ("mixed", 3)],
    {"str": "keys", "nested": {"ok": True}},
    BOTTOM,
    InitiatorMsg(general=0, value="v"),
    SupportMsg(general=1, value="w"),
    ApproveMsg(general=2, value=("tuple", "valued")),
    ReadyMsg(general=0, value=BOTTOM),
    MBInitMsg(general=0, origin=3, value="A", k=1),
    MBEchoMsg(general=0, origin=3, value="A", k=2),
    MBInitPrimeMsg(general=1, origin=0, value="B", k=1),
    MBEchoPrimeMsg(general=1, origin=2, value="B", k=3),
]


class TestRoundTrip:
    @pytest.mark.parametrize("payload", ROUND_TRIP_PAYLOADS, ids=repr)
    def test_payload_survives_json(self, payload) -> None:
        frame = encode_frame(7, payload, KEY, sent_at=1.5)
        decoded = decode_frame(frame, KEY)
        assert decoded == Frame(sender=7, payload=payload, sent_at=1.5)

    def test_bottom_round_trips_to_the_singleton(self) -> None:
        decoded = decode_frame(encode_frame(0, BOTTOM, KEY), KEY)
        assert decoded.payload is BOTTOM

    def test_message_dataclasses_reconstruct_their_types(self) -> None:
        for cls in ALL_MESSAGE_TYPES:
            original = (
                cls(general=0, value="v")
                if cls in (InitiatorMsg, SupportMsg, ApproveMsg, ReadyMsg)
                else cls(general=0, origin=1, value="v", k=2)
            )
            decoded = decode_frame(encode_frame(1, original, KEY), KEY).payload
            assert type(decoded) is cls
            assert decoded == original

    def test_unencodable_payload_refused_at_encode(self) -> None:
        with pytest.raises(FrameCodecError):
            encode_frame(0, object(), KEY)
        with pytest.raises(FrameCodecError):
            encode_frame(0, {1: "non-string key"}, KEY)

    @pytest.mark.skipif(not framing.HAVE_MSGPACK, reason="msgpack not installed")
    def test_payload_survives_msgpack(self) -> None:
        msg = MBInitMsg(general=0, origin=3, value="A", k=1)
        frame = encode_frame(3, msg, KEY, sent_at=2.0, codec="msgpack")
        assert decode_frame(frame, KEY) == Frame(3, msg, 2.0)

    @pytest.mark.skipif(framing.HAVE_MSGPACK, reason="msgpack is installed")
    def test_msgpack_codec_gated_when_unavailable(self) -> None:
        with pytest.raises(FrameCodecError, match="msgpack"):
            encode_frame(0, "x", KEY, codec="msgpack")

    def test_unknown_codec_name_refused(self) -> None:
        with pytest.raises(FrameCodecError):
            encode_frame(0, "x", KEY, codec="pickle")


class TestTruncated:
    def test_every_strict_prefix_is_refused(self) -> None:
        frame = encode_frame(2, SupportMsg(general=0, value="v"), KEY)
        for cut in range(len(frame)):
            with pytest.raises(FrameError):
                decode_frame(frame[:cut], KEY)

    def test_below_structural_minimum_is_truncated(self) -> None:
        for cut in range(MIN_FRAME_BYTES):
            with pytest.raises(TruncatedFrameError):
                decode_frame(b"\x00" * cut, KEY)

    def test_body_shorter_than_declared_is_truncated(self) -> None:
        frame = encode_frame(2, "payload", KEY)
        with pytest.raises(TruncatedFrameError):
            decode_frame(frame[:-1], KEY)

    def test_trailing_garbage_is_refused(self) -> None:
        frame = encode_frame(2, "payload", KEY)
        with pytest.raises(FrameCodecError):
            decode_frame(frame + b"\x00", KEY)


class TestOversized:
    def test_encode_refuses_oversized_body(self) -> None:
        with pytest.raises(OversizedFrameError):
            encode_frame(0, "x" * (MAX_BODY_BYTES + 1), KEY)

    def test_decode_refuses_oversized_declared_length(self) -> None:
        # Forge a header declaring a body beyond the cap; the decoder must
        # refuse on the declared length alone, before trusting any byte.
        frame = bytearray(encode_frame(0, "x", KEY))
        huge = (MAX_BODY_BYTES + 1).to_bytes(4, "big")
        frame[HEADER_BYTES - 4 : HEADER_BYTES] = huge
        with pytest.raises(OversizedFrameError):
            decode_frame(bytes(frame) + b"\x00" * 64, KEY)

    def test_max_size_body_round_trips(self) -> None:
        # JSON quotes add 2 bytes; stay just under the cap.
        payload = "x" * (MAX_BODY_BYTES - 40)
        assert decode_frame(encode_frame(0, payload, KEY), KEY).payload == payload


class TestAuthentication:
    def test_wrong_key_is_refused(self) -> None:
        frame = encode_frame(1, "hello", KEY)
        with pytest.raises(FrameAuthError):
            decode_frame(frame, OTHER_KEY)

    def test_flipped_body_byte_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[HEADER_BYTES] ^= 0xFF
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_flipped_tag_byte_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[-1] ^= 0x01
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_forged_sender_is_refused(self) -> None:
        # The tag covers the header: rewriting the sender id in place breaks
        # authentication -- Definition 2 over a spoofable datagram fabric.
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[3:7] = (2).to_bytes(4, "big")
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_bad_magic_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[0:2] = b"XX"
        with pytest.raises(FrameCodecError):
            decode_frame(bytes(frame), KEY)

    def test_authenticated_garbage_body_is_a_codec_error(self) -> None:
        # A frame can be *authentic* yet undecodable (a buggy peer): encode
        # raw bytes with a valid tag, then watch the codec layer refuse it.
        for body in (
            b"\xff not json at all",
            b'{"no": "envelope"}',
            b'{"t": null, "p": 1}',  # non-numeric sent_at must not leak TypeError
            b'{"t": "x", "p": 1}',
            b'{"t": true, "p": 1}',
            b'{"t": 0.0, "p": {"__": "tup", "v": 5}}',  # malformed payload tag
        ):
            with pytest.raises(FrameCodecError):
                decode_frame(_authentic_frame(body), KEY)


def _authentic_frame(body: bytes) -> bytes:
    """A frame with a *valid* tag over an arbitrary body (a buggy peer)."""
    import hashlib
    import hmac
    import struct

    header = struct.pack(">2s c I I", b"SB", b"J", 1, len(body))
    tag = hmac.new(KEY, header + body, hashlib.sha256).digest()[:16]
    return header + body + tag
