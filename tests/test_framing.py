"""Byte-level hardening tests for the shared wire framing.

Both non-sim transports (:class:`~repro.runtime.aio.AsyncioTransport` and
:class:`~repro.runtime.socket_host.SocketTransport`) move every message
through :mod:`repro.runtime.framing`, so this file is the single place the
wire format is pinned down: payload round-trips for the whole protocol
vocabulary across both codecs, the zero-alloc :class:`FrameEncoder` fast
path, BATCH-frame coalescing (pack/split round-trips, every-prefix
truncation, overflow refusal, atomic rejection), and refusal -- with the
right exception -- of truncated, oversized, tampered, forged-sender and
garbage frames.

The msgpack codec is exercised unconditionally: the vendored
:mod:`repro.runtime.mpack` subset backs it when the C extension is absent,
and the cross-implementation tests (skipped without the wheel) pin the two
implementations to interoperable bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.messages import (
    ALL_MESSAGE_TYPES,
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
)
from repro.core.params import BOTTOM
from repro.runtime import framing, mpack
from repro.runtime.framing import (
    Frame,
    FrameAuthError,
    FrameBatcher,
    FrameCodecError,
    FrameEncoder,
    FrameError,
    HEADER_BYTES,
    MAX_BODY_BYTES,
    MIN_FRAME_BYTES,
    OversizedFrameError,
    PREFERRED_CODEC,
    TruncatedFrameError,
    decode_frame,
    decode_frames,
    derive_key,
    encode_batch_frame,
    encode_frame,
)

KEY = derive_key("test")
OTHER_KEY = derive_key("not-the-test-key")
CODECS = ("json", "msgpack")

ROUND_TRIP_PAYLOADS = [
    "a plain string value",
    0,
    -17,
    3.25,
    True,
    None,
    ("a", 1, ("nested", 2)),
    ["list", "of", ("mixed", 3)],
    {"str": "keys", "nested": {"ok": True}},
    BOTTOM,
    InitiatorMsg(general=0, value="v"),
    SupportMsg(general=1, value="w"),
    ApproveMsg(general=2, value=("tuple", "valued")),
    ReadyMsg(general=0, value=BOTTOM),
    MBInitMsg(general=0, origin=3, value="A", k=1),
    MBEchoMsg(general=0, origin=3, value="A", k=2),
    MBInitPrimeMsg(general=1, origin=0, value="B", k=1),
    MBEchoPrimeMsg(general=1, origin=2, value="B", k=3),
]


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("payload", ROUND_TRIP_PAYLOADS, ids=repr)
    def test_payload_survives(self, codec, payload) -> None:
        frame = encode_frame(7, payload, KEY, sent_at=1.5, codec=codec)
        decoded = decode_frame(frame, KEY)
        assert decoded == Frame(sender=7, payload=payload, sent_at=1.5)

    def test_bottom_round_trips_to_the_singleton(self) -> None:
        decoded = decode_frame(encode_frame(0, BOTTOM, KEY), KEY)
        assert decoded.payload is BOTTOM

    @pytest.mark.parametrize("codec", CODECS)
    def test_message_dataclasses_reconstruct_their_types(self, codec) -> None:
        for cls in ALL_MESSAGE_TYPES:
            original = (
                cls(general=0, value="v")
                if cls in (InitiatorMsg, SupportMsg, ApproveMsg, ReadyMsg)
                else cls(general=0, origin=1, value="v", k=2)
            )
            frame = encode_frame(1, original, KEY, codec=codec)
            decoded = decode_frame(frame, KEY).payload
            assert type(decoded) is cls
            assert decoded == original

    @pytest.mark.parametrize("codec", CODECS)
    def test_unencodable_payload_refused_at_encode(self, codec) -> None:
        with pytest.raises(FrameCodecError):
            encode_frame(0, object(), KEY, codec=codec)
        with pytest.raises(FrameCodecError):
            encode_frame(0, {1: "non-string key"}, KEY, codec=codec)

    def test_msgpack_codec_always_available(self) -> None:
        # The vendored subset backs the b"M" codec when the wheel is absent;
        # "msgpack not installed" is no longer a reachable refusal.
        msg = MBInitMsg(general=0, origin=3, value="A", k=1)
        frame = encode_frame(3, msg, KEY, sent_at=2.0, codec="msgpack")
        assert decode_frame(frame, KEY) == Frame(3, msg, 2.0)

    def test_msgpack_decode_without_c_extension(self, monkeypatch) -> None:
        # Force the pure-Python decode branch even when the wheel is
        # installed, so both decode implementations run in every CI leg.
        frame = encode_frame(5, ROUND_TRIP_PAYLOADS[-1], KEY, codec="msgpack")
        monkeypatch.setattr(framing, "HAVE_MSGPACK", False)
        assert decode_frame(frame, KEY).payload == ROUND_TRIP_PAYLOADS[-1]

    @pytest.mark.skipif(not framing.HAVE_MSGPACK, reason="msgpack not installed")
    def test_vendored_mpack_interops_with_c_msgpack(self) -> None:
        import msgpack

        for payload in ROUND_TRIP_PAYLOADS:
            tree = framing._to_wire(payload)
            assert msgpack.unpackb(mpack.packb(tree), raw=False) == tree
            assert mpack.unpackb(msgpack.packb(tree, use_bin_type=True)) == tree

    def test_unknown_codec_name_refused(self) -> None:
        with pytest.raises(FrameCodecError):
            encode_frame(0, "x", KEY, codec="pickle")

    def test_preferred_codec_is_msgpack(self) -> None:
        assert PREFERRED_CODEC == "msgpack"
        assert FrameEncoder(KEY).codec == "msgpack"


class TestFrameEncoder:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("payload", ROUND_TRIP_PAYLOADS, ids=repr)
    def test_fast_path_matches_reference(self, codec, payload) -> None:
        encoder = FrameEncoder(KEY, codec)
        frame = bytes(encoder.encode(7, payload, sent_at=1.5))
        assert decode_frame(frame, KEY) == Frame(7, payload, 1.5)

    def test_buffer_is_reused_across_encodes(self) -> None:
        # The zero-alloc contract: the encoder hands back the *same*
        # bytearray each call, so callers must consume before re-encoding.
        encoder = FrameEncoder(KEY)
        first = encoder.encode(1, "a")
        copy = bytes(first)
        second = encoder.encode(1, "b")
        assert second is first  # same underlying buffer object
        assert bytes(first) != copy  # and its contents moved on

    def test_body_then_frame_equals_direct_encode(self) -> None:
        for codec in CODECS:
            encoder = FrameEncoder(KEY, codec)
            body = encoder.encode_body("hello", 2.0)
            framed = bytes(encoder.frame(4, body))
            direct = bytes(encoder.encode(4, "hello", 2.0))
            assert framed == direct

    def test_skeleton_pack_matches_tree_pack(self) -> None:
        # The per-class skeleton fast path must emit byte-identical msgpack
        # to packing the tagged tree -- same wire, just without the tree.
        for payload in ROUND_TRIP_PAYLOADS:
            direct = bytearray()
            framing._pack_payload_into(direct, payload)
            assert bytes(direct) == mpack.packb(framing._to_wire(payload))

    @pytest.mark.parametrize("codec", CODECS)
    def test_oversized_body_refused(self, codec) -> None:
        encoder = FrameEncoder(KEY, codec)
        with pytest.raises(OversizedFrameError):
            encoder.encode(0, "x" * (MAX_BODY_BYTES + 1))
        with pytest.raises(OversizedFrameError):
            encoder.encode_body("x" * (MAX_BODY_BYTES + 1))

    def test_int64_overflow_is_a_codec_error_on_msgpack(self) -> None:
        encoder = FrameEncoder(KEY, "msgpack")
        with pytest.raises(FrameCodecError):
            encoder.encode(0, 2 ** 70)


class TestBatchFrames:
    @pytest.mark.parametrize("codec", CODECS)
    def test_pack_split_round_trip(self, codec) -> None:
        batch = encode_batch_frame(9, ROUND_TRIP_PAYLOADS, KEY, sent_at=0.5,
                                   codec=codec)
        frames = decode_frames(batch, KEY)
        assert [f.payload for f in frames] == ROUND_TRIP_PAYLOADS
        assert all(f.sender == 9 and f.sent_at == 0.5 for f in frames)

    def test_single_frame_decodes_as_one_element_tuple(self) -> None:
        frame = encode_frame(3, "solo", KEY)
        assert decode_frames(frame, KEY) == (Frame(3, "solo", 0.0),)

    def test_property_random_corpora_round_trip(self) -> None:
        # Property test: random mixes of the protocol vocabulary, random
        # batch sizes, both codecs -- every batch splits back to its inputs.
        rng = random.Random(0xB47C)
        for trial in range(25):
            codec = CODECS[trial % 2]
            size = rng.randint(1, 40)
            payloads = [
                rng.choice(ROUND_TRIP_PAYLOADS) for _ in range(size)
            ]
            batch = encode_batch_frame(trial, payloads, KEY, codec=codec)
            frames = decode_frames(batch, KEY)
            assert [f.payload for f in frames] == payloads
            assert all(f.sender == trial for f in frames)

    @pytest.mark.parametrize("codec", CODECS)
    def test_every_prefix_of_a_batch_is_refused(self, codec) -> None:
        batch = encode_batch_frame(
            2, ROUND_TRIP_PAYLOADS[:5], KEY, codec=codec
        )
        for cut in range(len(batch)):
            with pytest.raises(FrameError):
                decode_frames(batch[:cut], KEY)

    def test_overflowing_batch_refused_at_encode(self) -> None:
        # Three 8 KB bodies exceed the 16 KB datagram budget; the encoder
        # must refuse rather than emit a fragmenting datagram.
        big = "x" * 8000
        with pytest.raises(OversizedFrameError):
            encode_batch_frame(0, [big, big, big], KEY)

    def test_empty_batch_refused_at_encode(self) -> None:
        with pytest.raises(FrameCodecError):
            encode_batch_frame(0, [], KEY)

    def test_batch_refused_by_single_frame_decode(self) -> None:
        batch = encode_batch_frame(1, ["a", "b"], KEY)
        with pytest.raises(FrameCodecError):
            decode_frame(batch, KEY)

    def test_tampered_batch_is_refused(self) -> None:
        batch = bytearray(encode_batch_frame(1, ["a", "b"], KEY))
        batch[HEADER_BYTES + 3] ^= 0xFF
        with pytest.raises(FrameAuthError):
            decode_frames(bytes(batch), KEY)

    def test_forged_sender_on_batch_is_refused(self) -> None:
        batch = bytearray(encode_batch_frame(1, ["a", "b"], KEY))
        batch[3:7] = (2).to_bytes(4, "big")
        with pytest.raises(FrameAuthError):
            decode_frames(bytes(batch), KEY)

    def test_malformed_interior_rejects_the_whole_batch(self) -> None:
        # An authentic batch whose *interior* is garbage (a buggy peer)
        # must reject atomically -- no prefix of its messages delivered.
        encoder = FrameEncoder(KEY, "msgpack")
        good = encoder.encode_body("fine")
        interior = (
            len(good).to_bytes(2, "big") + good
            + (5).to_bytes(2, "big") + b"\xc1garb"  # 0xc1 is never valid
        )
        frame = _authentic_frame(interior, codec_byte=b"m")
        with pytest.raises(FrameCodecError):
            decode_frames(frame, KEY)

    def test_entry_overrunning_body_is_refused(self) -> None:
        encoder = FrameEncoder(KEY, "msgpack")
        good = encoder.encode_body("fine")
        interior = (len(good) + 9).to_bytes(2, "big") + good  # lies long
        with pytest.raises(FrameCodecError):
            decode_frames(_authentic_frame(interior, codec_byte=b"m"), KEY)

    def test_empty_batch_body_is_refused(self) -> None:
        with pytest.raises(FrameCodecError):
            decode_frames(_authentic_frame(b"", codec_byte=b"m"), KEY)


class TestFrameBatcher:
    def _make(self, budget=MAX_BODY_BYTES):
        sent: list[tuple[int, bytes, int]] = []
        encoder = FrameEncoder(KEY, "msgpack")
        batcher = FrameBatcher(
            encoder, lambda r, buf, n: sent.append((r, bytes(buf), n)),
            budget=budget,
        )
        return encoder, batcher, sent

    def test_flush_coalesces_per_receiver_in_fifo_order(self) -> None:
        encoder, batcher, sent = self._make()
        for i in range(6):
            batcher.add(2, 0, encoder.encode_body(i))
        batcher.add(3, 0, encoder.encode_body("solo"))
        assert batcher.pending
        batcher.flush()
        assert not batcher.pending
        assert len(sent) == 2
        receiver, frame, count = sent[0]
        assert (receiver, count) == (2, 6)
        assert [f.payload for f in decode_frames(frame, KEY)] == list(range(6))
        receiver, frame, count = sent[1]
        assert (receiver, count) == (3, 1)
        # A run of one goes out as a plain frame, not a 1-element batch.
        assert decode_frame(frame, KEY).payload == "solo"

    def test_budget_overflow_flushes_early_and_keeps_order(self) -> None:
        encoder, batcher, sent = self._make()
        bodies = [encoder.encode_body("y" * 6000) for _ in range(4)]
        for body in bodies:
            batcher.add(5, 1, body)
        batcher.flush()
        assert len(sent) >= 2  # the 24 KB run cannot fit one datagram
        replayed = [
            f.payload for (_, frame, _) in sent for f in decode_frames(frame, KEY)
        ]
        assert replayed == ["y" * 6000] * 4
        for _, frame, _ in sent:
            assert len(frame) <= HEADER_BYTES + MAX_BODY_BYTES + framing.TAG_BYTES

    def test_distinct_senders_never_share_a_datagram(self) -> None:
        encoder, batcher, sent = self._make()
        batcher.add(2, 0, encoder.encode_body("from-zero"))
        batcher.add(2, 1, encoder.encode_body("from-one"))
        batcher.flush()
        assert len(sent) == 2
        senders = {decode_frames(frame, KEY)[0].sender for (_, frame, _) in sent}
        assert senders == {0, 1}

    def test_clear_drops_pending(self) -> None:
        encoder, batcher, sent = self._make()
        batcher.add(2, 0, encoder.encode_body("x"))
        batcher.clear()
        batcher.flush()
        assert not sent


class TestTruncated:
    def test_every_strict_prefix_is_refused(self) -> None:
        frame = encode_frame(2, SupportMsg(general=0, value="v"), KEY)
        for cut in range(len(frame)):
            with pytest.raises(FrameError):
                decode_frame(frame[:cut], KEY)

    def test_below_structural_minimum_is_truncated(self) -> None:
        for cut in range(MIN_FRAME_BYTES):
            with pytest.raises(TruncatedFrameError):
                decode_frame(b"\x00" * cut, KEY)

    def test_body_shorter_than_declared_is_truncated(self) -> None:
        frame = encode_frame(2, "payload", KEY)
        with pytest.raises(TruncatedFrameError):
            decode_frame(frame[:-1], KEY)

    def test_trailing_garbage_is_refused(self) -> None:
        frame = encode_frame(2, "payload", KEY)
        with pytest.raises(FrameCodecError):
            decode_frame(frame + b"\x00", KEY)


class TestOversized:
    def test_encode_refuses_oversized_body(self) -> None:
        with pytest.raises(OversizedFrameError):
            encode_frame(0, "x" * (MAX_BODY_BYTES + 1), KEY)

    def test_decode_refuses_oversized_declared_length(self) -> None:
        # Forge a header declaring a body beyond the cap; the decoder must
        # refuse on the declared length alone, before trusting any byte.
        frame = bytearray(encode_frame(0, "x", KEY))
        huge = (MAX_BODY_BYTES + 1).to_bytes(4, "big")
        frame[HEADER_BYTES - 4 : HEADER_BYTES] = huge
        with pytest.raises(OversizedFrameError):
            decode_frame(bytes(frame) + b"\x00" * 64, KEY)

    def test_max_size_body_round_trips(self) -> None:
        # JSON quotes add 2 bytes; stay just under the cap.
        payload = "x" * (MAX_BODY_BYTES - 40)
        assert decode_frame(encode_frame(0, payload, KEY), KEY).payload == payload


class TestAuthentication:
    def test_wrong_key_is_refused(self) -> None:
        frame = encode_frame(1, "hello", KEY)
        with pytest.raises(FrameAuthError):
            decode_frame(frame, OTHER_KEY)

    def test_flipped_body_byte_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[HEADER_BYTES] ^= 0xFF
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_flipped_tag_byte_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[-1] ^= 0x01
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_forged_sender_is_refused(self) -> None:
        # The tag covers the header: rewriting the sender id in place breaks
        # authentication -- Definition 2 over a spoofable datagram fabric.
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[3:7] = (2).to_bytes(4, "big")
        with pytest.raises(FrameAuthError):
            decode_frame(bytes(frame), KEY)

    def test_bad_magic_is_refused(self) -> None:
        frame = bytearray(encode_frame(1, "hello", KEY))
        frame[0:2] = b"XX"
        with pytest.raises(FrameCodecError):
            decode_frame(bytes(frame), KEY)

    def test_authenticated_garbage_body_is_a_codec_error(self) -> None:
        # A frame can be *authentic* yet undecodable (a buggy peer): encode
        # raw bytes with a valid tag, then watch the codec layer refuse it.
        for body in (
            b"\xff not json at all",
            b'{"no": "envelope"}',
            b'{"t": null, "p": 1}',  # non-numeric sent_at must not leak TypeError
            b'{"t": "x", "p": 1}',
            b'{"t": true, "p": 1}',
            b'{"t": 0.0, "p": {"__": "tup", "v": 5}}',  # malformed payload tag
        ):
            with pytest.raises(FrameCodecError):
                decode_frame(_authentic_frame(body), KEY)

    def test_unknown_codec_byte_is_refused(self) -> None:
        with pytest.raises(FrameCodecError):
            decode_frame(_authentic_frame(b"{}", codec_byte=b"Z"), KEY)


def _authentic_frame(body: bytes, codec_byte: bytes = b"J") -> bytes:
    """A frame with a *valid* tag over an arbitrary body (a buggy peer)."""
    import hashlib
    import hmac
    import struct

    header = struct.pack(">2s c I I", b"SB", codec_byte, 1, len(body))
    tag = hmac.new(KEY, header + body, hashlib.sha256).digest()[:16]
    return header + body + tag
