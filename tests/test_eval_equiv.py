"""Randomized differential tests: push-based evaluators vs eager references.

The push-based protocol core (:mod:`repro.core.msgd_broadcast` with its
threshold subscriptions and deadline timers, :mod:`repro.core.
initiator_accept` on the log's latest-arrival fast path, and the
:class:`~repro.core.agreement.SdrPrefixCache` behind Block S) must be
*observationally indistinguishable* from the eager pull evaluators kept
verbatim in :mod:`repro.core.eval_ref`.  Both are driven through identical
randomized adversarial schedules -- mixed message arrivals, clock advances,
anchor sets/clears/resets, cleanup pruning, and full transient corruption
with identically-seeded randomness -- and after *every* operation the
observable behaviour must match exactly: broadcast sequences, accept
callbacks, trace-decision sequences, and derived state.

Per the acceptance bar: >= 20 schedules, >= 1000 randomized operations
each, zero divergence.
"""

from __future__ import annotations

import heapq
import itertools
import random

import pytest

from repro.core.agreement import SdrPrefixCache, distinct_chain_exists
from repro.core.eval_ref import (
    ReferenceInitiatorAccept,
    ReferenceMsgdBroadcast,
    eager_fresh_senders,
)
from repro.core.initiator_accept import InitiatorAccept
from repro.core.messages import (
    ApproveMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
)
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import ProtocolParams
from repro.node.msglog import MessageLog
from repro.sim.rand import RandomSource

G = 0
VALUES = ["A", "B"]
MB_SCHEDULES = 12
IA_SCHEDULES = 10
OPS_PER_SCHEDULE = 1200
WATCH_SCHEDULES = 50
WATCH_OPS = 350


class _ManualTimer:
    """Cancelable handle for ScriptHost's heap-based manual timers."""

    __slots__ = ("cancelled", "fired")

    def __init__(self) -> None:
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def alive(self) -> bool:
        return not self.cancelled and not self.fired


class ScriptHost:
    """Deterministic manual-clock host recording every observable."""

    trace_enabled = True

    def __init__(self, params: ProtocolParams, timers: bool = True) -> None:
        self.params = params
        self.node_id = 0
        self._local = 0.0
        self.sent: list[tuple[float, str]] = []
        self.traced: list[tuple[str, str]] = []
        self._timers: list[tuple[float, int, object, _ManualTimer]] = []
        self._seq = itertools.count()
        self._use_timers = timers

    def now(self) -> float:
        return self._local

    local_now = now

    def broadcast(self, payload: object) -> None:
        self.sent.append((self._local, repr(payload)))

    def trace(self, kind: str, **detail: object) -> None:
        self.traced.append((kind, repr(sorted(detail.items()))))

    def schedule_after(self, delay_local: float, action, tag: str = "") -> _ManualTimer:
        handle = _ManualTimer()
        if self._use_timers:
            heapq.heappush(
                self._timers,
                (self._local + delay_local, next(self._seq), action, handle),
            )
        return handle

    def live_timer_count(self) -> int:
        return sum(1 for *_rest, handle in self._timers if handle.alive)

    def advance(self, delta: float) -> None:
        target = self._local + delta
        while self._timers and self._timers[0][0] <= target:
            at, _seq, action, handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            handle.fired = True
            self._local = max(self._local, at)
            action()
        self._local = target


def _mb_pair(params):
    """(push instance, reference instance) with parallel observables."""
    host_a = ScriptHost(params, timers=True)
    host_b = ScriptHost(params, timers=False)  # reference has no timer path
    accepts_a: list[tuple] = []
    accepts_b: list[tuple] = []
    push = MsgdBroadcast(
        host_a,
        G,
        lambda *args: accepts_a.append(args),
        lambda origin: accepts_a.append(("broadcaster", origin)),
    )
    ref = ReferenceMsgdBroadcast(
        host_b,
        G,
        lambda *args: accepts_b.append(args),
        lambda origin: accepts_b.append(("broadcaster", origin)),
    )
    return host_a, host_b, push, ref, accepts_a, accepts_b


def _assert_mb_equal(step, host_a, host_b, push, ref, accepts_a, accepts_b):
    assert host_a.sent == host_b.sent, f"step {step}: sends diverged"
    assert accepts_a == accepts_b, f"step {step}: accepts diverged"
    assert host_a.traced == host_b.traced, f"step {step}: traces diverged"
    assert push.accepted == ref.accepted, f"step {step}: accepted diverged"
    assert push.broadcasters == ref.broadcasters, f"step {step}: broadcasters"
    assert push._sent == ref._sent, f"step {step}: sent-once sets diverged"
    assert push.anchor == ref.anchor, f"step {step}: anchors diverged"


@pytest.mark.parametrize("seed", range(MB_SCHEDULES))
def test_msgd_broadcast_differential(seed: int) -> None:
    """Push evaluator == reference over mixed adversarial mb schedules."""
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=0.0)
    rng = random.Random(seed)
    host_a, host_b, push, ref, acc_a, acc_b = _mb_pair(params)
    classes = [MBInitMsg, MBEchoMsg, MBInitPrimeMsg, MBEchoPrimeMsg]

    for step in range(OPS_PER_SCHEDULE):
        roll = rng.random()
        if roll < 0.60:
            cls = rng.choice(classes)
            origin = rng.randint(0, params.n - 1)
            msg = cls(G, origin, rng.choice(VALUES), rng.randint(1, params.f + 1))
            # Mostly authentic inits; sometimes forged (must be discarded).
            sender = (
                origin
                if cls is MBInitMsg and rng.random() < 0.7
                else rng.randint(0, params.n - 1)
            )
            push.on_message(msg, sender)
            ref.on_message(msg, sender)
        elif roll < 0.72:
            delta = rng.choice([0.0, 0.1, 1.0, 5.0, 20.0])
            host_a.advance(delta)
            host_b.advance(delta)
        elif roll < 0.82:
            anchor = host_a.local_now() - rng.uniform(0.0, 5.0)
            push.set_anchor(anchor)
            ref.set_anchor(anchor)
        elif roll < 0.86:
            push.clear_anchor()
            ref.clear_anchor()
        elif roll < 0.93:
            push.cleanup()
            ref.cleanup()
        elif roll < 0.96:
            # Identically-seeded corruption draws the same garbage twice.
            push.corrupt(RandomSource(seed * 31 + step, "hvc"), VALUES)
            ref.corrupt(RandomSource(seed * 31 + step, "hvc"), VALUES)
        else:
            push.reset()
            ref.reset()
        _assert_mb_equal(step, host_a, host_b, push, ref, acc_a, acc_b)


def _ia_pair(params):
    host_a = ScriptHost(params, timers=True)
    host_b = ScriptHost(params, timers=False)
    accepts_a: list[tuple] = []
    accepts_b: list[tuple] = []
    push = InitiatorAccept(host_a, G, lambda v, t: accepts_a.append((v, t)))
    ref = ReferenceInitiatorAccept(host_b, G, lambda v, t: accepts_b.append((v, t)))
    return host_a, host_b, push, ref, accepts_a, accepts_b


@pytest.mark.parametrize("seed", range(IA_SCHEDULES))
def test_initiator_accept_differential(seed: int) -> None:
    """Fast-path IA == reference over mixed adversarial IA schedules."""
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=0.0)
    rng = random.Random(1000 + seed)
    host_a, host_b, push, ref, acc_a, acc_b = _ia_pair(params)
    classes = [SupportMsg, ApproveMsg, ReadyMsg]

    for step in range(OPS_PER_SCHEDULE):
        roll = rng.random()
        if roll < 0.55:
            cls = rng.choice(classes)
            msg = cls(G, rng.choice(VALUES))
            sender = rng.randint(0, params.n - 1)
            push.on_message(msg, sender)
            ref.on_message(msg, sender)
        elif roll < 0.67:
            delta = rng.choice([0.0, 0.05, 0.5, 2.0, 10.0])
            host_a.advance(delta)
            host_b.advance(delta)
        elif roll < 0.77:
            value = rng.choice(VALUES)
            assert push.invoke(value) == ref.invoke(value), f"step {step}"
        elif roll < 0.83:
            value = rng.choice(VALUES)
            push.evaluate(value)
            ref.evaluate(value)
        elif roll < 0.91:
            push.cleanup()
            ref.cleanup()
        elif roll < 0.95:
            push.corrupt(RandomSource(seed * 17 + step, "iac"), VALUES)
            ref.corrupt(RandomSource(seed * 17 + step, "iac"), VALUES)
        else:
            push.reset()
            ref.reset()
        assert host_a.sent == host_b.sent, f"step {step}: sends diverged"
        assert acc_a == acc_b, f"step {step}: accepts diverged"
        assert host_a.traced == host_b.traced, f"step {step}: traces diverged"
        assert push.line_exec == ref.line_exec, f"step {step}: line_exec"
        assert push.last_g == ref.last_g, f"step {step}: last(G)"


@pytest.mark.parametrize("seed", range(6))
def test_sdr_prefix_cache_differential(seed: int) -> None:
    """Incremental SDR prefix == eager backtracking under grow/shrink."""
    rng = random.Random(seed)
    f = 4
    cache = SdrPrefixCache()
    per_value: dict[str, dict[int, set[int]]] = {v: {} for v in VALUES}

    for _step in range(1500):
        roll = rng.random()
        value = rng.choice(VALUES)
        per_level = per_value[value]
        if roll < 0.70:
            k = rng.randint(1, f + 1)
            origin = rng.randint(1, 9)
            origins = per_level.setdefault(k, set())
            if origin not in origins:
                origins.add(origin)
                cache.grew(value)
        elif roll < 0.85:
            # Shrink: decay/corruption analogue; must invalidate.
            if per_level:
                k = rng.choice(list(per_level))
                if per_level[k] and rng.random() < 0.8:
                    per_level[k].discard(next(iter(per_level[k])))
                if not per_level[k]:
                    del per_level[k]
            cache.invalidate()
        else:
            per_value[value] = {}
            per_level = per_value[value]
            cache.invalidate()

        prefix = cache.prefix(value, per_value[value], f)
        for r in range(1, f + 1):
            assert (prefix >= r) == distinct_chain_exists(per_value[value], r), (
                f"value {value}, r {r}: prefix {prefix} vs eager"
            )


WATCH_KEYS = [
    ("mb_echo", G, "A", 1),
    ("mb_echo", G, "B", 1),
    ("support", G, "A"),
    ("ready", 1, "B"),
]


@pytest.mark.parametrize("seed", range(WATCH_SCHEDULES))
def test_watch_vs_eager_oracle_differential(seed: int) -> None:
    """``MessageLog.watch`` == the eager rescan oracle, op for op.

    Drives the subscription counters through long interleavings of in-order
    arrivals, arbitrarily-stamped corruption (past *and* future stamps),
    age/future prunes, resets (clears, key removals, predicate removals)
    and watch churn (spawn/cancel mid-schedule), checking ``count``/``has``
    against :func:`repro.core.eval_ref.eager_fresh_senders` after every
    single operation.  Nothing here knows how the watch is implemented --
    staleness, maturation heaps and rebuilds must all be invisible.
    """
    rng = random.Random(5000 + seed)
    log = MessageLog()
    now = 0.0
    fired: list[tuple] = []
    watches: list[tuple[object, float, object]] = []

    def on_event(watch) -> None:
        # A firing is only legal at a threshold crossing or a sentinel
        # maturation, and never for a cancelled watch (the dispatch
        # conditions the push evaluators lean on).
        assert not watch.cancelled, "event fired for a cancelled watch"
        count = len(watch._matured)
        assert count in watch.thresholds or (
            watch.sentinel is not None and watch.sentinel in watch._matured
        ), f"event fired at count {count} with no threshold/sentinel cause"
        fired.append((watch.key, watch.start, count))

    def spawn_watch() -> None:
        key = rng.choice(WATCH_KEYS)
        start = max(0.0, now - rng.uniform(0.0, 6.0))
        thresholds = rng.sample(range(1, 8), k=rng.randint(0, 2))
        sentinel = rng.randint(0, 9) if rng.random() < 0.5 else None
        watch = log.watch(
            key,
            start,
            thresholds=thresholds,
            sentinel=sentinel,
            on_event=on_event,
        )
        watches.append((key, start, watch))

    for _ in range(3):
        spawn_watch()

    for step in range(WATCH_OPS):
        roll = rng.random()
        if roll < 0.45:
            now += rng.choice([0.0, 0.0, 0.05, 0.4, 1.5])
            log.add(rng.choice(WATCH_KEYS), rng.randint(0, 9), now)
        elif roll < 0.60:
            # Transient corruption: stamps say nothing about the clock.
            log.corrupt_insert(
                rng.choice(WATCH_KEYS),
                rng.randint(0, 9),
                max(0.0, now + rng.uniform(-4.0, 6.0)),
            )
        elif roll < 0.70:
            if rng.random() < 0.5:
                log.prune_older_than(now - rng.uniform(0.0, 3.0))
            else:
                log.prune_future(now)
        elif roll < 0.78:
            flavor = rng.random()
            if flavor < 0.4:
                log.clear()
            elif flavor < 0.8:
                log.remove_keys([rng.choice(WATCH_KEYS)])
            else:
                doomed = rng.choice(WATCH_KEYS)
                log.remove_matching(lambda key: key == doomed)
        elif roll < 0.86:
            spawn_watch()
        elif roll < 0.92 and watches:
            index = rng.randrange(len(watches))
            watches[index][2].cancel()
            del watches[index]
        else:
            now += rng.uniform(0.0, 2.0)

        for key, start, watch in watches:
            expected = eager_fresh_senders(log, key, start, now)
            assert watch.count(now) == len(expected), (
                f"seed {seed} step {step}: count diverged for {key} @ {start}"
            )
            for sender in (0, 3, 7):
                assert watch.has(sender, now) == (sender in expected), (
                    f"seed {seed} step {step}: has({sender}) diverged"
                )

    for _key, _start, watch in watches:
        watch.cancel()
    assert not log._watches, "cancel must fully drain the registry"


def test_schedule_volume_meets_acceptance_bar() -> None:
    """>= 20 schedules x >= 1000 operations (the documented gate),
    plus >= 50 watch-fuzz schedules (this PR's differential bar)."""
    assert MB_SCHEDULES + IA_SCHEDULES >= 20
    assert OPS_PER_SCHEDULE >= 1000
    assert WATCH_SCHEDULES >= 50
