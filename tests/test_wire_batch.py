"""Wire-path plumbing beneath the framing layer.

The framing tests pin the *format*; this file pins the machinery the lean
wire path rides on: the vendored msgpack subset (:mod:`repro.runtime.mpack`)
at its encoding edges, the batched UDP syscalls
(:mod:`repro.runtime.udp_batch`) against a real loopback socket pair, the
kill-switch degradation story, the transports' datagram accounting under
coalescing, and the opt-in uvloop hook.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.runtime import mpack, udp_batch
from repro.runtime.framing import FrameEncoder, decode_frames, derive_key

KEY = derive_key("wire-batch")


# ---------------------------------------------------------------------------
# Vendored msgpack subset: edge-exact encodings and refusals
# ---------------------------------------------------------------------------
class TestMpack:
    @pytest.mark.parametrize(
        "value",
        [
            0, 1, 127, 128, 255, 256, 65535, 65536,
            -1, -32, -33, -128, -129, -32768, -32769,
            2 ** 31 - 1, 2 ** 31, 2 ** 32 - 1, 2 ** 32,
            2 ** 63 - 1, 2 ** 64 - 1, -(2 ** 63),
            0.0, -2.5, 1e300, float("inf"),
            "", "x" * 31, "x" * 32, "x" * 255, "x" * 256, "é漢",
            None, True, False,
            [], [1, [2, [3]]], list(range(20)),
            {}, {"k": "v"}, {"a": {"b": {"c": None}}},
            b"", b"\x00\xff" * 300,
        ],
        ids=repr,
    )
    def test_scalar_and_container_round_trip(self, value) -> None:
        assert mpack.unpackb(mpack.packb(value)) == value

    def test_format_boundaries(self) -> None:
        # The subset must pick the canonical (smallest) format at each
        # boundary -- that is what makes it byte-compatible with the wheel.
        assert mpack.packb(127) == b"\x7f"          # positive fixint edge
        assert mpack.packb(128) == b"\xcc\x80"      # -> uint8
        assert mpack.packb(-32) == b"\xe0"          # negative fixint edge
        assert mpack.packb(-33) == b"\xd0\xdf"      # -> int8
        assert mpack.packb("x" * 31)[0] == 0xBF     # fixstr edge
        assert mpack.packb("x" * 32)[0] == 0xD9     # -> str8
        assert mpack.packb([None] * 15)[0] == 0x9F  # fixarray edge
        assert mpack.packb([None] * 16)[:3] == b"\xdc\x00\x10"  # -> array16
        assert mpack.packb({}) == b"\x80"           # fixmap

    def test_int_beyond_64_bits_refused(self) -> None:
        for value in (2 ** 64, -(2 ** 63) - 1, 2 ** 100):
            with pytest.raises(mpack.MpackError):
                mpack.packb(value)

    def test_non_string_map_keys_refused(self) -> None:
        with pytest.raises(mpack.MpackError):
            mpack.packb({1: "x"})

    def test_unsupported_type_refused(self) -> None:
        with pytest.raises(mpack.MpackError):
            mpack.packb(object())

    def test_truncated_input_refused(self) -> None:
        blob = mpack.packb({"k": [1, "two", 3.0]})
        for cut in range(len(blob)):
            with pytest.raises(mpack.MpackError):
                mpack.unpackb(blob[:cut])

    def test_trailing_bytes_refused(self) -> None:
        with pytest.raises(mpack.MpackError):
            mpack.unpackb(mpack.packb(1) + b"\x00")

    def test_reserved_tag_refused(self) -> None:
        with pytest.raises(mpack.MpackError):
            mpack.unpackb(b"\xc1")  # 0xc1 is never used by msgpack


# ---------------------------------------------------------------------------
# sendmmsg/recvmmsg against a real loopback socket pair
# ---------------------------------------------------------------------------
def _socket_pair():
    rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    rx.bind(("127.0.0.1", 0))
    rx.setblocking(False)
    tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    tx.bind(("127.0.0.1", 0))
    return tx, rx, rx.getsockname()


@pytest.mark.skipif(not udp_batch.HAVE_MMSG, reason="sendmmsg/recvmmsg unavailable")
class TestMmsg:
    def test_send_many_recv_round_trip(self) -> None:
        tx, rx, addr = _socket_pair()
        try:
            payloads = [b"datagram-%d" % i for i in range(10)]
            sent = udp_batch.send_many(tx, [(p, addr) for p in payloads])
            assert sent == len(payloads)
            receiver = udp_batch.MmsgReceiver(max_batch=16)
            got: list[bytes] = []
            for _ in range(100):
                views = receiver.recv(rx)
                if not views:
                    if len(got) == len(payloads):
                        break
                    continue
                got.extend(bytes(v) for v in views)
            assert sorted(got) == sorted(payloads)
        finally:
            tx.close()
            rx.close()

    def test_send_many_empty_is_a_noop(self) -> None:
        tx, rx, _ = _socket_pair()
        try:
            assert udp_batch.send_many(tx, []) == 0
        finally:
            tx.close()
            rx.close()

    def test_recv_on_drained_socket_returns_empty(self) -> None:
        tx, rx, _ = _socket_pair()
        try:
            assert udp_batch.MmsgReceiver(max_batch=4).recv(rx) == []
        finally:
            tx.close()
            rx.close()

    def test_views_are_reused_across_recv_calls(self) -> None:
        # The zero-alloc contract: views point into preallocated buffers,
        # valid until the next recv.  Consumers must copy to retain.
        tx, rx, addr = _socket_pair()
        try:
            receiver = udp_batch.MmsgReceiver(max_batch=4)
            tx.sendto(b"first", addr)
            views = _drain_one(receiver, rx)
            stale = views[0]  # NOT copied
            tx.sendto(b"worse", addr)
            _drain_one(receiver, rx)
            assert bytes(stale) == b"worse", "buffers must be reused"
        finally:
            tx.close()
            rx.close()

    def test_kill_switch_is_permanent_and_loud(self, monkeypatch) -> None:
        assert udp_batch.available()
        udp_batch.disable()
        try:
            assert not udp_batch.available()
            assert udp_batch.HAVE_MMSG  # probe result is untouched
        finally:
            monkeypatch.setattr(udp_batch, "_disabled", False)
        assert udp_batch.available()


def _drain_one(receiver, rx):
    for _ in range(100):
        views = receiver.recv(rx)
        if views:
            return views
    raise AssertionError("datagram never arrived on loopback")


# ---------------------------------------------------------------------------
# Transport integration: coalescing shrinks the datagram count
# ---------------------------------------------------------------------------
class TestTransportCoalescing:
    def test_asyncio_burst_coalesces_into_fewer_datagrams(self) -> None:
        from repro.net.delivery import FixedDelay
        from repro.runtime.aio import AsyncioTransport
        from repro.sim.rand import RandomSource

        async def scenario():
            transport = AsyncioTransport(
                time_scale=0.001, policy=FixedDelay(0.25),
                rand=RandomSource(7, "net"),
            )
            inbox: list = []
            transport.register(0, lambda e: None)
            transport.register(1, inbox.append)
            for i in range(10):
                transport.send(0, 1, f"m{i}")
            await asyncio.sleep(0.05)
            return transport.datagrams_sent, [e.payload for e in inbox]

        datagrams, payloads = asyncio.run(scenario())
        assert payloads == [f"m{i}" for i in range(10)]
        assert datagrams < 10, "a same-tick burst must coalesce"

    def test_uncoalesced_transport_sends_one_datagram_each(self) -> None:
        from repro.net.delivery import FixedDelay
        from repro.runtime.aio import AsyncioTransport
        from repro.sim.rand import RandomSource

        async def scenario():
            transport = AsyncioTransport(
                time_scale=0.001, policy=FixedDelay(0.25),
                rand=RandomSource(7, "net"), coalesce=False,
            )
            inbox: list = []
            transport.register(0, lambda e: None)
            transport.register(1, inbox.append)
            for i in range(10):
                transport.send(0, 1, f"m{i}")
            await asyncio.sleep(0.05)
            return transport.datagrams_sent, [e.payload for e in inbox]

        datagrams, payloads = asyncio.run(scenario())
        assert payloads == [f"m{i}" for i in range(10)]
        assert datagrams == 10

    def test_socket_burst_coalesces_on_the_wire(self) -> None:
        # Count *actual UDP datagrams* with a passive observer socket: ten
        # same-tick sends to one receiver must arrive in fewer datagrams.
        import time as _time

        from repro.net.delivery import FixedDelay
        from repro.runtime.socket_host import SocketTransport
        from repro.sim.rand import RandomSource

        async def scenario():
            observer = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            observer.bind(("127.0.0.1", 0))
            observer.setblocking(False)
            directory: dict[int, tuple[str, int]] = {1: observer.getsockname()}
            transport = SocketTransport(
                0, auth_key=KEY, time_scale=0.001, epoch_wall=_time.time(),
                directory=directory, policy=FixedDelay(0.25),
                rand=RandomSource(7, "net"),
            )
            try:
                for i in range(10):
                    transport.send(0, 1, f"m{i}")
                await asyncio.sleep(0.05)
                datagrams, messages = 0, []
                while True:
                    try:
                        data, _ = observer.recvfrom(65536)
                    except BlockingIOError:
                        break
                    datagrams += 1
                    messages.extend(
                        f.payload for f in decode_frames(data, KEY)
                    )
                return datagrams, messages
            finally:
                transport.close()
                observer.close()

        datagrams, messages = asyncio.run(scenario())
        assert messages == [f"m{i}" for i in range(10)]
        assert datagrams < 10, "the burst must coalesce into BATCH datagrams"


# ---------------------------------------------------------------------------
# uvloop hook: graceful when missing, loud when demanded
# ---------------------------------------------------------------------------
class TestUvloopHook:
    def test_missing_uvloop_is_graceful_by_default(self) -> None:
        from repro.runtime.aio import install_uvloop

        try:
            import uvloop  # noqa: F401
        except ImportError:
            assert install_uvloop() is False
            with pytest.raises(RuntimeError, match="uvloop"):
                install_uvloop(strict=True)
        else:  # pragma: no cover - exercised only where uvloop is installed
            assert install_uvloop() is True
            asyncio.set_event_loop_policy(None)
