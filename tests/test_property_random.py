"""Randomized end-to-end property tests: the theorems over sampled runs.

Hypothesis drives seeds, topology sizes, delay regimes and adversary
choices; the paper's properties are asserted on every sampled execution.
These are the closest thing to the proofs' "for all executions" quantifier
the simulation can offer.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    SelectiveGeneralStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import UniformDelay

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestValidityUniverse:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.sampled_from([4, 5, 6, 7, 8, 10]),
        delay_frac=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(**COMMON)
    def test_correct_general_always_wins(self, seed, n, delay_frac):
        params = ProtocolParams(n=n, f=max_faults(n), delta=1.0, rho=1e-4)
        policy = UniformDelay(0.02, max(0.05, delay_frac * params.delta))
        cluster = Cluster(ScenarioConfig(params=params, seed=seed, policy=policy))
        t0 = cluster.sim.now
        assert cluster.propose(general=0, value="v")
        cluster.run_for(params.delta_agr + 10 * params.d)
        properties.validity(cluster, 0, "v").expect()
        properties.timeliness_validity(cluster, 0, t0).expect()
        properties.check_all_stable(cluster, 0)
        for report in properties.check_all_stable(cluster, 0):
            report.expect()


class TestAgreementUniverse:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        attack=st.sampled_from(["equivocate", "stagger", "selective"]),
        spread_d=st.floats(min_value=0.0, max_value=30.0),
        helper=st.sampled_from(["none", "mirror", "twofaced"]),
    )
    @settings(**COMMON)
    def test_byzantine_general_never_splits(self, seed, attack, spread_d, helper):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        if attack == "equivocate":
            general = EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5))
        elif attack == "stagger":
            general = StaggeredGeneralStrategy("S", spread_local=spread_d * params.d)
        else:
            general = SelectiveGeneralStrategy("X", (1, 2, 3, 4))
        byzantine: dict = {0: general}
        if helper == "mirror":
            byzantine[6] = MirrorParticipantStrategy()
        elif helper == "twofaced":
            byzantine[6] = TwoFacedParticipantStrategy((1, 2, 3))
        cluster = Cluster(
            ScenarioConfig(params=params, seed=seed, byzantine=byzantine)
        )
        cluster.run_for(3 * params.delta_agr)
        properties.agreement(cluster, 0).expect()
        properties.separation(cluster, 0).expect()
        properties.ia_relay(cluster, 0).expect()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crashes=st.integers(min_value=0, max_value=2),
    )
    @settings(**COMMON)
    def test_crash_faults_never_block(self, seed, crashes):
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        byzantine = {6 - i: CrashStrategy() for i in range(crashes)}
        cluster = Cluster(
            ScenarioConfig(params=params, seed=seed, byzantine=byzantine)
        )
        assert cluster.propose(general=0, value="v")
        cluster.run_for(params.delta_agr + 10 * params.d)
        properties.validity(cluster, 0, "v").expect()


class TestStabilizationUniverse:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_always_recovers_from_havoc(self, seed):
        from repro.faults.transient import TransientFaultInjector

        params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
        cluster = Cluster(ScenarioConfig(params=params, seed=seed))
        injector = TransientFaultInjector(
            params,
            cluster.rng.split("inj"),
            value_pool=["A", "B", "C"],
            generals=[0, 1],
        )
        cluster.run_for(3 * params.d)
        injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages=250)
        cluster.run_for(params.delta_stb)
        since = cluster.sim.now
        assert cluster.propose(general=0, value="recovered")
        cluster.run_for(params.delta_agr + 10 * params.d)
        properties.validity(cluster, 0, "recovered", since_real=since).expect()
