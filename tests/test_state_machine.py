"""Tests for the replicated-state-machine extension."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.extensions.state_machine import Replica, ReplicatedStateMachine
from repro.faults.byzantine import CrashStrategy, MirrorParticipantStrategy
from repro.harness.scenario import Cluster, ScenarioConfig


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


class TestReplication:
    def test_batch_applies_in_order_everywhere(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=1))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        commands = [f"cmd{i}" for i in range(6)]
        indexes = rsm.submit_batch(commands)
        assert indexes == list(range(6))
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        logs = rsm.logs()
        assert all(log == commands for log in logs.values())
        assert rsm.logs_consistent()

    def test_with_crashed_and_byzantine_replicas(self, params7):
        cluster = Cluster(
            ScenarioConfig(
                params=params7,
                seed=2,
                byzantine={5: CrashStrategy(), 6: MirrorParticipantStrategy()},
            )
        )
        rsm = ReplicatedStateMachine(cluster, primary=0)
        commands = ["a", "b", "c", "d"]
        rsm.submit_batch(commands)
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert all(log == commands for log in rsm.logs().values())

    def test_out_of_order_decisions_buffered(self, params7):
        """A replica built after submission still applies in index order."""
        cluster = Cluster(ScenarioConfig(params=params7, seed=3))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        applied_order: list[int] = []
        victim = rsm.replicas[3]
        victim.on_apply = lambda index, _value: applied_order.append(index)
        rsm.submit_batch(["x", "y", "z"])
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert applied_order == [0, 1, 2]
        assert victim.gap is None

    def test_gap_reported_while_waiting(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=4))
        node = cluster.protocol_node(1)
        replica = Replica(node, primary=0)
        # Hand-feed a decision for index 2 only.
        from repro.core.agreement import Decision

        replica._on_decision(
            Decision(
                node=1,
                general=(0, 2),
                value="late",
                tau_g_local=0.0,
                tau_g_real=0.0,
                returned_local=1.0,
                returned_real=1.0,
            )
        )
        assert replica.log == []
        assert replica.gap == 0

    def test_duplicate_decisions_ignored(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=5))
        replica = Replica(cluster.protocol_node(1), primary=0)
        from repro.core.agreement import Decision

        dec = Decision(
            node=1,
            general=(0, 0),
            value="once",
            tau_g_local=0.0,
            tau_g_real=0.0,
            returned_local=1.0,
            returned_real=1.0,
        )
        replica._on_decision(dec)
        replica._on_decision(dec)
        assert replica.log == ["once"]

    def test_preserves_prior_decision_callback(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=6))
        node = cluster.protocol_node(2)
        seen = []
        node.on_decision = lambda dec: seen.append(dec.value)
        ReplicatedStateMachine(cluster, primary=0).submit("hello")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert "hello" in seen


class TestConsistencyChecker:
    def test_prefix_consistency(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=7))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        rsm.submit_batch(["a", "b"])
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        # Truncate one replica's view to simulate an observer lag.
        some_replica = next(iter(rsm.replicas.values()))
        some_replica.applied = some_replica.applied[:1]
        assert rsm.logs_consistent()
        # A *divergent* log is flagged.
        some_replica.applied = [(0, "WRONG")]
        assert not rsm.logs_consistent()
