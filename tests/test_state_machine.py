"""Tests for the replicated-state-machine extension."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.extensions.state_machine import (
    DecisionTap,
    Replica,
    ReplicatedStateMachine,
)
from repro.faults.byzantine import CrashStrategy, MirrorParticipantStrategy
from repro.harness.scenario import Cluster, ScenarioConfig


@pytest.fixture
def params7() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)


class TestReplication:
    def test_batch_applies_in_order_everywhere(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=1))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        commands = [f"cmd{i}" for i in range(6)]
        indexes = rsm.submit_batch(commands)
        assert indexes == list(range(6))
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        logs = rsm.logs()
        assert all(log == commands for log in logs.values())
        assert rsm.logs_consistent()

    def test_with_crashed_and_byzantine_replicas(self, params7):
        cluster = Cluster(
            ScenarioConfig(
                params=params7,
                seed=2,
                byzantine={5: CrashStrategy(), 6: MirrorParticipantStrategy()},
            )
        )
        rsm = ReplicatedStateMachine(cluster, primary=0)
        commands = ["a", "b", "c", "d"]
        rsm.submit_batch(commands)
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert all(log == commands for log in rsm.logs().values())

    def test_out_of_order_decisions_buffered(self, params7):
        """A replica built after submission still applies in index order."""
        cluster = Cluster(ScenarioConfig(params=params7, seed=3))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        applied_order: list[int] = []
        victim = rsm.replicas[3]
        victim.on_apply = lambda index, _value: applied_order.append(index)
        rsm.submit_batch(["x", "y", "z"])
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert applied_order == [0, 1, 2]
        assert victim.gap is None

    def test_gap_reported_while_waiting(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=4))
        node = cluster.protocol_node(1)
        replica = Replica(node, primary=0)
        # Hand-feed a decision for index 2 only.
        from repro.core.agreement import Decision

        replica._on_decision(
            Decision(
                node=1,
                general=(0, 2),
                value="late",
                tau_g_local=0.0,
                tau_g_real=0.0,
                returned_local=1.0,
                returned_real=1.0,
            )
        )
        assert replica.log == []
        assert replica.gap == 0

    def test_duplicate_decisions_ignored(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=5))
        replica = Replica(cluster.protocol_node(1), primary=0)
        from repro.core.agreement import Decision

        dec = Decision(
            node=1,
            general=(0, 0),
            value="once",
            tau_g_local=0.0,
            tau_g_real=0.0,
            returned_local=1.0,
            returned_real=1.0,
        )
        replica._on_decision(dec)
        replica._on_decision(dec)
        assert replica.log == ["once"]

    def test_preserves_prior_decision_callback(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=6))
        node = cluster.protocol_node(2)
        seen = []
        node.on_decision = lambda dec: seen.append(dec.value)
        ReplicatedStateMachine(cluster, primary=0).submit("hello")
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        assert "hello" in seen


class _Probe(DecisionTap):
    """Minimal concrete tap: records every decision it observes."""

    def __init__(self, node) -> None:
        self.seen: list = []
        super().__init__(node)

    def _on_decision(self, decision) -> None:
        self.seen.append(decision.value)


def _decision(value) -> "Decision":
    from repro.core.agreement import Decision

    return Decision(
        node=1,
        general=(0, 0),
        value=value,
        tau_g_local=0.0,
        tau_g_real=0.0,
        returned_local=1.0,
        returned_real=1.0,
    )


class TestDecisionTapChaining:
    def test_detach_head_restores_previous_callback(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=20))
        node = cluster.protocol_node(1)
        base_seen = []
        node.on_decision = lambda dec: base_seen.append(dec.value)
        original = node.on_decision
        probe = _Probe(node)
        node.on_decision(_decision("a"))
        assert probe.seen == ["a"] and base_seen == ["a"]
        probe.detach()
        assert node.on_decision is original
        node.on_decision(_decision("b"))
        assert probe.seen == ["a"] and base_seen == ["a", "b"]

    def test_detach_middle_splices_chain(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=21))
        node = cluster.protocol_node(1)
        lower = _Probe(node)
        upper = _Probe(node)  # stacked on top of lower
        node.on_decision(_decision("a"))
        assert lower.seen == ["a"] and upper.seen == ["a"]
        lower.detach()  # middle of the chain: upper still installed
        node.on_decision(_decision("b"))
        assert lower.seen == ["a"]
        assert upper.seen == ["a", "b"]

    def test_detach_in_any_order(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=22))
        node = cluster.protocol_node(1)
        taps = [_Probe(node) for _ in range(3)]
        taps[1].detach()
        taps[2].detach()
        node.on_decision(_decision("x"))
        assert taps[0].seen == ["x"]
        assert taps[1].seen == [] and taps[2].seen == []
        taps[0].detach()
        assert node.on_decision is None
        taps[0].detach()  # idempotent

    def test_foreign_interposed_callback_leaves_inert_tap(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=23))
        node = cluster.protocol_node(1)
        probe = _Probe(node)
        # Someone overwrites on_decision with a plain closure that wraps the
        # tap's dispatch: the tap cannot be spliced out structurally.
        inner = node.on_decision
        outer_seen = []

        def wrapper(dec):
            inner(dec)
            outer_seen.append(dec.value)

        node.on_decision = wrapper
        probe.detach()
        node.on_decision(_decision("z"))
        # The chain keeps working; the detached tap is an inert pass-through.
        assert outer_seen == ["z"]
        assert probe.seen == []

    def test_replica_detach_composes_with_observers(self, params7):
        """A Replica is a DecisionTap: stacking and detaching compose."""
        cluster = Cluster(ScenarioConfig(params=params7, seed=24))
        node = cluster.protocol_node(1)
        replica = Replica(node, primary=0)
        probe = _Probe(node)
        node.on_decision(_decision("cmd"))
        assert replica.log == ["cmd"] and probe.seen == ["cmd"]
        replica.detach()
        node.on_decision(_decision("cmd2"))
        assert replica.log == ["cmd"]  # detached: no longer applying
        assert probe.seen == ["cmd", "cmd2"]


class TestConsistencyChecker:
    def test_prefix_consistency(self, params7):
        cluster = Cluster(ScenarioConfig(params=params7, seed=7))
        rsm = ReplicatedStateMachine(cluster, primary=0)
        rsm.submit_batch(["a", "b"])
        cluster.run_for(params7.delta_agr + 10 * params7.d)
        # Truncate one replica's view to simulate an observer lag.
        some_replica = next(iter(rsm.replicas.values()))
        some_replica.applied = some_replica.applied[:1]
        assert rsm.logs_consistent()
        # A *divergent* log is flagged.
        some_replica.applied = [(0, "WRONG")]
        assert not rsm.logs_consistent()
