"""Unit tests for the msgd-broadcast primitive (Figure 3), block by block."""

from __future__ import annotations

import pytest

from repro.core.messages import (
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
)
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import ProtocolParams

from tests.helpers import FakeHost

G = 9
P = 3  # broadcast origin used in most tests


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=7, f=2, delta=1.0, rho=0.0)


@pytest.fixture
def setup(params):
    host = FakeHost(params)
    accepts: list[tuple[int, object, int, float]] = []
    broadcasters: list[int] = []
    mb = MsgdBroadcast(
        host,
        G,
        lambda origin, value, k, now: accepts.append((origin, value, k, now)),
        broadcasters.append,
    )
    return host, mb, accepts, broadcasters


def echo(mb, senders, k=1, value="m", origin=P):
    for sender in senders:
        mb.on_message(MBEchoMsg(G, origin, value, k), sender)


def init_prime(mb, senders, k=1, value="m", origin=P):
    for sender in senders:
        mb.on_message(MBInitPrimeMsg(G, origin, value, k), sender)


def echo_prime(mb, senders, k=1, value="m", origin=P):
    for sender in senders:
        mb.on_message(MBEchoPrimeMsg(G, origin, value, k), sender)


class TestAnchor:
    def test_messages_logged_before_anchor_replayed_on_set(self, setup):
        host, mb, accepts, _ = setup
        echo(mb, [1, 2, 3, 4, 5])  # strong quorum, but no anchor yet
        assert accepts == []
        mb.set_anchor(host.local_now())
        assert len(accepts) == 1
        assert accepts[0][:3] == (P, "m", 1)

    def test_invoke_sends_init(self, setup):
        host, mb, _, _ = setup
        mb.invoke("m", 1)
        inits = host.sent_of(MBInitMsg)
        assert inits == [MBInitMsg(G, host.node_id, "m", 1)]

    def test_clear_anchor_stops_evaluation(self, setup):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        mb.clear_anchor()
        echo(mb, [1, 2, 3, 4, 5])
        assert accepts == []


class TestBlockW:
    def test_init_from_origin_triggers_echo(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        mb.on_message(MBInitMsg(G, P, "m", 1), P)
        assert host.sent_of(MBEchoMsg) == [MBEchoMsg(G, P, "m", 1)]

    def test_init_claiming_other_origin_discarded(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        mb.on_message(MBInitMsg(G, P, "m", 1), sender=5)  # forged origin
        assert host.sent_of(MBEchoMsg) == []

    def test_echo_deadline_2k_phi(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        host.advance(2 * params.phi + 1.0)  # past 2k*Phi for k=1
        mb.on_message(MBInitMsg(G, P, "m", 1), P)
        assert host.sent_of(MBEchoMsg) == []

    def test_higher_round_has_later_deadline(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        host.advance(2 * params.phi + 1.0)
        mb.on_message(MBInitMsg(G, P, "m", 2), P)  # k=2: deadline 4*Phi
        assert host.sent_of(MBEchoMsg) == [MBEchoMsg(G, P, "m", 2)]


class TestBlockX:
    def test_weak_echo_quorum_sends_init_prime(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3])
        assert host.sent_of(MBInitPrimeMsg) == [MBInitPrimeMsg(G, P, "m", 1)]

    def test_strong_echo_quorum_accepts(self, setup):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        assert [a[:3] for a in accepts] == [(P, "m", 1)]

    def test_accept_once_per_triplet(self, setup):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        echo(mb, [6])
        assert len(accepts) == 1

    def test_x_deadline_2k_plus_1_phi(self, setup, params):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        host.advance(3 * params.phi + 1.0)
        echo(mb, [1, 2, 3, 4, 5])
        assert accepts == []  # past (2k+1)Phi for k=1

    def test_sends_are_once_only(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3])
        echo(mb, [4])
        assert len(host.sent_of(MBInitPrimeMsg)) == 1


class TestBlockY:
    def test_weak_init_prime_detects_broadcaster(self, setup):
        host, mb, _, broadcasters = setup
        mb.set_anchor(host.local_now())
        init_prime(mb, [1, 2, 3])
        assert broadcasters == [P]
        assert P in mb.broadcasters

    def test_broadcaster_detected_once(self, setup):
        host, mb, _, broadcasters = setup
        mb.set_anchor(host.local_now())
        init_prime(mb, [1, 2, 3, 4])
        assert broadcasters == [P]

    def test_strong_init_prime_sends_echo_prime(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        init_prime(mb, [1, 2, 3, 4, 5])
        assert host.sent_of(MBEchoPrimeMsg) == [MBEchoPrimeMsg(G, P, "m", 1)]

    def test_y_deadline_2k_plus_2_phi(self, setup, params):
        host, mb, _, broadcasters = setup
        mb.set_anchor(host.local_now())
        host.advance(4 * params.phi + 1.0)
        init_prime(mb, [1, 2, 3])
        assert broadcasters == []


class TestBlockZ:
    def test_weak_echo_prime_amplifies_any_time(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        host.advance(10 * params.phi)  # far past all deadlines
        echo_prime(mb, [1, 2, 3])
        assert host.sent_of(MBEchoPrimeMsg) == [MBEchoPrimeMsg(G, P, "m", 1)]

    def test_strong_echo_prime_accepts_any_time(self, setup, params):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        host.advance(10 * params.phi)
        echo_prime(mb, [1, 2, 3, 4, 5])
        assert [a[:3] for a in accepts] == [(P, "m", 1)]

    def test_distinct_triplets_tracked_separately(self, setup):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5], k=1)
        echo(mb, [1, 2, 3, 4, 5], k=2)
        echo(mb, [1, 2, 3, 4, 5], k=1, value="m2")
        assert len(accepts) == 3


class TestCleanupReset:
    def test_cleanup_prunes_old_messages(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2])
        horizon = (2 * params.f + 3) * params.phi
        host.advance(horizon + 1.0)
        mb.cleanup()
        assert mb.log.total_records() == 0

    def test_cleanup_expires_broadcasters(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        init_prime(mb, [1, 2, 3])
        host.advance((2 * params.f + 3) * params.phi + 1.0)
        mb.cleanup()
        assert mb.broadcasters == {}

    def test_reset_clears_everything(self, setup):
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        mb.reset()
        assert mb.anchor is None
        assert mb.accepted == {}
        assert mb.broadcasters == {}
        assert mb.log.total_records() == 0
        # After reset a new wave can be accepted again.
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        assert len(accepts) == 2

    def test_corrupted_state_drains(self, setup, params):
        from repro.sim.rand import RandomSource

        host, mb, _, _ = setup
        host.advance(50.0)
        mb.corrupt(RandomSource(5), ["a", "b"])
        horizon = (2 * params.f + 3) * params.phi
        steps = int(horizon / params.d) + 2
        for _ in range(steps):
            host.advance(params.d)
            mb.cleanup()
        assert mb.log.total_records() == 0
        assert mb.broadcasters == {}
        assert mb.accepted == {}


class TestDeadlineTimerHygiene:
    """Deadline-chain handles must never linger in the host's registry.

    Each evaluated triplet arms a chained W/X/Y deadline timer on the host;
    dropping a state (reset, anchor change, cleanup retirement) must cancel
    the pending hop, and a chain that runs to its natural end must clear
    its own handle -- ``live_timer_count()`` is the introspection hook.
    """

    def test_evaluation_arms_one_chain_per_triplet(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2], k=1)
        echo(mb, [1, 2], k=2)
        assert host.live_timer_count() == 2

    def test_reset_releases_all_deadline_timers(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        init_prime(mb, [1, 2], k=2)
        assert host.live_timer_count() > 0
        mb.reset()
        assert host.live_timer_count() == 0

    def test_anchor_change_releases_stale_chains(self, setup):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2])
        assert host.live_timer_count() == 1
        # Re-anchoring drops and rebuilds the state: old chain canceled,
        # exactly one live chain for the surviving triplet.
        mb.set_anchor(host.local_now())
        assert host.live_timer_count() == 1
        mb.clear_anchor()
        assert host.live_timer_count() == 0

    def test_expired_chain_clears_its_own_handle(self, setup, params):
        host, mb, _, _ = setup
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2])
        # Run real time past the last (Y) deadline: the chain fires through
        # W -> X -> Y and terminates without leaving a pending hop.
        host.advance((2 * 1 + 2) * params.phi + 1.0)
        assert host.live_timer_count() == 0

    def test_cleanup_retirement_releases_forgotten_triplets(self, setup, params):
        host, mb, _, _ = setup
        horizon = (2 * params.f + 3) * params.phi
        # A far-future anchor keeps the deadline chain pending while the
        # logged messages age out underneath it.
        mb.set_anchor(host.local_now() + horizon)
        echo(mb, [1, 2])
        assert host.live_timer_count() == 1
        host.advance(horizon + 1.0)
        mb.cleanup()  # decay retires the triplet -> chain must be canceled
        assert mb._states == {}
        assert host.live_timer_count() == 0

    def test_full_agreement_instance_cycle_returns_to_zero(self, setup, params):
        """One complete accept wave, then the 3d reset: registry drains."""
        host, mb, accepts, _ = setup
        mb.set_anchor(host.local_now())
        mb.on_message(MBInitMsg(G, P, "m", 1), P)
        echo(mb, [1, 2, 3, 4, 5])
        init_prime(mb, [1, 2, 3, 4, 5])
        echo_prime(mb, [1, 2, 3, 4, 5])
        assert len(accepts) == 1
        assert host.live_timer_count() > 0
        mb.reset()  # what the agreement layer does 3d after returning
        assert host.live_timer_count() == 0
        # A second instance after the reset behaves identically.
        mb.set_anchor(host.local_now())
        echo(mb, [1, 2, 3, 4, 5])
        assert len(accepts) == 2
        mb.reset()
        assert host.live_timer_count() == 0
