"""Tests for the process-pool seed fan-out (repro.harness.parallel).

The contract under test: for any worker count, ``run_seeds_parallel`` /
``SeedPool.map`` return exactly what the serial loop returns, in seed
order -- and the experiment drivers wired through it produce bit-identical
rows with and without ``workers=``.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.harness.experiments import (
    run_e1_validity,
    run_e3_stabilization,
    run_e9_scaling,
)
from repro.harness.parallel import (
    SeedPool,
    resolve_workers,
    run_seeds_parallel,
    shutdown_shared_pools,
)


def _square_plus(offset: int, seed: int) -> int:
    return seed * seed + offset


def _seed_fingerprint(seed: int) -> tuple:
    """A tiny pure 'experiment': derive values only from the seed."""
    from repro.sim.rand import RandomSource

    rng = RandomSource(seed).split("fingerprint")
    return seed, rng.uniform(0.0, 1.0), rng.randint(0, 10**6)


class TestRunSeedsParallel:
    def test_matches_serial_map(self):
        seeds = list(range(12))
        serial = [_square_plus(3, s) for s in seeds]
        assert run_seeds_parallel(partial(_square_plus, 3), seeds, workers=4) == serial

    def test_workers_one_is_serial(self):
        seeds = [5, 3, 1]
        result = run_seeds_parallel(_seed_fingerprint, seeds, workers=1)
        assert result == [_seed_fingerprint(s) for s in seeds]

    def test_workers_exceeding_seed_count(self):
        seeds = [2, 7]
        result = run_seeds_parallel(_seed_fingerprint, seeds, workers=16)
        assert result == [_seed_fingerprint(s) for s in seeds]

    def test_order_follows_seeds_not_completion(self):
        seeds = [9, 1, 8, 2, 7]
        result = run_seeds_parallel(_seed_fingerprint, seeds, workers=3)
        assert [r[0] for r in result] == seeds

    def test_rng_streams_identical_across_processes(self):
        seeds = list(range(8))
        assert run_seeds_parallel(_seed_fingerprint, seeds, workers=4) == [
            _seed_fingerprint(s) for s in seeds
        ]


class TestSeedPool:
    def test_pool_reusable_across_map_calls(self):
        with SeedPool(workers=3) as pool:
            first = pool.map(partial(_square_plus, 0), range(6))
            second = pool.map(partial(_square_plus, 10), range(6))
        assert first == [s * s for s in range(6)]
        assert second == [s * s + 10 for s in range(6)]

    def test_serial_pool_has_no_executor(self):
        with SeedPool(workers=None) as pool:
            assert pool.workers == 1
            assert pool._executor is None
            assert pool.map(partial(_square_plus, 1), [4]) == [17]

    def test_close_is_idempotent(self):
        pool = SeedPool(workers=2).__enter__()
        pool.close()
        pool.close()

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel._cpu_count", lambda: 8)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(6) == 6
        assert resolve_workers(-1) == 8

    def test_resolve_workers_caps_at_core_count(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel._cpu_count", lambda: 4)
        with pytest.warns(RuntimeWarning, match="exceeds the 4 available"):
            assert resolve_workers(9) == 4
        # At or below the core count: taken literally, no warning.
        assert resolve_workers(4) == 4

    def test_pool_exposes_requested_and_effective_counts(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel._cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning):
            pool = SeedPool(workers=16)
        assert pool.requested_workers == 16
        assert pool.workers == 2
        pool.close()


class TestSharedPools:
    """SeedPool.shared keeps workers warm across driver calls."""

    def teardown_method(self):
        shutdown_shared_pools()

    def test_shared_returns_same_instance_per_worker_count(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel._cpu_count", lambda: 8)
        a = SeedPool.shared(2)
        b = SeedPool.shared(2)
        assert a is b
        assert SeedPool.shared(None) is SeedPool.shared(1)
        assert SeedPool.shared(None) is not a

    def test_context_exit_keeps_shared_executor_alive(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel._cpu_count", lambda: 8)
        with SeedPool.shared(2) as pool:
            executor = pool._executor
            assert executor is not None
        assert pool._executor is executor  # still warm after exit
        with SeedPool.shared(2) as again:
            assert again is pool
            assert again._executor is executor

    def test_shared_map_matches_serial(self):
        seeds = list(range(8))
        serial = [_square_plus(5, s) for s in seeds]
        assert SeedPool.shared(2).map(partial(_square_plus, 5), seeds) == serial
        assert run_seeds_parallel(
            partial(_square_plus, 5), seeds, workers=2, reuse_pool=True
        ) == serial

    def test_close_evicts_from_cache(self):
        pool = SeedPool.shared(2)
        pool.close()
        assert SeedPool.shared(2) is not pool

    def test_shutdown_shared_pools_is_idempotent(self):
        SeedPool.shared(2)
        shutdown_shared_pools()
        shutdown_shared_pools()


class TestDriversBitIdentical:
    """workers= must never change an experiment's rows."""

    def test_e1_parallel_matches_serial(self):
        serial = run_e1_validity(ns=(4,), seeds=range(4))
        for workers in (1, 2, 8):  # 8 > len(seeds)
            assert run_e1_validity(ns=(4,), seeds=range(4), workers=workers) == serial

    def test_e9_parallel_matches_serial(self):
        serial = run_e9_scaling(ns=(4, 7), seeds=range(2))
        assert run_e9_scaling(ns=(4, 7), seeds=range(2), workers=2) == serial

    def test_e3_parallel_matches_serial(self):
        serial = run_e3_stabilization(n=4, seeds=range(2), garbage_messages=40)
        parallel = run_e3_stabilization(
            n=4, seeds=range(2), garbage_messages=40, workers=2
        )
        assert parallel == serial


class TestFaultScriptBitIdentical:
    """Scripted fault timelines obey the same contract as the drivers:
    rows *and trace digests* are bit-identical at any worker count."""

    SUITE = {
        "name": "parallel-faults",
        "seeds": [0, 1, 2],
        "base": {"delta": 1.0, "rho": 1e-4, "value": "v", "trace": True},
        "grid": {
            "n": [4],
            "timeline": ["partition_heal", "churn"],
        },
    }

    def test_suite_rows_and_digests_parallel_match_serial(self):
        from repro.harness.suite import run_suite

        serial = run_suite(self.SUITE)
        for workers in (1, 4):
            fanned = run_suite(self.SUITE, workers=workers)
            assert fanned == serial, f"workers={workers} diverged"
        # The digest column is a real discriminator, not a constant.
        assert serial[0]["digest"] != serial[1]["digest"]
