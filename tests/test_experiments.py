"""End-to-end checks of the experiment drivers with tiny seed budgets.

Each test asserts the *pass criteria* EXPERIMENTS.md reports: paper bounds
hold, shapes point the right way.
"""

from __future__ import annotations

import pytest

from repro.harness import experiments as ex


class TestE1:
    def test_validity_and_bounds(self):
        rows = ex.run_e1_validity(ns=(4, 7), seeds=range(3))
        for row in rows:
            assert row["validity_ok"] == row["runs"]
            assert row["timeliness_ok"] == row["runs"]
            assert row["latency_max_d"] <= row["latency_bound_d"]
            assert row["spread_max_d"] <= row["spread_bound_d"]


class TestE2:
    def test_agreement_under_all_attacks(self):
        rows = ex.run_e2_byzantine_general(seeds=range(2))
        for row in rows:
            assert row["agreement_ok"] == row["runs"], row
            assert row["splits"] == 0


class TestE3:
    def test_stabilization(self):
        rows = ex.run_e3_stabilization(seeds=range(2))
        row = rows[0]
        assert row["proposal_unblocked"] == row["runs"]
        assert row["post_stb_validity"] == row["runs"]
        assert row["post_stb_timeliness"] == row["runs"]


class TestE4:
    def test_early_stopping_shape(self):
        rows = ex.run_e4_early_stopping(n=10, seeds=range(2))
        assert all(row["validity_ok"] == row["runs"] for row in rows)
        # Latency grows with f' but stays far below the worst-case bound.
        means = [row["latency_mean_d"] for row in rows]
        assert means[0] <= means[-1]
        assert all(
            row["latency_max_d"] < row["worstcase_bound_d"] / 2 for row in rows
        )


class TestE5:
    def test_message_driven_speedup(self):
        rows = ex.run_e5_msg_driven(seeds=range(2), delay_fracs=(0.1, 1.0))
        fast, slow = rows[0], rows[1]
        # ss-Byz-Agree tracks actual delay; TPS'87 does not.
        assert fast["ss_latency_mean"] < slow["ss_latency_mean"]
        assert fast["tps_latency_mean"] == pytest.approx(slow["tps_latency_mean"])
        assert fast["speedup"] > slow["speedup"] > 1.0


class TestE6:
    def test_bound_is_tight(self):
        rows = ex.run_e6_resilience(seeds=range(3))
        within, beyond = rows[0], rows[1]
        assert within["agreement_ok"] == within["runs"]
        assert beyond["splits"] == beyond["runs"]


class TestE7:
    def test_ia_bounds(self):
        rows = ex.run_e7_initiator_accept(ns=(4, 7), seeds=range(2))
        for row in rows:
            assert row["ia1_ok"] == row["runs"]
            assert row["accept_spread_max_d"] <= row["accept_spread_bound_d"]
            assert row["anchor_spread_max_d"] <= row["anchor_spread_bound_d"]


class TestE8:
    def test_separation(self):
        rows = ex.run_e8_separation(seeds=range(1), rounds=2)
        row = rows[0]
        assert row["separation_ok"] == row["runs"]
        assert row["separation_and_agreement_ok"] == row["runs"]


class TestE9:
    def test_scaling_shape(self):
        rows = ex.run_e9_scaling(ns=(4, 7, 10), seeds=range(1))
        messages = [row["messages_mean"] for row in rows]
        assert messages == sorted(messages)  # grows with n
        # Latency stays roughly flat (message-driven, independent of n).
        latencies = [row["latency_mean_d"] for row in rows]
        assert max(latencies) < 4.0


class TestE10:
    def test_classic_fails_ss_recovers(self):
        rows = ex.run_e10_classic_fails(seeds=range(3))
        row = rows[0]
        assert row["eig_agreed_on_garbage"] + row["eig_disagreement"] == row["runs"]
        assert row["ss_byz_agree_recovered"] == row["runs"]
