#!/usr/bin/env python
"""A Byzantine General tries (and fails) to split the correct nodes.

Three attacks from the paper's adversary model:

1. **Equivocation** -- the General sends value "A" to one camp and "B" to
   the other, then keeps feeding each camp supporting traffic.
2. **Staggered initiation** -- the same value, but sent to each node at a
   wildly different time ("a faulty General has more power ... by sending
   its values at completely different times", Section 4).
3. **Selective initiation** -- only a quorum-sized subset ever hears the
   General; the relay machinery must drag everyone else along.

In every run the Agreement property must hold: if any correct node decides,
all correct nodes decide the same value.

Run:  python examples/byzantine_general.py
"""

from repro import BOTTOM, Cluster, ProtocolParams, ScenarioConfig
from repro.faults.byzantine import (
    EquivocatingGeneralStrategy,
    SelectiveGeneralStrategy,
    StaggeredGeneralStrategy,
)
from repro.harness import properties


def describe(cluster: Cluster, general: int) -> str:
    latest = cluster.latest_decision_per_node(general)
    if not latest:
        return "no correct node returned anything (initiation went unnoticed)"
    parts = []
    for node_id in sorted(latest):
        value = latest[node_id].value
        parts.append(f"{node_id}:{'ABORT' if value is BOTTOM else repr(value)}")
    return "  ".join(parts)


def run_attack(name: str, strategy, params: ProtocolParams, seed: int) -> None:
    cluster = Cluster(
        ScenarioConfig(params=params, seed=seed, byzantine={0: strategy})
    )
    cluster.run_for(3 * params.delta_agr)
    report = properties.agreement(cluster, general=0)
    print(f"\n--- {name} ---")
    print(f"  outcomes: {describe(cluster, 0)}")
    print(f"  agreement holds: {report.holds}")
    assert report.holds, report.details


def main() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)

    run_attack(
        "equivocation: 'A' to nodes 1-3, 'B' to nodes 4-6",
        EquivocatingGeneralStrategy("A", "B", (1, 2, 3), (4, 5, 6)),
        params,
        seed=1,
    )
    run_attack(
        "staggered: same value, spread over 10d",
        StaggeredGeneralStrategy("retreat", spread_local=10 * params.d),
        params,
        seed=2,
    )
    run_attack(
        "selective: only nodes 1-5 hear the General",
        SelectiveGeneralStrategy("advance", (1, 2, 3, 4, 5)),
        params,
        seed=3,
    )

    print("\nAgreement held under every attack. ✓")


if __name__ == "__main__":
    main()
