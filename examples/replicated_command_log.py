#!/usr/bin/env python
"""Domain scenario: a primary replicating an ordered command log.

The workload the Byzantine Generals problem classically motivates: a
primary (the General) disseminates a sequence of commands to replicas that
must apply them in the same order -- here through *recurrent* ss-Byz-Agree
invocations, respecting the General's pacing rules (IG1/IG2), with a crashed
replica and a Byzantine replica in the mix.

Demonstrates:

* recurrent agreement by the same General (Delta_0 pacing between values);
* replicas building identical logs purely from decisions;
* fault tolerance: one crashed and one actively Byzantine replica (f = 2).

Run:  python examples/replicated_command_log.py
"""

from repro import Cluster, ProtocolParams, ScenarioConfig
from repro.faults.byzantine import CrashStrategy, MirrorParticipantStrategy
from repro.harness import properties

COMMANDS = ["SET x=1", "SET y=2", "DEL x", "SET z=9"]
PRIMARY = 0


def main() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    cluster = Cluster(
        ScenarioConfig(
            params=params,
            seed=7,
            byzantine={5: CrashStrategy(), 6: MirrorParticipantStrategy()},
        )
    )

    # Each replica applies decisions in the order they are returned.
    logs: dict[int, list[str]] = {node_id: [] for node_id in cluster.correct_ids}
    for node_id in cluster.correct_ids:
        node = cluster.protocol_node(node_id)
        node.on_decision = lambda dec, log=logs[node_id]: (
            log.append(dec.value) if dec.decided else None
        )

    primary = cluster.protocol_node(PRIMARY)
    for command in COMMANDS:
        # Respect the Sending Validity Criteria: wait until the primary's
        # pacing allows the next initiation.
        while not primary.may_propose(command):
            cluster.run_for(params.d)
        t0 = cluster.sim.now
        assert cluster.propose(general=PRIMARY, value=command)
        cluster.run_for(params.delta_agr + 10 * params.d)
        print(f"[t={cluster.sim.now:7.1f}] replicated {command!r} "
              f"(initiated at {t0:.1f})")

    print("\nReplica logs:")
    for node_id, log in sorted(logs.items()):
        print(f"  replica {node_id}: {log}")

    reference = logs[cluster.correct_ids[0]]
    assert reference == COMMANDS
    assert all(log == reference for log in logs.values())
    properties.separation(cluster, PRIMARY).expect()
    print("\nAll replicas hold identical ordered logs despite one crashed "
          "and one Byzantine replica. ✓")


if __name__ == "__main__":
    main()
