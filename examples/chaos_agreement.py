#!/usr/bin/env python
"""Live chaos: SIGKILL a node mid-agreement and watch it heal.

The paper's self-stabilization story, demonstrated on real processes: four
nodes run the agreement over UDP, and one protocol time unit after the
General's proposal a victim is **SIGKILLed** -- its heap, timers and
protocol state are really gone.  The cluster supervisor notices the death,
respawns the process with *scrambled* protocol state (the arbitrary-state
recovery model), re-brokers its UDP address to the survivors, and the
revenant then converges on the agreed value via the General's paced
re-initiation wave (``propose`` is pacing-guarded, so the periodic retry
is refused until the Sending Validity Criteria allow it).

Run:  python examples/chaos_agreement.py
"""

import time

from repro.faults.live import run_chaos_agreement


def main() -> None:
    time_scale = 0.05
    print(f"spawning 4 node processes (d = {time_scale * 1000:.0f} ms wall)")
    print("one SIGKILL with full state loss at t = 1d; supervisor heals\n")

    t0 = time.perf_counter()
    chaos = run_chaos_agreement(
        n=4, f=1, seed=7, value="still-at-dawn", time_scale=time_scale
    )
    wall = time.perf_counter() - t0

    report = chaos.report
    print(f"victims: {chaos.victims} (killed at {chaos.kill_at_d:g}d, "
          f"respawned with scrambled state)")
    print("Decisions (per node, latest incarnation):")
    for node_id in sorted(report.decisions):
        dec = report.decisions[node_id]
        mark = ""
        if node_id in chaos.victims:
            latency = chaos.per_victim_latency_d.get(node_id)
            mark = (f"  <- revenant, {report.restart_counts.get(node_id, 0)} "
                    f"restart(s), re-decided {latency:.1f}d after its kill")
        print(f"  node {node_id}: value={dec.value!r:16s}"
              f" at local={dec.returned_local:.2f}{mark}")
    print(f"\nrecovery: worst latency {chaos.recovery_latency_d:.1f}d "
          f"(bound {chaos.recovery_bound_d:.1f}d)")
    print(f"teardown: exit reasons {report.exit_reasons}, "
          f"live timers {report.live_timers}")
    print(f"wall clock: {wall * 1000:.0f} ms end to end")

    assert chaos.ok, "chaos run must agree, converge, recover and exit clean"
    print("\nKilled, healed, and every node agreed anyway. ✓")


if __name__ == "__main__":
    main()
