#!/usr/bin/env python
"""Socket runtime backend: one agreement over real UDP datagrams.

The furthest the sans-I/O claim can be pushed without leaving localhost:
every node is its **own OS process**, every message is an authenticated
frame inside a real UDP datagram, timers run on each process's wall clock
(scaled by ``time_scale``), and one participant plays a mirror-amplifying
Byzantine sender the whole time.  The protocol code is still the exact
``ProtocolNode`` the discrete-event simulator drives -- only the host
changed.

The parent process never runs protocol logic: it spawns the children,
brokers the UDP address book, streams decisions back over pipes, and tears
every process down (no orphans, zero leaked timers).

Run:  python examples/socket_agreement.py
"""

import time

from repro.faults.byzantine import MirrorParticipantStrategy
from repro.runtime.socket_host import run_agreement_socket


def main() -> None:
    # 4 processes tolerating f = 1 Byzantine; protocol time unit d mapped to
    # 50 ms of wall clock, leaving UDP + scheduler latency far below d.
    time_scale = 0.05
    print(f"spawning 4 node processes (d = {time_scale * 1000:.0f} ms wall)")
    print("node 3 is Byzantine: mirrors and amplifies every wave it sees\n")

    t0 = time.perf_counter()
    report, decisions = run_agreement_socket(
        n=4,
        f=1,
        seed=7,
        value="launch-at-dawn",
        byzantine={3: MirrorParticipantStrategy()},
        time_scale=time_scale,
    )
    wall = time.perf_counter() - t0

    print("Decisions (per correct node):")
    for node_id in sorted(decisions):
        dec = decisions[node_id]
        print(
            f"  node {node_id}: value={dec.value!r:18s}"
            f" returned at local={dec.returned_local:.2f}"
            f" ({dec.returned_local * time_scale * 1000:.0f} ms)"
        )
    print(
        f"\ntransport: {report.sent_count} datagrams sent, "
        f"{report.delivered_count} delivered, "
        f"{report.rejected_count} rejected by frame authentication"
    )
    print(f"teardown:  live timers {report.live_timers}, exits {report.exit_codes}")
    print(f"wall clock: {wall * 1000:.0f} ms end to end (includes process spawn)")

    values = {dec.value for dec in decisions.values()}
    assert values == {"launch-at-dawn"}, values
    assert report.clean_exit, "children must exit 0 with zero live timers"
    print("\nAll correct nodes decided the General's value over real UDP. ✓")


if __name__ == "__main__":
    main()
