#!/usr/bin/env python
"""Quickstart: one self-stabilizing Byzantine agreement, end to end.

Builds a 7-node cluster (tolerating f = 2 Byzantine nodes), has node 0 act
as the General proposing a value, runs the simulation, and prints every
correct node's decision together with the paper's timing bounds.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ProtocolParams, ScenarioConfig


def main() -> None:
    # Model inputs: 7 nodes, up to 2 Byzantine, message delay bound delta = 1
    # time unit, clock drift rho = 1e-4.  Everything else (d, Phi, Delta_*)
    # is derived exactly as in the paper's Section 3.
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    print("Derived timing constants:")
    for name, value in params.describe().items():
        print(f"  {name:12s} = {value}")

    cluster = Cluster(ScenarioConfig(params=params, seed=42))

    t0 = cluster.sim.now
    accepted = cluster.propose(general=0, value="launch-at-dawn")
    print(f"\nGeneral 0 proposes 'launch-at-dawn' at t = {t0:.2f}: sent={accepted}")

    cluster.run_for(params.delta_agr + 10 * params.d)

    print("\nDecisions (per correct node):")
    for dec in sorted(cluster.decisions(0), key=lambda d: d.node):
        latency = dec.returned_real - t0
        print(
            f"  node {dec.node}: value={dec.value!r:18s}"
            f" decided at +{latency:.2f} (bound: {4 * params.d:.2f})"
            f" anchor rt(tau_G)={dec.tau_g_real:+.2f}"
        )

    values = {dec.value for dec in cluster.decisions(0)}
    assert values == {"launch-at-dawn"}, values
    print("\nAll correct nodes decided the General's value. ✓")


if __name__ == "__main__":
    main()
