#!/usr/bin/env python
"""Self-stabilization demo: recovery from a catastrophic transient fault.

Timeline:

1. The cluster runs normally and completes an agreement.
2. A transient fault strikes: every protocol variable on every node is
   overwritten with garbage (fake quorum evidence, stale anchors, armed
   ready flags), clocks are scrambled, and hundreds of forged messages are
   put on the wire -- the paper's "each node may be in an arbitrary state".
3. The network becomes coherent again.  Nothing else is done: no restart,
   no reset, no outside intervention.
4. After ``Delta_stb = 2 * Delta_reset`` the system is stable by the
   paper's Corollary 5 -- and the next agreement succeeds with full
   validity and timeliness.

Run:  python examples/transient_recovery.py
"""

from repro import Cluster, ProtocolParams, ScenarioConfig
from repro.faults.transient import TransientFaultInjector
from repro.harness import properties


def main() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    cluster = Cluster(ScenarioConfig(params=params, seed=2026))

    # Phase 1: normal operation.
    t0 = cluster.sim.now
    cluster.propose(general=0, value="before-fault")
    cluster.run_for(params.delta_agr + 10 * params.d)
    decided = {dec.value for dec in cluster.decisions(0)}
    print(f"[t={cluster.sim.now:7.1f}] normal agreement decided: {decided}")

    # Phase 2: catastrophe.
    injector = TransientFaultInjector(
        params,
        cluster.rng.split("injector"),
        value_pool=["ghost-a", "ghost-b", "after-fault"],
        generals=[0, 1],
    )
    injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages=400)
    print(f"[t={cluster.sim.now:7.1f}] transient fault: all state corrupted, "
          f"400 forged messages in flight")

    # Phase 3: coherence returns; wait out the stabilization bound.
    cluster.mark_coherent()
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    print(f"[t={cluster.sim.now:7.1f}] Delta_stb = {params.delta_stb:.0f} elapsed; "
          f"system stable")

    # Phase 4: the next agreement must be perfect.
    t1 = cluster.sim.now
    assert cluster.propose(general=0, value="after-fault")
    cluster.run_for(params.delta_agr + 10 * params.d)

    validity = properties.validity(cluster, 0, "after-fault", since_real=since)
    timeliness = properties.timeliness_validity(cluster, 0, t1, since_real=since)
    print(f"[t={cluster.sim.now:7.1f}] post-recovery agreement:")
    for dec in sorted(cluster.decisions(0, since_real=since), key=lambda d: d.node):
        print(f"    node {dec.node}: {dec.value!r} at +{dec.returned_real - t1:.2f}")
    print(f"  validity:   {validity.holds}")
    print(f"  timeliness: {timeliness.holds}")
    assert validity.holds and timeliness.holds

    print("\nRecovered from arbitrary state with no outside intervention. ✓")


if __name__ == "__main__":
    main()
