"""Agreement through scripted faults: timelines and the scenario matrix.

Part 1 drives a single run by hand: a correct General proposes, and one
``d`` later a partition cuts the cluster in half -- no side holds a strong
quorum, so quorum collection stalls.  The cut heals at 3d, the protocol's
re-sends refill the windows, and agreement completes late but intact.

Part 2 expresses the same idea declaratively: a suite config grids fault
timelines over cluster sizes, ``run_suite`` fans scenario x seed over a
process pool, and the consolidated report attributes message loss to its
cause (partition vs. lossy policy).

Run with::

    PYTHONPATH=src python examples/fault_timeline_suite.py
"""

from repro.core.params import ProtocolParams
from repro.faults.timeline import FaultScript, Heal, Partition
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.suite import run_suite, suite_report


def single_run() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    cluster = Cluster(ScenarioConfig(params=params, seed=1))
    script = FaultScript(
        (
            Partition(at_d=1.0, island=(0, 1, 2)),  # General's side of the cut
            Heal(at_d=3.0),
        )
    )
    script.install(cluster)

    t0 = cluster.sim.now
    assert cluster.propose(general=0, value="through-the-cut")
    cluster.run_for(24 * params.d)

    print("=== one scripted run: partition at 1d, heal at 3d ===")
    latest = cluster.latest_decision_per_node(0)
    if not latest:
        print("  (no node returned: this seed's run aborted cleanly)")
    for node_id, dec in sorted(latest.items()):
        latency = (dec.returned_real - t0) / params.d
        print(f"  node {node_id}: {dec.value!r} at t0 + {latency:.2f}d")
    agree = properties.agreement(cluster, 0)
    print(f"  agreement: {agree.holds}")
    print(
        f"  drops: partition={cluster.net.dropped_partition} "
        f"policy={cluster.net.dropped_policy}"
    )


def scenario_matrix() -> None:
    suite = {
        "name": "example",
        "seeds": [0, 1, 2],
        "base": {"delta": 1.0, "rho": 1e-4, "value": "v", "run_for_d": 24.0},
        "grid": {
            "n": [4, 7],
            "timeline": ["none", "partition_heal", "delay_storm", "churn"],
        },
    }
    rows = run_suite(suite)
    print()
    print(suite_report(suite, rows))


if __name__ == "__main__":
    single_run()
    scenario_matrix()
