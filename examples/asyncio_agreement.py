#!/usr/bin/env python
"""Asyncio runtime backend: one agreement over real coroutines.

The protocol core is sans-I/O -- it only ever talks to a
:class:`repro.runtime.api.ProtocolHost` -- so the exact same
``ProtocolNode`` code that the discrete-event simulator drives can run on
the asyncio event loop: timers become ``loop.call_later`` wake-ups,
messages travel through an in-process transport with real (scaled)
wall-clock delays, and one participant plays a mirror-amplifying Byzantine
sender the whole time.

Run:  python examples/asyncio_agreement.py
"""

import asyncio
import time

from repro.core.params import ProtocolParams
from repro.faults.byzantine import MirrorParticipantStrategy
from repro.runtime.aio import AsyncioCluster


async def main() -> None:
    # 4 nodes tolerating f = 1 Byzantine; protocol time unit d mapped to
    # 20 ms of wall clock, so a whole agreement takes a fraction of a second.
    params = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)
    time_scale = 0.02

    cluster = AsyncioCluster(
        params,
        seed=7,
        time_scale=time_scale,
        byzantine={3: MirrorParticipantStrategy()},
    )
    print(f"4-node asyncio cluster up (d = {time_scale * 1000:.0f} ms wall)")
    print("node 3 is Byzantine: mirrors and amplifies every wave it sees\n")

    t0 = time.perf_counter()
    decisions = await cluster.run_agreement(general=0, value="launch-at-dawn")
    wall = time.perf_counter() - t0
    cluster.close()

    print("Decisions (per correct node):")
    for node_id in sorted(decisions):
        dec = decisions[node_id]
        print(
            f"  node {node_id}: value={dec.value!r:18s}"
            f" returned at local={dec.returned_local:.2f}"
            f" ({dec.returned_local * time_scale * 1000:.0f} ms)"
        )
    print(
        f"\ntransport: {cluster.transport.sent_count} messages sent, "
        f"{cluster.transport.delivered_count} delivered"
    )
    print(f"wall clock: {wall * 1000:.0f} ms end to end")

    values = {dec.value for dec in decisions.values()}
    assert values == {"launch-at-dawn"}, values
    print("\nAll correct nodes decided the General's value over asyncio. ✓")


if __name__ == "__main__":
    asyncio.run(main())
