#!/usr/bin/env python
"""The message-driven advantage: latency vs the classic lock-step baseline.

Sweeps the *actual* network delay from 10% to 100% of the model bound
``delta`` and compares decision latency:

* **ss-Byz-Agree** progresses as messages arrive -- its latency tracks the
  actual network speed;
* **TPS'87** (time-driven lock-step rounds, what ss-Byz-Agree is modeled
  on) always pays full worst-case phases ``Phi = 8d``.

This is the paper's headline systems claim: "the actual time for
terminating the protocol depends on the actual communication network speed
and not on the worst possible bound on message delivery time."

Run:  python examples/message_driven_speed.py
"""

from repro import Cluster, ProtocolParams, ScenarioConfig
from repro.baselines.tps87 import Tps87Cluster
from repro.harness.metrics import decision_latencies
from repro.net.delivery import UniformDelay


def main() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)
    print(f"n={params.n} f={params.f} delta={params.delta} Phi={params.phi}")
    print(f"{'actual delay':>14s} {'ss-Byz-Agree':>14s} {'TPS87':>10s} {'speedup':>9s}")

    for frac in (0.1, 0.25, 0.5, 0.75, 1.0):
        policy = UniformDelay(0.05 * frac * params.delta, frac * params.delta)

        cluster = Cluster(ScenarioConfig(params=params, seed=11, policy=policy))
        t0 = cluster.sim.now
        cluster.propose(general=0, value="v")
        cluster.run_for(params.delta_agr + 10 * params.d)
        ss_latencies = decision_latencies(
            list(cluster.latest_decision_per_node(0).values()), t0
        )
        ss_mean = sum(ss_latencies) / len(ss_latencies)

        tps = Tps87Cluster(
            params,
            seed=11,
            policy=UniformDelay(0.05 * frac * params.delta, frac * params.delta),
        )
        tps.initiate("v")
        tps_decisions = tps.run_to_completion()
        tps_mean = sum(d.returned_real for d in tps_decisions) / len(tps_decisions)

        print(
            f"{frac:13.0%} {ss_mean:14.2f} {tps_mean:10.2f} "
            f"{tps_mean / ss_mean:8.1f}x"
        )

    print("\nss-Byz-Agree tracks the actual network; the lock-step baseline "
          "pays worst-case phases. ✓")


if __name__ == "__main__":
    main()
