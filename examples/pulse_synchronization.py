#!/usr/bin/env python
"""Synchronized pulses atop ss-Byz-Agree (the paper's [6] direction).

The paper notes that synchronized pulses -- a common periodic "heartbeat"
event at all correct nodes, the missing ingredient for making *any*
Byzantine algorithm self-stabilizing -- can be produced atop ss-Byz-Agree.
This example runs the reconstruction in ``repro.extensions.pulse_sync``:

* nodes rotate as initiators of recurrent pulse agreements;
* every correct node fires its pulse at its decision instant, so the pulse
  skew is bounded by the protocol's 3d decision spread;
* a crashed would-be initiator is ridden over by the staggered fallback
  timers.

Run:  python examples/pulse_synchronization.py
"""

from repro import ProtocolParams
from repro.extensions.pulse_sync import PulseSyncCluster
from repro.faults.byzantine import CrashStrategy


def show_trains(ps: PulseSyncCluster, label: str) -> None:
    print(f"\n{label}")
    events = ps.aligned_pulses()
    for k, event in enumerate(events):
        first = min(event.values())
        skew = max(event.values()) - first
        print(f"  pulse {k}: t={first:9.2f}  skew={skew:.3f}d "
              f"(bound {3 * ps.params.d:.1f})")


def main() -> None:
    params = ProtocolParams(n=7, f=2, delta=1.0, rho=1e-4)

    print("=== all nodes correct ===")
    ps = PulseSyncCluster(params, seed=1)
    ps.run_for(6 * ps.pulse_config.cycle)
    show_trains(ps, "pulse events:")
    assert ps.max_skew() <= 3 * params.d

    print("\n=== usual initiator (node 0) crashed ===")
    ps2 = PulseSyncCluster(params, seed=2, byzantine={0: CrashStrategy()})
    ps2.run_for(6 * ps2.pulse_config.cycle)
    show_trains(ps2, "pulse events (fallback initiator):")
    assert ps2.max_skew() <= 3 * params.d

    print("\nPulses stay within the 3d skew bound in both runs. ✓")


if __name__ == "__main__":
    main()
