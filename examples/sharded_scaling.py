#!/usr/bin/env python
"""Sharded simulation: one big cluster, several event loops, same bits.

Setting ``shards=`` on a :class:`~repro.harness.scenario.ScenarioConfig`
partitions the cluster's nodes across independent event loops that
synchronize conservatively at cross-shard message boundaries: each shard
only advances to ``min(peer horizons) + lookahead``, where the lookahead is
the minimum cross-shard transit delay the delivery policy guarantees
(:meth:`DeliveryPolicy.min_delay`).  Because every event executes in a
placement-independent total order, the sharded run is **bit-identical** to
the serial kernel at the same seed -- same decisions, same network
counters, same trace digest.  This script proves it on an n=25 run.

Run:  PYTHONPATH=src python examples/sharded_scaling.py
"""

import time

from repro.core.params import ProtocolParams
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.sim.trace import trace_digest


def run_once(shards, transport="process"):
    """One traced n=25 agreement run; returns (facts, wall seconds)."""
    params = ProtocolParams(n=25, f=1, delta=1.0, rho=1e-4)
    config = ScenarioConfig(
        params=params,
        seed=11,
        trace=True,
        shards=shards,
        shard_transport=transport,
    )
    start = time.perf_counter()
    cluster = Cluster(config)
    try:
        cluster.propose(general=0, value="rendezvous-at-k2")
        cluster.run_for(params.delta_agr + 10 * params.d)
        facts = {
            "decisions": sorted(
                (dec.node, dec.value, round(dec.returned_real, 9))
                for dec in cluster.decisions(0)
            ),
            "sent": cluster.net.sent_count,
            "delivered": cluster.net.delivered_count,
            "digest": trace_digest(cluster.tracer),
        }
        return facts, time.perf_counter() - start
    finally:
        if cluster.sharded:
            cluster.close()


def main() -> None:
    print("n=25 agreement run, serial kernel vs sharded kernel\n")

    serial, serial_wall = run_once(None)
    print(f"  serial     : {serial_wall:6.2f}s  digest={serial['digest'][:16]}…")

    for shards in (2, 4):
        sharded, wall = run_once(shards)
        marker = "bit-identical ✓" if sharded == serial else "DIVERGED ✗"
        print(
            f"  shards={shards}   : {wall:6.2f}s  "
            f"digest={sharded['digest'][:16]}…  {marker}"
        )
        assert sharded == serial, f"shards={shards} diverged from serial"

    nodes = len({node for node, _value, _t in serial["decisions"]})
    values = {value for _node, value, _t in serial["decisions"]}
    print(
        f"\n{nodes} correct nodes decided {values!r}; "
        f"{serial['sent']} sends, {serial['delivered']} deliveries -- "
        "identical rows, counters, and trace digests at every shard count. ✓"
    )
    print(
        "(On a single-core container the sharded runs pay coordination "
        "overhead; on multi-core hosts the shards run on separate cores.)"
    )


if __name__ == "__main__":
    main()
