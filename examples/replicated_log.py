#!/usr/bin/env python
"""The replicated command-log *service* under sustained open-loop load.

Where ``replicated_command_log.py`` replicates a handful of commands one
paced agreement at a time, this demo runs the full ``repro.service`` stack
on the asyncio wall-clock backend: an open-loop Poisson client offers
commands at a fixed rate, the primary's coordinator batches them into
slot-indexed agreement instances (paper footnote 9 -- no pacing across
indexes) with a bounded in-flight window, and every replica applies the
decided slots in order while retiring per-slot protocol state behind a
contiguous watermark.

What it prints: client-visible throughput and decide-latency percentiles,
plus the measured live-state peak, which stays O(window) no matter how
many slots stream through.  What it asserts: every correct replica applied
the *identical* command sequence.

Run:  python examples/replicated_log.py
"""

import asyncio

from repro.core.params import ProtocolParams
from repro.harness.benchrecord import summarize_latencies
from repro.runtime.aio import AsyncioCluster
from repro.service import ReplicatedLogService

RATE = 1000.0  # offered commands/s (open loop: arrivals never slow down)
TOTAL = 5000
WINDOW = 8
MAX_BATCH = 128
TIME_SCALE = 0.1  # d = 100 ms of wall clock


async def main() -> None:
    params = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)
    cluster = AsyncioCluster(params, seed=0, time_scale=TIME_SCALE)
    service = ReplicatedLogService(
        cluster, primary=0, window=WINDOW, max_batch=MAX_BATCH
    )
    print(f"offering {TOTAL} commands at {RATE:g}/s (Poisson) to a "
          f"{params.n}-node cluster, window={WINDOW}, batch<={MAX_BATCH}...")
    try:
        report = await service.run_workload(rate=RATE, total=TOTAL, seed=0)
    finally:
        cluster.close()

    lat = summarize_latencies(report.latencies)
    print(f"\n  {report.commands_per_s:7.0f} commands/s decided "
          f"({report.instances_per_s:.1f} agreement instances/s, "
          f"{report.slots_decided} slots, {report.slots_aborted} aborts)")
    print(f"  decide latency: p50 {lat['p50_ms']:.0f} ms, "
          f"p99 {lat['p99_ms']:.0f} ms (stamped at theoretical arrival)")
    print(f"  live protocol state peaked at {report.peak_live_instances} "
          f"slot instances (bound {report.live_bound}, "
          f"violations {report.bound_violations}) -- retirement keeps it "
          f"O(window) across {report.slots_decided} slots")

    # The service's whole point: one identical ordered log everywhere.
    assert report.identical_logs, "replica sequences diverged"
    assert report.commands_applied == TOTAL
    assert len(set(report.digests.values())) == 1
    print(f"\nAll {len(report.digests)} replicas applied the identical "
          f"{TOTAL}-command sequence (digest "
          f"{next(iter(report.digests.values()))}). ✓")


if __name__ == "__main__":
    asyncio.run(main())
