#!/usr/bin/env python
"""Operating a live cluster through its control plane, over HTTP only.

``replicated_log.py`` runs the service and reads the final report object;
this demo runs the same open-loop workload on the asyncio backend but
*observes and perturbs it from outside*, the way an operator (or a
Prometheus scraper) would:

1. attach an :class:`~repro.obs.AsyncioControlPlane`, which serves every
   node's metrics (``GET /metrics``, Prometheus text format, series
   labelled ``node="i"``), a cluster ``GET /status`` JSON snapshot, and
   ``POST /faults``;
2. mid-workload, scrape ``/metrics`` and print live per-node state --
   arrivals, live timers, live slot instances, decide-latency quantiles
   straight from the histogram series;
3. ``POST /faults`` a ``FaultScript`` action that crashes a replica with
   full state loss, then restarts it a few protocol delays later;
4. after the run drains, invoke the f+1 repair path and assert the
   revenant converged to the identical applied sequence.

The same endpoints exist on the socket backend (one process per node):
``python -m repro.cli serve --backend socket --metrics --supervise``
prints a ``control: http://...`` URL serving cluster-wide ``/status`` +
``/faults`` while each child serves its own ``/metrics``.

Run:  python examples/live_cluster.py
"""

import asyncio
import json
import urllib.request

from repro.core.params import ProtocolParams
from repro.obs import AsyncioControlPlane, parse_prometheus_text
from repro.runtime.aio import AsyncioCluster
from repro.service import ReplicatedLogService
from repro.service.workload import OpenLoopWorkload

RATE = 400.0
TOTAL = 800
WINDOW = 4
TIME_SCALE = 0.05  # d = 50 ms of wall clock
VICTIM = 2


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.read().decode()


def _post_json(url: str, payload) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=5.0) as resp:
        return json.loads(resp.read())


async def main() -> None:
    params = ProtocolParams(n=4, f=1, delta=1.0, rho=0.0)
    cluster = AsyncioCluster(params, seed=0, time_scale=TIME_SCALE)
    service = ReplicatedLogService(cluster, primary=0, window=WINDOW)
    plane = AsyncioControlPlane(cluster, service).start()
    url = plane.server.url
    print(f"control plane: {url}  (GET /metrics, GET /status, POST /faults)")
    try:
        service.start()
        workload = OpenLoopWorkload(
            service.coordinator.submit, rate=RATE, total=TOTAL, seed=0
        )
        task = asyncio.create_task(workload.run())

        # --- scrape mid-run, like Prometheus would --------------------
        await asyncio.sleep(0.5)
        series = parse_prometheus_text(
            await asyncio.to_thread(_get, f"{url}/metrics")
        )
        print("\nmid-run scrape:")
        for node_id in cluster.correct_ids:
            label = f'{{node="{node_id}"}}'
            print(
                f"  node {node_id}: "
                f"arrivals={series['repro_arrivals_total'][label]:.0f} "
                f"live_timers={series['repro_live_timers'][label]:.0f} "
                f"live_slots={series['repro_live_slot_instances'][label]:.0f} "
                f"decisions={series['repro_decisions_total'][label]:.0f}"
            )

        # --- crash a replica through the fault endpoint ---------------
        reply = await asyncio.to_thread(
            _post_json,
            f"{url}/faults",
            [
                {"at_d": 0.0, "do": "crash", "nodes": [VICTIM],
                 "state_loss": True},
                {"at_d": 8.0, "do": "restart", "nodes": [VICTIM]},
            ],
        )
        print(f"\ninjected over HTTP: {reply} "
              f"(crash node {VICTIM} now, restart after 8d)")

        await task
        await service.drain(timeout_s=30.0)
        adopted = service.repair()
        await service.stop()
        report = service.report()

        plane.sample()  # refresh the snapshot: repair ran after the sampler
        status = json.loads(await asyncio.to_thread(_get, f"{url}/status"))
        print(f"\nfinal /status: faults_injected="
              f"{status['faults_injected']} "
              f"applied={status['service']['applied_per_replica']}")
    finally:
        await plane.close()
        cluster.close()

    print(f"\n  {report.commands_per_s:7.0f} commands/s decided, "
          f"{report.slots_decided} slots, {report.slots_aborted} aborts")
    print(f"  revenant node {VICTIM} adopted {adopted} slot outcomes via "
          f"f+1 vouching after its state-loss crash")
    assert report.identical_logs, "replica sequences diverged"
    assert report.commands_applied == TOTAL
    print(f"\nAll {len(report.digests)} replicas -- the crashed-and-"
          f"restarted one included -- applied the identical {TOTAL}-command "
          f"sequence (digest {next(iter(report.digests.values()))}). ✓")


if __name__ == "__main__":
    asyncio.run(main())
