#!/usr/bin/env bash
# Local pre-push gate: tier-1 tests + a ~10 second benchmark smoke run that
# regenerates BENCH_perf.json from the kernel micro-benchmarks, checks it is
# well-formed, and diffs the kernel throughput numbers against the committed
# baseline (fail on >20% regression).  Usage:  ./scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== runtime host conformance (Sim + Asyncio + Socket contract) =="
python -m pytest tests/test_runtime.py -q

echo
echo "== asyncio runtime smoke (n=4 f=1, byzantine mirror sender) =="
# d = 50 ms wall: loaded-machine scheduling stalls stay inside the windows.
python -m repro.cli run-async --n 4 --f 1 --time-scale 0.05

echo
echo "== socket runtime smoke (n=4 f=1, byzantine mirror sender, real UDP) =="
# One OS process per node exchanging authenticated UDP datagrams.  The hard
# timeout turns a hung backend into a fast failure instead of wedging CI.
# Node children self-reap when the parent dies (pipe EOF -> clean stop); the
# sleep gives them that window.  The pkill sweep matches *every* spawn-based
# multiprocessing child, so it only runs on dedicated CI runners ($CI set) --
# never on a developer machine, where it could kill unrelated work.
if ! timeout -k 10 120 python -m repro.cli run-socket --n 4 --f 1 --time-scale 0.05; then
    echo "socket runtime smoke FAILED (timed out or unclean exit)" >&2
    sleep 3
    if [ "${CI:-}" != "" ]; then
        pkill -f "from multiprocessing.spawn import spawn_main" 2>/dev/null || true
    fi
    exit 1
fi

echo
echo "== chaos smoke (SIGKILL one node mid-agreement; supervisor heals it) =="
# The self-stabilization claim live: full state loss, scrambled respawn,
# re-convergence on the agreed value, zero orphans.  Same hard-timeout and
# CI-only orphan-sweep discipline as the socket smoke above.
if ! timeout -k 10 120 python -m repro.cli chaos --n 4 --f 1 --time-scale 0.02; then
    echo "chaos smoke FAILED (timed out, no recovery, or unclean exit)" >&2
    sleep 3
    if [ "${CI:-}" != "" ]; then
        pkill -f "from multiprocessing.spawn import spawn_main" 2>/dev/null || true
    fi
    exit 1
fi

echo
echo "== service smoke (replicated command log, open-loop 2k commands) =="
# The pipelined slot-agreement service end-to-end on asyncio: exits
# non-zero unless every correct replica applied the identical sequence.
# Hard timeout + CI-only orphan sweep, same discipline as the smokes above
# (the asyncio backend is in-process, but belt and braces costs nothing).
if ! timeout -k 10 120 python -m repro.cli serve --backend asyncio \
        --n 4 --f 1 --commands 2000 --rate 1000 --time-scale 0.1; then
    echo "service smoke FAILED (timed out, divergence, or lost commands)" >&2
    sleep 3
    if [ "${CI:-}" != "" ]; then
        pkill -f "from multiprocessing.spawn import spawn_main" 2>/dev/null || true
    fi
    exit 1
fi

echo
echo "== live cluster control plane gate (/metrics scrape + injected kill + recovery) =="
# The control plane end to end, driven over HTTP like an operator would:
# scrape every node's Prometheus /metrics, POST a FaultScript that
# SIGKILLs a replica mid-workload, then require /status to report the
# supervised respawn and the run to converge to identical logs (which
# needs the f+1 log repair of the revenant).  Same hard-timeout and
# CI-only orphan-sweep discipline as the chaos smoke.
if ! timeout -k 10 180 python scripts/live_cluster_gate.py; then
    echo "live cluster gate FAILED (scrape, injection, recovery, or convergence)" >&2
    sleep 3
    if [ "${CI:-}" != "" ]; then
        pkill -f "from multiprocessing.spawn import spawn_main" 2>/dev/null || true
    fi
    exit 1
fi

echo
echo "== suite smoke (scenario matrix: 2 timelines x 2 seeds) =="
python -m repro.cli suite --preset smoke --workers 2

echo
echo "== shard equivalence smoke (suite smoke rows: serial vs shards=2) =="
python - <<'EOF'
import sys

from repro.harness.suite import SUITE_PRESETS, run_suite

serial = run_suite(SUITE_PRESETS["smoke"])
sharded = run_suite(SUITE_PRESETS["smoke"], shards=2, shard_transport="inline")
if sharded != serial:
    for before, after in zip(serial, sharded):
        if before != after:
            print(f"  serial : {before}", file=sys.stderr)
            print(f"  sharded: {after}", file=sys.stderr)
    sys.exit("sharded suite rows diverged from serial")
digests = sorted({row["digest"] for row in serial if "digest" in row})
print(
    f"ok: {len(serial)} rows bit-identical at shards=2 "
    f"(digests: {', '.join(digests) or '<none>'})"
)
EOF

# Stash the committed baseline before the bench run overwrites the file.
BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT
if git show HEAD:BENCH_perf.json > "$BASELINE" 2>/dev/null; then
    HAVE_BASELINE=1
else
    HAVE_BASELINE=0
    echo "(no committed BENCH_perf.json baseline; regression diff skipped)"
fi

echo
echo "== benchmark smoke (kernel + wire micro-benchmarks + asyncio/socket/chaos latency + shard scaling) =="
python -m pytest benchmarks/bench_perf_kernel.py benchmarks/bench_wire.py \
    benchmarks/bench_x4_asyncio_host.py \
    benchmarks/bench_x5_socket_host.py benchmarks/bench_x6_chaos.py \
    benchmarks/bench_shard_scaling.py benchmarks/bench_service.py \
    benchmarks/bench_obs.py \
    --benchmark-only -q

echo
echo "== validating BENCH_perf.json =="
python - <<'EOF'
import json
import sys
from pathlib import Path

path = Path("BENCH_perf.json")
if not path.exists():
    sys.exit("BENCH_perf.json was not produced")
data = json.loads(path.read_text())

for field in ("schema", "generated_at", "machine", "results"):
    if field not in data:
        sys.exit(f"BENCH_perf.json missing field {field!r}")

results = data["results"]
required = (
    "kernel_msglog_window_query",
    "kernel_evaluator_push",
    "kernel_broadcast_dispatch",
    "kernel_events",
    "e1_small_end_to_end",
    "e5_small_end_to_end",
    "e9_small_end_to_end",
    "wire_batch_pipeline",
    "wire_codec_encode",
    "wire_codec_decode",
    "wire_hmac_seal",
    "wire_coalesce",
    "wire_socket_pingpong",
    "x4_asyncio_host",
    "x5_socket_host",
    "x6_chaos",
    "shard_scaling",
    "service_smoke",
    "service_throughput",
    "obs_scrape",
)
missing = [name for name in required if name not in results]
if missing:
    sys.exit(f"BENCH_perf.json missing results: {missing}")

msglog = results["kernel_msglog_window_query"]["speedup_vs_reference"]
if msglog < 3.0:
    sys.exit(f"msglog fast path regressed: {msglog:.2f}x < 3x vs reference")
evaluator = results["kernel_evaluator_push"]["speedup_vs_reference"]
if evaluator < 3.0:
    sys.exit(f"push evaluator regressed: {evaluator:.2f}x < 3x vs reference")
wire = results["wire_batch_pipeline"]["speedup_vs_reference"]
if wire < 3.0:
    sys.exit(f"lean wire path regressed: {wire:.2f}x < 3x vs JSON reference")
if not results["shard_scaling"].get("digest_equal"):
    sys.exit("sharded kernel diverged from serial (shard_scaling.digest_equal)")

print(
    f"ok: {len(results)} results; msglog {msglog:.1f}x, "
    f"evaluator {evaluator:.1f}x, wire {wire:.1f}x vs reference"
)
EOF

if [ "$HAVE_BASELINE" = "1" ]; then
    echo
    echo "== kernel regression diff vs committed BENCH_perf.json =="
    BASELINE="$BASELINE" python - <<'EOF'
import json
import os
import sys
from pathlib import Path

ALLOWED_DROP = 0.20  # fail when a kernel throughput falls >20% below baseline
THROUGHPUT_KEYS = (
    "queries_per_s",
    "arrivals_per_s",
    "messages_per_s",
    "events_per_s",
    "frames_per_s",
    "seals_per_s",
    "mb_per_s",
)
# speedup_vs_reference ratios are machine-independent and always compared;
# absolute throughputs are only comparable against a baseline from the same
# kind of machine.  Provenance is judged PER ROW (results merge across
# partial runs, so a file's header machine block can differ from the
# machine a given row was actually recorded on).
RATIO_KEYS = ("speedup_vs_reference",)

old_doc = json.loads(Path(os.environ["BASELINE"]).read_text())
new_doc = json.loads(Path("BENCH_perf.json").read_text())
old, new = old_doc["results"], new_doc["results"]

def row_machine(result, doc):
    return result.get("machine", doc.get("machine"))

failures = []
cross_machine = []
for name, old_result in old.items():
    if old_result.get("kind") != "kernel" or name not in new:
        continue
    same_machine = row_machine(old_result, old_doc) == row_machine(new[name], new_doc)
    if not same_machine:
        cross_machine.append(name)
    keys = THROUGHPUT_KEYS + RATIO_KEYS if same_machine else RATIO_KEYS
    for key in keys:
        if key in old_result and key in new[name]:
            before, after = old_result[key], new[name][key]
            ratio = after / before if before else 1.0
            marker = "  FAIL" if ratio < 1.0 - ALLOWED_DROP else ""
            print(f"  {name}.{key}: {before:,.1f} -> {after:,.1f} ({ratio:.2f}x){marker}")
            if ratio < 1.0 - ALLOWED_DROP:
                failures.append(f"{name}.{key} dropped to {ratio:.2f}x of baseline")
if cross_machine:
    print(
        "  (baseline rows recorded on a different machine, ratio-only "
        "comparison: " + ", ".join(sorted(cross_machine)) + ")"
    )
if failures:
    sys.exit("kernel benchmark regression(s): " + "; ".join(failures))
print("no kernel regression beyond the 20% noise allowance")
EOF
fi

echo
echo "bench smoke passed"
