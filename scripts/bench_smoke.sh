#!/usr/bin/env bash
# Local pre-push gate: tier-1 tests + a ~10 second benchmark smoke run that
# regenerates BENCH_perf.json from the kernel micro-benchmarks and checks it
# is well-formed.  Usage:  ./scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== benchmark smoke (kernel micro-benchmarks) =="
python -m pytest benchmarks/bench_perf_kernel.py --benchmark-only -q

echo
echo "== validating BENCH_perf.json =="
python - <<'EOF'
import json
import sys
from pathlib import Path

path = Path("BENCH_perf.json")
if not path.exists():
    sys.exit("BENCH_perf.json was not produced")
data = json.loads(path.read_text())

for field in ("schema", "generated_at", "machine", "results"):
    if field not in data:
        sys.exit(f"BENCH_perf.json missing field {field!r}")

results = data["results"]
required = (
    "kernel_msglog_window_query",
    "kernel_broadcast_dispatch",
    "kernel_events",
    "e9_small_end_to_end",
)
missing = [name for name in required if name not in results]
if missing:
    sys.exit(f"BENCH_perf.json missing results: {missing}")

speedup = results["kernel_msglog_window_query"]["speedup_vs_reference"]
if speedup < 3.0:
    sys.exit(f"msglog fast path regressed: {speedup:.2f}x < 3x vs reference")

print(f"ok: {len(results)} results; msglog speedup {speedup:.1f}x vs reference")
EOF

echo
echo "bench smoke passed"
