#!/usr/bin/env python
"""CI gate: the live cluster control plane, end to end.

Drives ``repro.cli serve --backend socket --metrics --supervise`` the way
an operator would, over HTTP only:

1.  start the cluster and read the ``control: http://...`` line;
2.  poll ``/status`` until every node is alive and advertises a per-node
    metrics endpoint;
3.  scrape every node's ``/metrics`` and assert each required Prometheus
    series is present and parseable;
4.  ``POST /faults`` a ``FaultScript`` crash action that SIGKILLs one
    replica (full state loss) mid-workload;
5.  poll ``/status`` until the supervisor has respawned the victim
    (``restarts >= 1`` and alive again) and its fresh ``/metrics``
    endpoint reports the bumped incarnation;
6.  wait for the serve process itself: it must exit 0, which requires
    every replica -- the revenant included, via f+1 log repair -- to have
    applied the identical full command sequence.

Stdlib only; exits non-zero with a diagnostic on the first failed step.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.obs.metrics import REQUIRED_SERIES, parse_prometheus_text  # noqa: E402

#: Hard wall for the whole gate.
GATE_TIMEOUT_S = 150.0
COMMANDS = 1500
RATE = 300.0
PRIMARY = 0
VICTIM = 2  # a replica: killing the primary is documented as unhealable


def fail(step: str, detail: str, proc: subprocess.Popen) -> int:
    print(f"GATE FAIL [{step}]: {detail}", file=sys.stderr)
    proc.kill()
    tail = proc.stdout.read() if proc.stdout else ""
    if tail:
        print(f"--- serve output tail ---\n{tail[-2000:]}", file=sys.stderr)
    return 1


def http_json(url: str, payload=None, timeout: float = 5.0):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def http_text(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def main() -> int:
    deadline = time.monotonic() + GATE_TIMEOUT_S
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--backend", "socket", "--metrics", "--supervise",
            "--commands", str(COMMANDS), "--rate", str(RATE),
            "--primary", str(PRIMARY), "--time-scale", "0.05",
            "--seed", "7",
        ],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # Step 1: the control endpoint announces itself on stdout.
        control = None
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                return fail("announce", "serve exited before announcing", proc)
            if line.startswith("control: "):
                control = line.split(" ", 1)[1].strip()
                break
        if control is None:
            return fail("announce", "no 'control:' line before timeout", proc)
        print(f"control endpoint: {control}")

        # Step 2: every node alive with a metrics endpoint.
        status = None
        while time.monotonic() < deadline:
            try:
                status = http_json(f"{control}/status")
            except (urllib.error.URLError, OSError, ValueError):
                time.sleep(0.2)
                continue
            nodes = status.get("nodes", {})
            if status.get("started") and nodes and all(
                node["alive"] and node["metrics_url"]
                for node in nodes.values()
            ):
                break
            time.sleep(0.2)
        else:
            return fail("status", f"cluster never ready: {status}", proc)
        print(f"all {len(status['nodes'])} nodes alive with metrics endpoints")

        # Step 3: scrape every node, assert the required series.
        for node_id, node in sorted(status["nodes"].items()):
            text = http_text(node["metrics_url"])
            series = parse_prometheus_text(text)
            exposed = set(series)
            missing = [
                name for name in REQUIRED_SERIES
                if name not in exposed
                and f"{name}_count" not in exposed  # histogram samples
            ]
            if missing:
                return fail(
                    "scrape", f"node {node_id} missing series {missing}", proc
                )
        print(f"scraped {len(status['nodes'])} nodes: "
              f"all {len(REQUIRED_SERIES)} required series present")

        # Step 4: SIGKILL one replica through the fault endpoint.
        reply = http_json(
            f"{control}/faults",
            payload=[{"at_d": 0.0, "do": "crash", "nodes": [VICTIM],
                      "state_loss": True}],
        )
        if reply.get("accepted") != 1:
            return fail("inject", f"fault not accepted: {reply}", proc)
        print(f"injected crash(state_loss) for node {VICTIM}: {reply}")

        # Step 5: the supervisor respawns the victim; its new /metrics
        # endpoint reports the bumped incarnation.
        recovered = None
        while time.monotonic() < deadline:
            try:
                status = http_json(f"{control}/status")
            except (urllib.error.URLError, OSError, ValueError):
                time.sleep(0.2)
                continue
            node = status["nodes"].get(str(VICTIM), {})
            if node.get("alive") and node.get("restarts", 0) >= 1:
                recovered = node
                break
            time.sleep(0.2)
        if recovered is None:
            return fail("respawn", f"victim never respawned: {status}", proc)
        try:
            series = parse_prometheus_text(http_text(recovered["metrics_url"]))
            incarnation = series.get("repro_incarnation", {}).get(
                f'{{node="{VICTIM}"}}', 0.0
            )
        except (urllib.error.URLError, OSError, ValueError):
            incarnation = None  # respawn race; /status already proved it
        print(f"victim respawned: restarts={recovered['restarts']} "
              f"incarnation={incarnation}")

        # Step 6: the run itself must converge -- identical logs at every
        # replica, revenant included (exit 0 requires full repair).
        remaining = max(5.0, deadline - time.monotonic())
        try:
            out, _ = proc.communicate(timeout=remaining)
        except subprocess.TimeoutExpired:
            return fail("converge", "serve did not finish in time", proc)
        sys.stdout.write(out)
        if proc.returncode != 0:
            print(f"GATE FAIL [converge]: serve exited {proc.returncode}",
                  file=sys.stderr)
            return 1
        print("GATE OK: scrape + injected kill + supervised recovery + "
              "identical logs")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
