"""Deterministic, hierarchically split randomness.

Every stochastic choice in a run (message delays, Byzantine strategies,
corruption patterns, clock drift draws) must be reproducible from a single
scenario seed.  A :class:`RandomSource` wraps :class:`random.Random` and can
be *split* by name into independent child streams, so adding a new consumer
of randomness never perturbs the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A named, splittable pseudo-random stream."""

    def __init__(self, seed: int, path: str = "root") -> None:
        self._seed = int(seed)
        self._path = path
        self._rng = random.Random(self._derive(path))

    def _derive(self, path: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{path}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, name: str) -> "RandomSource":
        """Create an independent child stream identified by ``name``."""
        return RandomSource(self._seed, f"{self._path}/{name}")

    @property
    def path(self) -> str:
        """Hierarchical name of this stream (for diagnostics)."""
        return self._path

    # ------------------------------------------------------------------
    # Draws (thin, explicit wrappers around random.Random)
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(items, k)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy (the input is not mutated)."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._rng.gauss(mu, sigma)


__all__ = ["RandomSource"]
