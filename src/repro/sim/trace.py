"""Structured run traces.

The property checkers (:mod:`repro.harness.properties`) validate the paper's
theorems against *what actually happened* in a run, so every semantically
meaningful occurrence -- sends, deliveries, I-accepts, msgd accepts,
decisions, aborts, corruptions, coherence transitions -- is recorded here as
a :class:`TraceEvent` carrying both real time and the acting node's local
time.

Cost discipline
---------------
Tracing sits on the hottest paths of the simulator (one event per message
copy), so:

* :class:`TraceEvent` is a slotted dataclass, and events without detail all
  share one immutable-by-convention empty dict instead of allocating one
  each;
* hot call sites in :mod:`repro.core` / :mod:`repro.node` / :mod:`repro.net`
  guard on ``Tracer.enabled`` *before* building f-strings and keyword
  payloads, making disabled tracing genuinely zero-cost there (such guarded
  kinds are consequently not per-kind counted while disabled; direct
  :meth:`Tracer.record` calls still count, and :meth:`Tracer.bump` offers
  the count-only path).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

# The always-truthy stand-in tracer lives with the sans-I/O host API (the
# protocol core needs it without importing the simulator); re-exported here
# for backwards compatibility.
from repro.runtime.api import ALWAYS_ENABLED

_EMPTY_DETAIL: dict[str, Any] = {}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One record in the run trace.

    Attributes
    ----------
    real_time:
        Real time of the occurrence (the proofs' ``rt(.)`` axis).
    node:
        Identifier of the acting node, or ``None`` for network/scenario-level
        events.
    kind:
        Event category, e.g. ``"send"``, ``"deliver"``, ``"i_accept"``,
        ``"decide"``, ``"abort"``, ``"corrupt"``, ``"coherent"``.
    detail:
        Free-form payload; keys are event-kind specific but stable within a
        kind (the checkers rely on them).  Events without detail share one
        empty dict -- treat it as read-only.
    local_time:
        Acting node's local clock reading, when applicable.
    """

    real_time: float
    node: Optional[int]
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)
    local_time: Optional[float] = None




class Tracer:
    """Collects :class:`TraceEvent` records and answers queries over them."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        real_time: float,
        node: Optional[int],
        kind: str,
        local_time: Optional[float] = None,
        **detail: Any,
    ) -> None:
        """Append an event (count-only when tracing is disabled)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(
                real_time,
                node,
                kind,
                detail if detail else _EMPTY_DETAIL,
                local_time,
            )
        )

    def bump(self, kind: str) -> None:
        """Count an occurrence without materializing an event.

        The count-only fast path for guarded hot call sites that still want
        per-kind totals while full tracing is disabled.
        """
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def bump_many(self, kind: str, count: int) -> None:
        """Count ``count`` occurrences of one kind at once (batched bump)."""
        self._counts[kind] = self._counts.get(kind, 0) + count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """All recorded events in execution order."""
        return self._events

    def count(self, kind: str) -> int:
        """Number of events of the given kind (counted even when disabled)."""
        return self._counts.get(kind, 0)

    def counts(self) -> dict[str, int]:
        """Per-kind totals (a copy; counted even while tracing is disabled)."""
        return dict(self._counts)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [ev for ev in self._events if ev.kind == kind]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All events satisfying an arbitrary predicate."""
        return [ev for ev in self._events if predicate(ev)]

    def by_node(self, node: int) -> list[TraceEvent]:
        """All events attributed to one node."""
        return [ev for ev in self._events if ev.node == node]

    def first(
        self, kind: str, predicate: Optional[Callable[[TraceEvent], bool]] = None
    ) -> Optional[TraceEvent]:
        """Earliest event of a kind (optionally further filtered)."""
        for ev in self._events:
            if ev.kind == kind and (predicate is None or predicate(ev)):
                return ev
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


def trace_digest(tracer: Tracer) -> str:
    """A stable hex digest of a recorded trace.

    Two runs produce the same digest iff they recorded the same events in
    the same order with the same payloads -- ``repr`` of floats and of the
    frozen message dataclasses is deterministic, so this is a faithful
    replay check across processes, worker counts and interpreter restarts.
    Per-kind counts are folded in as well so the zero-cost disabled-tracing
    path still yields a meaningful (count-only) digest.
    """
    hasher = hashlib.sha256()
    for ev in tracer.events:
        hasher.update(
            f"{ev.real_time!r}|{ev.node!r}|{ev.kind}|"
            f"{sorted(ev.detail.items())!r}|{ev.local_time!r}\n".encode()
        )
    counts = tracer.counts()
    for kind in sorted(counts):
        hasher.update(f"#{kind}={counts[kind]}\n".encode())
    return hasher.hexdigest()


__all__ = ["ALWAYS_ENABLED", "TraceEvent", "Tracer", "trace_digest"]
