"""Structured run traces.

The property checkers (:mod:`repro.harness.properties`) validate the paper's
theorems against *what actually happened* in a run, so every semantically
meaningful occurrence -- sends, deliveries, I-accepts, msgd accepts,
decisions, aborts, corruptions, coherence transitions -- is recorded here as
a :class:`TraceEvent` carrying both real time and the acting node's local
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One record in the run trace.

    Attributes
    ----------
    real_time:
        Real time of the occurrence (the proofs' ``rt(.)`` axis).
    node:
        Identifier of the acting node, or ``None`` for network/scenario-level
        events.
    kind:
        Event category, e.g. ``"send"``, ``"deliver"``, ``"i_accept"``,
        ``"decide"``, ``"abort"``, ``"corrupt"``, ``"coherent"``.
    detail:
        Free-form payload; keys are event-kind specific but stable within a
        kind (the checkers rely on them).
    local_time:
        Acting node's local clock reading, when applicable.
    """

    real_time: float
    node: Optional[int]
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)
    local_time: Optional[float] = None


class Tracer:
    """Collects :class:`TraceEvent` records and answers queries over them."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        real_time: float,
        node: Optional[int],
        kind: str,
        local_time: Optional[float] = None,
        **detail: Any,
    ) -> None:
        """Append an event (cheap no-op when tracing is disabled)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(
                real_time=real_time,
                node=node,
                kind=kind,
                detail=detail,
                local_time=local_time,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """All recorded events in execution order."""
        return self._events

    def count(self, kind: str) -> int:
        """Number of events of the given kind (counted even when disabled)."""
        return self._counts.get(kind, 0)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [ev for ev in self._events if ev.kind == kind]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All events satisfying an arbitrary predicate."""
        return [ev for ev in self._events if predicate(ev)]

    def by_node(self, node: int) -> list[TraceEvent]:
        """All events attributed to one node."""
        return [ev for ev in self._events if ev.node == node]

    def first(
        self, kind: str, predicate: Optional[Callable[[TraceEvent], bool]] = None
    ) -> Optional[TraceEvent]:
        """Earliest event of a kind (optionally further filtered)."""
        for ev in self._events:
            if ev.kind == kind and (predicate is None or predicate(ev)):
                return ev
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


__all__ = ["TraceEvent", "Tracer"]
