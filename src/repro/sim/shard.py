"""Sharded execution of the discrete-event kernel.

One big run saturates a single core: every message copy is one heap event on
one timeline.  This module partitions a cluster's nodes into *shard groups*,
runs each group's events on an independent :class:`KeyedSimulator` (its own
process by default), and exchanges cross-shard message deliveries through a
sequenced, conservative synchronization boundary -- while reproducing the
serial kernel's output **bit for bit**.

The conservative-sync invariant
-------------------------------
Let ``L`` be the *lookahead*: a lower bound on the transit delay of every
delivered message copy, taken as the minimum of
:meth:`~repro.net.delivery.DeliveryPolicy.min_delay` over the initial
delivery policy and every policy the run can install later (driver
``set_policy`` calls and fault-timeline ``SwapPolicy`` actions).  Each
synchronization round, the coordinator computes the global horizon
``H = min over shards of next-local-event time`` and grants every shard the
right to execute events with ``time < H + L``.  Safety: any message sent by
an event executing at ``t >= H`` arrives no earlier than ``t + L >= H + L``,
so no cross-shard arrival can land inside the granted window after it was
granted.  Liveness: the shard holding the horizon executes at least one
event per round, and the global floor advances by at least ``L`` per round.
The run's final round uses the inclusive bound ``T_end`` directly once
``H + L > T_end`` -- by the same argument every send from that round arrives
strictly after ``T_end``, so one inclusive sweep suffices.  ``L == 0`` (e.g.
:class:`~repro.net.delivery.IncoherentDelivery`) is rejected for more than
one shard: a zero-lookahead conservative simulation cannot advance.

Bit-identical tie-breaking
--------------------------
The serial kernel orders equal-time events by a global scheduling sequence
number.  A shard cannot know peers' sequence numbers, so
:class:`KeyedSimulator` replaces the integer with a *rank*: a tuple computed
entirely from locally-replicated state whose lexicographic order provably
equals the serial kernel's scheduling order at equal fire times.  Ranks are
epoch-based -- ``(0, s)`` for events scheduled during cluster construction
(``s`` a construction counter, identical everywhere because every shard
builds the *full* cluster), ``(2b+1, c, i)`` for the ``i``-th event issued
by control operation ``c`` at the boundary before driver run ``b+1``, and
``(2b+2, t_parent, rank_parent, i)`` for the ``i``-th child scheduled by the
event ``(t_parent, rank_parent)`` during run ``b+1``.  Odd/even epoch parity
keeps tuple shapes type-consistent under comparison, and a straightforward
induction over scheduling order shows rank order == serial seq order at
equal times.  Events owned by node ``v`` are enqueued only on ``v``'s home
shard (``v % shard_count``); rank counters still advance identically on
every shard, so a cross-shard delivery ships its ``(time, rank)`` key with
the payload and slots into the receiving heap exactly where the serial
kernel would have run it.

Randomness is already placement-independent: per-node streams are keyed by
node id (``rand.split(f"host/{i}")`` etc.) and the network fabric draws
per-sender (:mod:`repro.net.network`), so no draw depends on which shard
executes what.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import weakref
from dataclasses import replace
from functools import partial
from typing import Any, Callable, Optional, Sequence

from repro.net.delivery import UniformDelay
from repro.net.network import Network
from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import TraceEvent, Tracer

_EMPTY_DETAIL: dict[str, Any] = {}

_MODE_SETUP = 0
_MODE_CONTROL = 1
_MODE_RUN = 2


class ShardError(RuntimeError):
    """Raised for invalid uses of (or failures inside) the sharded kernel."""


# ---------------------------------------------------------------------------
# The keyed simulator: one shard's event loop
# ---------------------------------------------------------------------------
class KeyedSimulator(Simulator):
    """A :class:`Simulator` whose tie-break keys are placement-independent.

    Heap entries are ``(time, rank, action, handle, owner)``; ``rank`` is the
    epoch tuple described in the module docstring (a *total* tie-break, so
    actions/handles are never compared), ``owner`` the owning node id or
    ``None`` for cluster-global events.  Scheduling always allocates a rank
    (counters must advance identically on every shard) but only pushes the
    event when the owner lives on this shard; remote-owned scheduling returns
    an inert, already-dead handle.
    """

    def __init__(
        self, shard_index: int = 0, shard_count: int = 1, start_time: float = 0.0
    ) -> None:
        super().__init__(start_time)
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.outbox: list[tuple] = []
        self._mode = _MODE_SETUP
        self._setup_seq = 0
        self._run_index = 0  # completed driver runs
        self._control_seq = -1  # current control operation (pre-incremented)
        self._ctx_time = 0.0
        self._ctx_rank: tuple = ()
        self._child_idx = 0
        self._owner: Optional[int] = None
        self._trace_sub = 0

    # ------------------------------------------------------------------
    # Rank allocation
    # ------------------------------------------------------------------
    def _alloc_rank(self) -> tuple:
        mode = self._mode
        if mode == _MODE_RUN:
            idx = self._child_idx
            self._child_idx = idx + 1
            return (2 * self._run_index + 2, self._ctx_time, self._ctx_rank, idx)
        if mode == _MODE_CONTROL:
            idx = self._child_idx
            self._child_idx = idx + 1
            return (2 * self._run_index + 1, self._control_seq, idx)
        seq = self._setup_seq
        self._setup_seq = seq + 1
        return (0, seq)

    def _is_local(self, owner: Optional[int]) -> bool:
        return owner is None or owner % self.shard_count == self.shard_index

    # ------------------------------------------------------------------
    # Scheduling overrides
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        rank = self._alloc_rank()
        owner = self._owner
        if owner is None or owner % self.shard_count == self.shard_index:
            handle = EventHandle(time, tag, _sim=self)
            heapq.heappush(self._queue, (time, rank, action, handle, owner))
            self._live_events += 1
            return handle
        # Remote-owned: the home shard holds the live event; this copy is a
        # dead handle so local cancel() calls are harmless no-ops.
        return EventHandle(time, tag, _sim=None)

    def schedule_in(
        self, delay: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, tag)

    def schedule_fire(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        rank = self._alloc_rank()
        owner = self._owner
        if owner is None or owner % self.shard_count == self.shard_index:
            heapq.heappush(
                self._queue, (self._now + delay, rank, action, None, owner)
            )
            self._live_events += 1

    def schedule_delivery_local(
        self, delay: float, action: Callable[[], None], owner: int
    ) -> None:
        """Fire-and-forget delivery to a node homed on this shard."""
        rank = self._alloc_rank()
        heapq.heappush(self._queue, (self._now + delay, rank, action, None, owner))
        self._live_events += 1

    def export_delivery(self, delay: float, item: tuple) -> None:
        """Allocate a rank for a remote delivery and stage it in the outbox."""
        rank = self._alloc_rank()
        self.outbox.append((self._now + delay, rank) + item)

    def push_external(
        self, time: float, rank: tuple, action: Callable[[], None], owner: int
    ) -> None:
        """Inject a cross-shard arrival under its sender-allocated rank."""
        heapq.heappush(self._queue, (time, rank, action, None, owner))
        self._live_events += 1

    # ------------------------------------------------------------------
    # Ownership scoping
    # ------------------------------------------------------------------
    def owner_scope(self, owner: Optional[int]) -> "_OwnerScope":
        return _OwnerScope(self, owner)

    def node_scope(self, owner: Optional[int], pos: int) -> "_NodeScope":
        if self._mode != _MODE_RUN:
            raise ShardError(
                "node_scope is only valid while a scheduled event executes "
                "(fault-timeline firings)"
            )
        return _NodeScope(self, owner, pos)

    # ------------------------------------------------------------------
    # Boundary protocol (driven by the shard worker)
    # ------------------------------------------------------------------
    def begin_control(self, owner: Optional[int] = None) -> None:
        """Start one control operation; advances the global control counter."""
        self._mode = _MODE_CONTROL
        self._control_seq += 1
        self._child_idx = 0
        self._owner = owner
        self._trace_sub = 0

    def finish_run(self, until: float) -> None:
        """Close a driver run: advance the clock and the run epoch."""
        if self._now < until:
            self._now = until
        self._run_index += 1
        self._owner = None

    def run_round_strict(self, bound: float) -> int:
        """Execute events with ``time < bound`` (conservative mid-run round).

        Unlike :meth:`run_until` the clock is *not* advanced to the bound:
        later rounds may still inject cross-shard arrivals below it.
        """
        return self._run_round(bound, None, inclusive=False)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:  # pragma: no cover - guard
        raise ShardError("step() is not supported on a sharded simulator")

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        return self._run_round(until, max_events, inclusive=True)

    def _run_round(
        self, until: Optional[float], max_events: Optional[int], inclusive: bool
    ) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        queue = self._queue
        try:
            while queue:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                head = queue[0]
                handle = head[3]
                if handle is not None and handle.cancelled:
                    heapq.heappop(queue)
                    continue
                time = head[0]
                if until is not None and (
                    time > until if inclusive else time >= until
                ):
                    break
                heapq.heappop(queue)
                if handle is not None:
                    handle._sim = None
                self._live_events -= 1
                self._now = time
                self._events_executed += 1
                executed += 1
                # Execution context: children of this event rank under it.
                self._mode = _MODE_RUN
                self._ctx_time = time
                self._ctx_rank = head[1]
                self._child_idx = 0
                self._owner = head[4]
                self._trace_sub = 0
                head[2]()
        finally:
            self._running = False
        return executed

    # ------------------------------------------------------------------
    # Trace merge keys
    # ------------------------------------------------------------------
    def merge_key(self) -> tuple:
        """A cross-shard sort key reproducing serial trace-record order."""
        sub = self._trace_sub
        self._trace_sub = sub + 1
        mode = self._mode
        if mode == _MODE_RUN:
            return (self._now, self._ctx_rank, sub)
        if mode == _MODE_CONTROL:
            return (self._now, (2 * self._run_index + 1, self._control_seq), sub)
        owner = self._owner
        return (self._now, (-1, -1 if owner is None else owner), sub)


class _OwnerScope:
    """Attribute events scheduled inside the scope to one node (setup path)."""

    __slots__ = ("_sim", "_owner", "_saved")

    def __init__(self, sim: KeyedSimulator, owner: Optional[int]) -> None:
        self._sim = sim
        self._owner = owner

    def __enter__(self) -> None:
        sim = self._sim
        self._saved = (sim._owner, sim._trace_sub)
        sim._owner = self._owner
        sim._trace_sub = 0

    def __exit__(self, *exc_info: object) -> None:
        self._sim._owner, self._sim._trace_sub = self._saved


class _NodeScope:
    """Per-node rank sub-context for replicated multi-node timeline actions.

    The effective parent rank becomes ``rank_firing + (pos,)`` -- appended,
    not nested, so the first tuple element stays an int and rank comparisons
    stay type-consistent.  Child counters restart per sub-context, making the
    ranks of a node's effects independent of how many other nodes the action
    touched first on some other shard.
    """

    __slots__ = ("_sim", "_owner", "_pos", "_saved")

    def __init__(self, sim: KeyedSimulator, owner: Optional[int], pos: int) -> None:
        self._sim = sim
        self._owner = owner
        self._pos = pos

    def __enter__(self) -> None:
        sim = self._sim
        self._saved = (sim._owner, sim._ctx_rank, sim._child_idx, sim._trace_sub)
        sim._owner = self._owner
        sim._ctx_rank = sim._ctx_rank + (self._pos,)
        sim._child_idx = 0
        sim._trace_sub = 0
    def __exit__(self, *exc_info: object) -> None:
        sim = self._sim
        (sim._owner, sim._ctx_rank, sim._child_idx, sim._trace_sub) = self._saved


# ---------------------------------------------------------------------------
# Shard-local network fabric and tracer
# ---------------------------------------------------------------------------
class ShardNetwork(Network):
    """Network fabric for one shard.

    Deliveries to locally-homed receivers go straight onto this shard's
    heap (owned by the receiver, so the receiver's protocol reactions stay
    on its home shard); deliveries to remote receivers consume a rank and
    are staged in the simulator's outbox for the coordinator to route.
    """

    def _deliver_later(
        self,
        sender: int,
        receiver: int,
        payload: object,
        sent_at: float,
        delay: float,
    ) -> None:
        sim: KeyedSimulator = self._sim  # type: ignore[assignment]
        if receiver % sim.shard_count == sim.shard_index:
            sim.schedule_delivery_local(
                delay,
                partial(self._deliver_now, sender, receiver, payload, sent_at),
                receiver,
            )
        else:
            sim.export_delivery(delay, (sender, receiver, payload, sent_at))


class ShardTracer(Tracer):
    """Tracer for one shard: exactly-once records plus merge keys.

    Replicated execution contexts (cluster construction, timeline firings)
    run on *every* shard, so records are filtered to fire exactly once
    globally: records inside a node-owned scope only on the owner's home
    shard, scenario-level records (and anything without an owner) only on
    shard 0.  Per-kind counts follow the same rule and are summed by the
    coordinator; full events carry a :meth:`KeyedSimulator.merge_key` so the
    coordinator can splice shard traces back into serial record order.
    """

    def __init__(self, enabled: bool, sim: KeyedSimulator) -> None:
        super().__init__(enabled)
        self._ksim = sim
        self._keys: list[tuple] = []

    def record(
        self,
        real_time: float,
        node: Optional[int],
        kind: str,
        local_time: Optional[float] = None,
        **detail: Any,
    ) -> None:
        sim = self._ksim
        owner = sim._owner
        if owner is not None:
            if owner % sim.shard_count != sim.shard_index:
                return
        elif sim.shard_index != 0:
            return
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if not self.enabled:
            return
        self._keys.append(sim.merge_key())
        self._events.append(
            TraceEvent(
                real_time,
                node,
                kind,
                detail if detail else _EMPTY_DETAIL,
                local_time,
            )
        )


# ---------------------------------------------------------------------------
# Shard worker: one full cluster build, node-filtered execution
# ---------------------------------------------------------------------------
class _ShardState:
    """One shard's world: keyed simulator + a full (but filtered) cluster.

    Every shard builds the *entire* cluster -- identical construction order
    is what makes setup ranks and per-node randomness line up across shards
    -- but only events owned by locally-homed nodes ever enter this heap.
    """

    def __init__(self, config: Any, shard_index: int, shard_count: int) -> None:
        # Lazy import: the harness layer imports this module.
        from repro.harness.scenario import Cluster

        self.sim = KeyedSimulator(shard_index, shard_count)
        self.tracer = ShardTracer(config.trace, self.sim)
        self.cluster = Cluster(
            config, _sim=self.sim, _tracer=self.tracer, _net_cls=ShardNetwork
        )

    # -- command dispatch ----------------------------------------------
    def handle(self, cmd: tuple) -> tuple:
        op = cmd[0]
        sim = self.sim
        if op == "step":
            _, bound, inclusive, inbox = cmd
            if inbox:
                self._inject(inbox)
            if inclusive:
                sim.run_until(bound)
            else:
                sim.run_round_strict(bound)
            return self._reply(None)
        if op == "control":
            return self._reply([self._control_op(c) for c in cmd[1]])
        if op == "finish_run":
            sim.finish_run(cmd[1])
            return self._reply(None)
        if op == "query":
            return self._reply(self._query(cmd[1], cmd[2:]))
        if op == "ping":
            return self._reply(None)
        raise ShardError(f"unknown shard command {op!r}")

    def _reply(self, payload: Any) -> tuple:
        sim = self.sim
        outbox = sim.outbox
        if outbox:
            sim.outbox = []
        return ("ok", payload, outbox, sim.next_event_time())

    def _inject(self, inbox: Sequence[tuple]) -> None:
        sim = self.sim
        deliver = self.cluster.net._deliver_now
        for time, rank, sender, receiver, payload, sent_at in inbox:
            sim.push_external(
                time, rank, partial(deliver, sender, receiver, payload, sent_at),
                receiver,
            )

    # -- control operations (same order on every shard) ----------------
    def _control_op(self, c: tuple) -> Any:
        sim = self.sim
        cluster = self.cluster
        op = c[0]
        if op == "propose":
            _, general, value = c
            sim.begin_control(owner=general)
            if general % sim.shard_count == sim.shard_index:
                return cluster.propose(general, value)
            return None
        if op == "set_policy":
            _, spec, record = c
            sim.begin_control()
            policy = self._resolve_policy(spec)
            if record:
                cluster.set_policy(policy)
            else:
                cluster.net.set_policy(policy)
            return None
        if op == "install_script":
            _, script, start_real = c
            sim.begin_control()
            script.install(cluster, start_real)
            return None
        if op == "mark_coherent":
            sim.begin_control()
            cluster.mark_coherent()
            return None
        if op == "net_partition":
            sim.begin_control()
            cluster.net.partition(c[1])
            return None
        if op == "net_heal":
            sim.begin_control()
            cluster.net.heal(c[1])
            return None
        raise ShardError(f"unknown control operation {op!r}")

    def _resolve_policy(self, spec: tuple) -> Any:
        kind, value = spec
        if kind == "obj":
            return value
        from repro.faults.timeline import build_policy

        return build_policy(value, self.cluster)

    # -- queries (read-only; no counters advance) ----------------------
    def _query(self, what: str, args: tuple) -> Any:
        sim = self.sim
        cluster = self.cluster
        if what == "decisions":
            (general,) = args
            count, index = sim.shard_count, sim.shard_index
            return {
                node_id: list(cluster.nodes[node_id].decisions_for(general))
                for node_id in cluster.correct_ids
                if node_id % count == index
            }
        if what == "net":
            net = cluster.net
            return (
                net.sent_count,
                net.delivered_count,
                net.dropped_partition,
                net.dropped_policy,
            )
        if what == "trace":
            tracer = self.tracer
            return (tracer.counts(), list(tracer._keys), list(tracer._events))
        if what == "events_executed":
            return sim.events_executed
        raise ShardError(f"unknown shard query {what!r}")


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
class _InlineShard:
    """In-process transport: shard states stepped synchronously.

    Same protocol and same bit-identical results as the process transport
    (determinism never depends on process boundaries), minus pickling --
    the cheap path for tests, debugging, and single-core machines.
    """

    def __init__(self, config: Any, shard_index: int, shard_count: int) -> None:
        self._state = _ShardState(config, shard_index, shard_count)
        self._reply: Optional[tuple] = None

    def post(self, cmd: tuple) -> None:
        self._reply = self._state.handle(cmd)

    def wait(self) -> tuple:
        reply, self._reply = self._reply, None
        assert reply is not None, "wait() without a posted command"
        return reply

    def close(self) -> None:
        pass


def _shard_main(conn: Any, config: Any, shard_index: int, shard_count: int) -> None:
    try:
        state = _ShardState(config, shard_index, shard_count)
        conn.send(("ok", None, [], state.sim.next_event_time()))
    except BaseException as exc:  # startup failure must reach the parent
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            return
        if cmd[0] == "shutdown":
            return
        try:
            conn.send(state.handle(cmd))
        except BaseException as exc:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))


class _ProcessShard:
    """One shard event loop in its own OS process, driven over a pipe."""

    def __init__(self, config: Any, shard_index: int, shard_count: int) -> None:
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._proc: Optional[Any] = ctx.Process(
            target=_shard_main,
            args=(child_conn, config, shard_index, shard_count),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._recv()  # startup ack (or startup failure)

    def post(self, cmd: tuple) -> None:
        self._conn.send(cmd)

    def wait(self) -> tuple:
        return self._recv()

    def _recv(self) -> tuple:
        try:
            reply = self._conn.recv()
        except EOFError:
            raise ShardError("shard worker died (pipe closed)") from None
        if reply[0] == "err":
            raise ShardError(f"shard worker failed: {reply[1]}")
        return reply

    def close(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        try:
            self._conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - hang safety net
            proc.terminate()
            proc.join(timeout=5)


def _close_all(shards: list) -> None:
    for shard in shards:
        try:
            shard.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


_TRANSPORTS = {"process": _ProcessShard, "inline": _InlineShard}


# ---------------------------------------------------------------------------
# The coordinator / driving facade
# ---------------------------------------------------------------------------
class _FacadeSim:
    """Parent-side stand-in for ``cluster.sim`` (clock bookkeeping only)."""

    def __init__(self, owner: "ShardedCluster") -> None:
        self._owner = owner

    @property
    def now(self) -> float:
        return self._owner._now


class _FacadeNet:
    """Parent-side stand-in for ``cluster.net``: counters and topology ops."""

    def __init__(self, owner: "ShardedCluster") -> None:
        self._owner = owner

    def _counts(self) -> list[int]:
        owner = self._owner
        if owner._net_cache is None:
            totals = [0, 0, 0, 0]
            for counts in owner._broadcast(("query", "net")):
                for i in range(4):
                    totals[i] += counts[i]
            owner._net_cache = totals
        return owner._net_cache

    @property
    def sent_count(self) -> int:
        return self._counts()[0]

    @property
    def delivered_count(self) -> int:
        return self._counts()[1]

    @property
    def dropped_partition(self) -> int:
        return self._counts()[2]

    @property
    def dropped_policy(self) -> int:
        return self._counts()[3]

    @property
    def dropped_count(self) -> int:
        counts = self._counts()
        return counts[2] + counts[3]

    @property
    def policy(self) -> Any:
        raise ShardError(
            "the live delivery policy is shard-local state; drive it via "
            "set_policy()/set_policy_spec()"
        )

    def set_policy(self, policy: Any) -> None:
        owner = self._owner
        owner._register_policy(policy)
        owner._control(("set_policy", ("obj", policy), False))

    def set_policy_spec(self, spec: Any) -> None:
        """Install a *named* policy, resolved shard-side against each shard's
        live cluster (the route for policies that bind shard-local state,
        e.g. bursty delays reading ``sim.now``)."""
        from repro.faults.timeline import build_policy

        owner = self._owner
        owner._register_policy(build_policy(spec, owner))
        owner._control(("set_policy", ("name", spec), False))

    def partition(self, node_id: int) -> None:
        self._owner._control(("net_partition", node_id))

    def heal(self, node_id: int) -> None:
        self._owner._control(("net_heal", node_id))


class ShardedCluster:
    """Drop-in driving facade for a sharded run.

    Exposes the :class:`~repro.harness.scenario.Cluster` surface the
    experiment drivers and the suite runner rely on -- ``params``,
    ``config``, ``sim.now``, ``propose``, ``run_for``, ``set_policy``,
    ``mark_coherent``, ``decisions``/``latest_decision_per_node``,
    ``correct_ids``/``byzantine_ids``, network counters, and a merged
    ``tracer`` -- while the actual nodes live inside shard workers.  Direct
    node access (``nodes``, ``protocol_node``...) raises :class:`ShardError`
    with guidance, as do features whose semantics cannot be reproduced
    across shards (``Havoc`` timelines, ``Restart(scramble=True)``,
    ``max_events`` budgets, zero-lookahead policies with more than one
    shard).
    """

    sharded = True

    def __init__(
        self,
        config: Any,
        shards: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> None:
        params = config.params
        requested = int(shards if shards is not None else (config.shards or 1))
        if requested < 1:
            raise ShardError(f"shards must be >= 1, got {requested}")
        transport = transport or getattr(config, "shard_transport", "process")
        try:
            transport_cls = _TRANSPORTS[transport]
        except KeyError:
            known = ", ".join(sorted(_TRANSPORTS))
            raise ShardError(
                f"unknown shard transport {transport!r} (known: {known})"
            ) from None
        if (
            len(config.byzantine) > params.f
            and not config.allow_extra_byzantine
        ):
            raise ValueError(
                f"{len(config.byzantine)} Byzantine nodes exceeds f={params.f}"
            )
        self.config = config
        self.params = params
        self.requested_shards = requested
        self.shard_count = min(requested, params.n)
        self.shard_transport = transport
        self.rng = RandomSource(config.seed)
        self.byzantine_ids = [i for i in range(params.n) if i in config.byzantine]
        self.correct_ids = [
            i for i in range(params.n) if i not in config.byzantine
        ]
        self._policy_pool: list[Any] = [
            config.policy
            or UniformDelay(0.1 * params.delta, params.delta)
        ]
        self._now = 0.0
        self.sim = _FacadeSim(self)
        self.net = _FacadeNet(self)
        self._pending: list[list[tuple]] = [[] for _ in range(self.shard_count)]
        self._next: list[Optional[float]] = [None] * self.shard_count
        self._decision_cache: dict[int, dict] = {}
        self._net_cache: Optional[list[int]] = None
        self._trace_cache: Optional[Tracer] = None
        worker_config = replace(config, shards=None)
        shard_list: list[Any] = []
        try:
            for index in range(self.shard_count):
                shard_list.append(
                    transport_cls(worker_config, index, self.shard_count)
                )
        except BaseException:
            _close_all(shard_list)
            raise
        self._shards = shard_list
        self._finalizer = weakref.finalize(self, _close_all, list(shard_list))
        self._broadcast(("ping",))

    # ------------------------------------------------------------------
    # Coordinator plumbing
    # ------------------------------------------------------------------
    def _broadcast(self, cmd: tuple) -> list:
        for shard in self._shards:
            shard.post(cmd)
        payloads = []
        for index, shard in enumerate(self._shards):
            _tag, payload, outbox, next_time = shard.wait()
            self._next[index] = next_time
            if outbox:
                self._route(outbox)
            payloads.append(payload)
        return payloads

    def _route(self, outbox: Sequence[tuple]) -> None:
        pending = self._pending
        count = self.shard_count
        for item in outbox:
            pending[item[3] % count].append(item)

    def _control(self, *ops: tuple) -> list:
        self._invalidate()
        return self._broadcast(("control", list(ops)))

    def _invalidate(self) -> None:
        self._decision_cache.clear()
        self._net_cache = None
        self._trace_cache = None

    def _register_policy(self, policy: Any) -> None:
        self._policy_pool.append(policy)

    def _horizon(self) -> Optional[float]:
        horizon = None
        for index in range(self.shard_count):
            t = self._next[index]
            pending = self._pending[index]
            if pending:
                arrival = min(item[0] for item in pending)
                t = arrival if t is None or arrival < t else t
            if t is not None and (horizon is None or t < horizon):
                horizon = t
        return horizon

    def _step(self, bound: float, inclusive: bool) -> None:
        inboxes = self._pending
        self._pending = [[] for _ in range(self.shard_count)]
        for index, shard in enumerate(self._shards):
            shard.post(("step", bound, inclusive, inboxes[index]))
        for index, shard in enumerate(self._shards):
            _tag, _payload, outbox, next_time = shard.wait()
            self._next[index] = next_time
            if outbox:
                self._route(outbox)

    # ------------------------------------------------------------------
    # Driving the run
    # ------------------------------------------------------------------
    def propose(self, general: int, value: Any) -> bool:
        if general in self.config.byzantine:
            raise TypeError(f"node {general} is not a correct protocol node")
        results = self._control(("propose", general, value))
        return results[general % self.shard_count][0]

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        if max_events is not None:
            raise ShardError(
                "max_events budgets are serial-kernel only (a global event "
                "budget has no well-defined meaning across shards)"
            )
        self.run_until(self._now + duration)

    def run_until(self, until: float) -> None:
        self._invalidate()
        lookahead = min(policy.min_delay() for policy in self._policy_pool)
        single = self.shard_count == 1
        while True:
            horizon = self._horizon()
            if horizon is None or horizon > until:
                break
            if single:
                self._step(until, True)
                break
            if lookahead <= 0.0:
                raise ShardError(
                    "sharded execution requires a positive cross-shard "
                    "lookahead, but a delivery policy in this run has "
                    "min_delay() == 0.0; run with shards=1 instead"
                )
            grant = horizon + lookahead
            if grant <= until:
                self._step(grant, False)
            else:
                self._step(until, True)
                break
        self._broadcast(("finish_run", until))
        self._now = until

    def set_policy(self, policy: Any) -> None:
        self._register_policy(policy)
        self._control(("set_policy", ("obj", policy), True))

    def mark_coherent(self) -> None:
        self._control(("mark_coherent",))

    def install_script(self, script: Any, start_real: Optional[float] = None) -> None:
        """Install a fault timeline (the :meth:`FaultScript.install` target)."""
        self._validate_script(script)
        self._control(("install_script", script, start_real))

    def _validate_script(self, script: Any) -> None:
        from repro.faults.timeline import Havoc, Restart, SwapPolicy, build_policy

        for action in script.actions:
            if isinstance(action, Havoc):
                raise ShardError(
                    "Havoc timelines are not supported in sharded runs (the "
                    "transient injector reaches across live nodes and the "
                    "fabric); run with shards=1"
                )
            if isinstance(action, Restart) and action.scramble:
                raise ShardError(
                    "Restart(scramble=True) is not supported in sharded runs "
                    "(one injector stream spans a node set); run with shards=1"
                )
            if isinstance(action, SwapPolicy):
                # Future policies constrain the lookahead for the whole run.
                self._register_policy(build_policy(action.policy, self))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def decisions(self, general: int, since_real: float = 0.0) -> list:
        per_node = self._decision_cache.get(general)
        if per_node is None:
            per_node = {}
            for shard_map in self._broadcast(("query", "decisions", general)):
                per_node.update(shard_map)
            self._decision_cache[general] = per_node
        out: list = []
        for node_id in self.correct_ids:
            decs = per_node.get(node_id)
            if decs:
                out.extend(d for d in decs if d.returned_real >= since_real)
        return out

    def latest_decision_per_node(
        self, general: int, since_real: float = 0.0
    ) -> dict:
        latest: dict = {}
        for dec in self.decisions(general, since_real):
            held = latest.get(dec.node)
            if held is None or dec.returned_real > held.returned_real:
                latest[dec.node] = dec
        return latest

    @property
    def tracer(self) -> Tracer:
        if self._trace_cache is None:
            merged = Tracer(enabled=self.config.trace)
            counts: dict[str, int] = {}
            entries: list[tuple] = []
            for shard_index, (shard_counts, keys, events) in enumerate(
                self._broadcast(("query", "trace"))
            ):
                for kind, count in shard_counts.items():
                    counts[kind] = counts.get(kind, 0) + count
                entries.extend(
                    (key, shard_index, pos, event)
                    for pos, (key, event) in enumerate(zip(keys, events))
                )
            entries.sort(key=lambda entry: entry[:3])
            merged._events = [entry[3] for entry in entries]
            merged._counts = counts
            self._trace_cache = merged
        return self._trace_cache

    def events_executed(self) -> int:
        """Total events executed across shards (replicated setup/timeline
        events are counted once per shard that ran them)."""
        return sum(self._broadcast(("query", "events_executed")))

    # ------------------------------------------------------------------
    # Unsupported surface (clear errors beat silent wrong answers)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict:
        raise ShardError(
            "live node objects stay inside shard workers; gather results via "
            "decisions()/latest_decision_per_node(), or run with shards=None"
        )

    def correct_nodes(self) -> list:
        raise ShardError(
            "live node objects stay inside shard workers; use correct_ids "
            "or run with shards=None"
        )

    def node(self, node_id: int) -> Any:
        raise ShardError(
            "live node objects stay inside shard workers; run with shards=None"
        )

    def protocol_node(self, node_id: int) -> Any:
        raise ShardError(
            "live node objects stay inside shard workers; run with shards=None"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the shard workers down (idempotent; also runs on GC)."""
        self._finalizer()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "KeyedSimulator",
    "ShardError",
    "ShardNetwork",
    "ShardTracer",
    "ShardedCluster",
]
