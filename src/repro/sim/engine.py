"""Discrete-event simulation kernel.

The simulator maintains a single *real-time* axis (a float, in abstract time
units) and a priority queue of events.  Protocol code never reads real time
directly -- nodes observe time only through their :class:`~repro.sim.clock.
DriftClock` -- but the property checkers and the adversary are allowed to, in
exactly the way the paper's proofs quantify over real time ``rt(.)``.

Determinism
-----------
Two events scheduled for the same real time are executed in the order they
were scheduled (a monotonically increasing sequence number breaks ties), so a
run is a pure function of (scenario, seed).

Fast path
---------
Every message delivery and timer is one queue entry, so the kernel stays
deliberately lean: heap entries are plain ``(time, seq, action, handle)``
tuples (no dataclass construction or rich comparison per event -- the seq
tiebreak means ``action``/``handle`` are never compared), the number of
live (non-cancelled) events is tracked incrementally so
:meth:`Simulator.pending_events` is O(1) even in cancellation-heavy runs
such as resend-throttled scenarios, and fire-and-forget events (message
deliveries) can skip the :class:`EventHandle` allocation entirely via
:meth:`Simulator.schedule_fire`.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Any, Callable, Optional

# Reusable no-op context: the serial kernel's owner/node scoping hooks (see
# KeyedSimulator in repro.sim.shard) must cost nothing on the serial path.
_NULL_SCOPE = contextlib.nullcontext()

class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("cancelled", "time", "tag", "_sim")

    def __init__(self, time: float, tag: str = "", _sim: "Optional[Simulator]" = None) -> None:
        self.cancelled = False
        self.time = time
        self.tag = tag
        self._sim = _sim

    def cancel(self) -> None:
        """Prevent the event from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # Still queued (a popped entry severs the backlink first), so the
            # simulator's live-event count shrinks by one.
            if self._sim is not None:
                self._sim._live_events -= 1
                self._sim = None

    @property
    def alive(self) -> bool:
        """True while the event is still queued (not executed, not cancelled)."""
        return self._sim is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, tag={self.tag!r}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the real-time axis.  Non-zero starts are useful for
        tests that want to prove nothing depends on absolute time.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Any] = []
        self._next_seq = 0
        self._live_events = 0
        self._events_executed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current real time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return self._live_events

    def next_event_time(self) -> Optional[float]:
        """Fire time of the earliest live event, or ``None`` if drained.

        The sharded coordinator's horizon protocol polls this between
        synchronization rounds; cancelled heads are lazily discarded (they
        are dead weight either way).
        """
        queue = self._queue
        while queue:
            head = queue[0]
            handle = head[3]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                continue
            return head[0]
        return None

    # ------------------------------------------------------------------
    # Ownership scoping (no-ops on the serial kernel)
    # ------------------------------------------------------------------
    def owner_scope(self, owner: Optional[int]) -> Any:
        """Attribute events scheduled inside the scope to ``owner``.

        The serial kernel has no notion of ownership, so this is a shared
        no-op context; :class:`repro.sim.shard.KeyedSimulator` overrides it
        to tag scheduled events with their owning node during cluster
        construction.
        """
        return _NULL_SCOPE

    def node_scope(self, owner: Optional[int], pos: int) -> Any:
        """Per-node sub-context for replicated multi-node actions.

        Fault-timeline actions that iterate a node set enter one scope per
        node (``pos`` is the node's position in the action's list) so the
        sharded kernel can give each node's effects an execution-layout-
        independent rank namespace.  No-op on the serial kernel.
        """
        return _NULL_SCOPE

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Schedule ``action`` to run at absolute real time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, tag, _sim=self)
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (time, seq, action, handle))
        self._live_events += 1
        return handle

    def schedule_in(
        self, delay: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` real-time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, tag)

    def schedule_fire(self, delay: float, action: Callable[[], None]) -> None:
        """Fire-and-forget scheduling: no :class:`EventHandle`, no tag.

        The handle allocation is measurable at message-delivery rates (one
        event per copy, never cancelled), so the network fabric uses this
        lean path.  Counts toward :attr:`pending_events` like any event.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, action, None))
        self._live_events += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, action, handle = heapq.heappop(queue)
            if handle is not None:
                if handle.cancelled:
                    continue
                handle._sim = None
            self._live_events -= 1
            self._now = time
            self._events_executed += 1
            action()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is reached).

        Returns the number of events executed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``until``; advances ``now`` to ``until``.

        Events scheduled beyond ``until`` stay queued.  Returns the number of
        events executed by this call.
        """
        executed = self._run_loop(until=until, max_events=max_events)
        if not self._stop_requested and self._now < until:
            self._now = until
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run` / :meth:`run_until` to stop."""
        self._stop_requested = True

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        queue = self._queue
        try:
            while queue:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                head = queue[0]
                handle = head[3]
                if handle is not None and handle.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and head[0] > until:
                    break
                heapq.heappop(queue)
                if handle is not None:
                    handle._sim = None
                self._live_events -= 1
                self._now = head[0]
                self._events_executed += 1
                executed += 1
                head[2]()
        finally:
            self._running = False
        return executed


__all__ = ["EventHandle", "SimulationError", "Simulator"]
