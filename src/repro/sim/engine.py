"""Discrete-event simulation kernel.

The simulator maintains a single *real-time* axis (a float, in abstract time
units) and a priority queue of events.  Protocol code never reads real time
directly -- nodes observe time only through their :class:`~repro.sim.clock.
DriftClock` -- but the property checkers and the adversary are allowed to, in
exactly the way the paper's proofs quantify over real time ``rt(.)``.

Determinism
-----------
Two events scheduled for the same real time are executed in the order they
were scheduled (a monotonically increasing sequence number breaks ties), so a
run is a pure function of (scenario, seed).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("cancelled", "time", "tag")

    def __init__(self, time: float, tag: str = "") -> None:
        self.cancelled = False
        self.time = time
        self.tag = tag

    def cancel(self) -> None:
        """Prevent the event from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, tag={self.tag!r}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the real-time axis.  Non-zero starts are useful for
        tests that want to prove nothing depends on absolute time.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueuedEvent] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current real time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for ev in self._queue if not ev.handle.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Schedule ``action`` to run at absolute real time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, tag)
        heapq.heappush(
            self._queue, _QueuedEvent(time, next(self._seq), action, handle)
        )
        return handle

    def schedule_in(
        self, delay: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` real-time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, tag)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.handle.cancelled:
                continue
            self._now = ev.time
            self._events_executed += 1
            ev.action()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is reached).

        Returns the number of events executed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``until``; advances ``now`` to ``until``.

        Events scheduled beyond ``until`` stay queued.  Returns the number of
        events executed by this call.
        """
        executed = self._run_loop(until=until, max_events=max_events)
        if not self._stop_requested and self._now < until:
            self._now = until
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run` / :meth:`run_until` to stop."""
        self._stop_requested = True

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while self._queue:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                self._events_executed += 1
                executed += 1
                head.action()
        finally:
            self._running = False
        return executed


__all__ = ["EventHandle", "SimulationError", "Simulator"]
