"""Discrete-event simulation substrate.

This package provides the execution substrate on which every protocol in
:mod:`repro` runs:

* :mod:`repro.sim.engine` -- the discrete-event kernel (priority queue of
  timestamped events on a real-time axis, deterministic tie-breaking).
* :mod:`repro.sim.clock` -- per-node local clocks with bounded drift and
  arbitrary offset, matching the paper's timer model (Definition 1).
* :mod:`repro.sim.rand` -- deterministic, hierarchically split randomness so
  every run is reproducible from a single seed.
* :mod:`repro.sim.trace` -- a structured trace of everything that happened,
  consumed by the property checkers in :mod:`repro.harness.properties`.
"""

from repro.sim.clock import ClockConfig, DriftClock
from repro.sim.engine import EventHandle, Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ClockConfig",
    "DriftClock",
    "EventHandle",
    "Simulator",
    "RandomSource",
    "TraceEvent",
    "Tracer",
]
