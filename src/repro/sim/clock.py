"""Bounded-drift local clocks (paper Definition 1, Bounded Drift).

Each non-faulty node owns a hardware timer whose rate relative to real time is
within ``[1 - rho, 1 + rho]`` and whose absolute reading is arbitrary: the
paper's protocol only ever measures *intervals* of local time, never absolute
local time, so clocks here expose an affine map

    local(t) = offset + rate * (t - epoch)

with an arbitrary ``offset``.  The inverse map is exact because the clock is
affine, which is what lets the simulator schedule "wake me at local time tau"
requests precisely.

Wrap-around
-----------
The paper notes local time may wrap but assumes the wrap period is a large
constant factor of the longest measured interval.  We model that by an
optional ``wrap`` modulus used by :meth:`DriftClock.local_now` consumers that
want to exercise wrap behaviour; interval arithmetic helpers are provided so
protocol code stays wrap-safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ClockConfig:
    """Configuration for a :class:`DriftClock`.

    Attributes
    ----------
    rate:
        Drift rate; must lie in ``[1 - rho, 1 + rho]`` for a correct node.
    offset:
        Arbitrary initial local reading at clock creation time.
    wrap:
        Optional wrap-around modulus for the local reading.  ``None`` means
        the clock never wraps (the default for most experiments).
    """

    rate: float = 1.0
    offset: float = 0.0
    wrap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"clock rate must be positive, got {self.rate!r}")
        if self.wrap is not None and self.wrap <= 0:
            raise ValueError(f"wrap modulus must be positive, got {self.wrap!r}")


class DriftClock:
    """An affine local clock bound to a simulator's real-time axis."""

    def __init__(self, sim: Simulator, config: ClockConfig = ClockConfig()) -> None:
        self._sim = sim
        self._rate = config.rate
        self._offset = config.offset
        self._epoch = sim.now
        self._wrap = config.wrap

    # ------------------------------------------------------------------
    # Reading the clock
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Drift rate of this clock relative to real time."""
        return self._rate

    def local_at(self, real_time: float) -> float:
        """Unwrapped local reading at the given real time."""
        return self._offset + self._rate * (real_time - self._epoch)

    def local_now(self) -> float:
        """Unwrapped local reading at the current real time.

        Inlined affine map: this is the single most-called function in a
        run (every arrival and timer reads the clock), so it bypasses the
        ``local_at`` indirection and the simulator's ``now`` property.
        """
        return self._offset + self._rate * (self._sim._now - self._epoch)

    def display_now(self) -> float:
        """Local reading as the node's hardware would display it (wrapped)."""
        value = self.local_now()
        if self._wrap is None:
            return value
        return value % self._wrap

    # ------------------------------------------------------------------
    # Converting local intervals to the real-time axis
    # ------------------------------------------------------------------
    def real_at_local(self, local_time: float) -> float:
        """Real time at which the (unwrapped) local reading equals the input."""
        return self._epoch + (local_time - self._offset) / self._rate

    def real_delay_for_local(self, local_interval: float) -> float:
        """Real-time duration corresponding to a local-time interval."""
        if local_interval < 0:
            raise ValueError(f"negative local interval {local_interval!r}")
        return local_interval / self._rate

    def local_elapsed_between(self, real_a: float, real_b: float) -> float:
        """Local time elapsed between two real times (``real_b >= real_a``)."""
        return self._rate * (real_b - real_a)

    # ------------------------------------------------------------------
    # Transient-fault support
    # ------------------------------------------------------------------
    def corrupt_offset(self, new_offset: float) -> None:
        """Simulate a transient fault that scrambles the absolute reading.

        The rate is a *hardware* property and survives transient faults; only
        the reading (register contents) can be corrupted.  Interval
        measurements started before the corruption become garbage, which is
        exactly the hazard the protocol's cleanup logic must survive.
        """
        self._offset = new_offset
        self._epoch = self._sim.now


def check_drift_bound(rate: float, rho: float) -> bool:
    """True iff ``rate`` satisfies the paper's bounded-drift condition."""
    return (1.0 - rho) <= rate <= (1.0 + rho)


__all__ = ["ClockConfig", "DriftClock", "check_drift_bound"]
