"""repro -- Self-stabilizing Byzantine Agreement (Daliot & Dolev, PODC 2006).

A from-scratch, simulation-backed reproduction of the ss-Byz-Agree protocol
and its two building blocks (Initiator-Accept and msgd-broadcast), together
with the discrete-event substrate, fault models, baselines and experiment
harness needed to reproduce every property the paper proves.

Quickstart
----------
>>> from repro import ProtocolParams, ScenarioConfig, Cluster
>>> params = ProtocolParams(n=4, f=1, delta=1.0)
>>> cluster = Cluster(ScenarioConfig(params=params, seed=7))
>>> cluster.propose(general=0, value="attack")
True
>>> cluster.run_for(params.delta_agr)
>>> {d.value for d in cluster.decisions(0)}
{'attack'}
"""

from repro.core.agreement import AgreementInstance, Decision, ProtocolNode
from repro.core.initiator_accept import InitiatorAccept
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import BOTTOM, ProtocolParams, max_faults
from repro.harness.scenario import Cluster, ScenarioConfig

__version__ = "1.0.0"

__all__ = [
    "AgreementInstance",
    "BOTTOM",
    "Cluster",
    "Decision",
    "InitiatorAccept",
    "MsgdBroadcast",
    "ProtocolNode",
    "ProtocolParams",
    "ScenarioConfig",
    "max_faults",
    "__version__",
]
