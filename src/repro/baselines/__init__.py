"""Baseline protocols the paper is compared against.

* :mod:`repro.baselines.tps87` -- the Toueg-Perry-Srikanth (1987) fast
  Byzantine agreement with its original *time-driven* lock-step rounds.
  ss-Byz-Agree is explicitly modeled on this protocol (paper Section 3); the
  baseline quantifies what the message-driven round structure buys (E5).
* :mod:`repro.baselines.eig` -- classic Exponential Information Gathering
  Byzantine agreement.  It is correct in the synchronous fault model but is
  *not* self-stabilizing: experiment E10 shows it violating agreement when
  started from a corrupted state that ss-Byz-Agree shrugs off.
"""

from repro.baselines.eig import EigCluster, EigNode
from repro.baselines.tps87 import Tps87Cluster, Tps87Node

__all__ = ["EigCluster", "EigNode", "Tps87Cluster", "Tps87Node"]
