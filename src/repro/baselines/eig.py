"""Classic Exponential Information Gathering (EIG) Byzantine agreement.

The canonical *non-self-stabilizing* baseline: synchronous rounds, an EIG
tree per node, recursive-majority resolution after ``f + 1`` rounds.
Correct under the classic assumptions (synchronized start, clean initial
state, ``n > 3f``), and exactly the kind of protocol the paper's
introduction argues cannot survive transient faults: its entire safety
argument lives in the consistency of the tree state, so a transient fault
that corrupts trees mid-run silently yields disagreeing decisions, with no
mechanism to ever detect or repair them.

Experiment E10 runs the same corruption suite against EIG and ss-Byz-Agree
and reports the disagreement rates side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.params import ProtocolParams
from repro.net.delivery import DeliveryPolicy, UniformDelay
from repro.net.network import Envelope, Network
from repro.node.base import Node
from repro.runtime.sim_host import NodeContext
from repro.sim.clock import ClockConfig
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

Value = Hashable
Path = tuple[int, ...]

DEFAULT_VALUE: Value = "eig-default"


@dataclass(frozen=True)
class EigRoundMsg:
    """One node's round-``r`` report: its tree level as {path: value}."""

    general: int
    round: int
    reports: tuple[tuple[Path, Value], ...]


class EigNode(Node):
    """One EIG participant with a synchronized round clock."""

    def __init__(
        self,
        node_id: int,
        ctx: NodeContext,
        params: ProtocolParams,
        general: int,
        t0: float,
        round_length: float,
    ) -> None:
        super().__init__(node_id, ctx)
        self.params = params
        self.general = general
        self.t0 = t0
        self.round_length = round_length
        # tree[path] = value reported along that label path; path[0] == general.
        self.tree: dict[Path, Value] = {}
        self.decision: Optional[Value] = None
        self._pending: dict[int, dict[int, dict[Path, Value]]] = {}
        self._schedule_rounds()

    # ------------------------------------------------------------------
    # Round clock
    # ------------------------------------------------------------------
    def _schedule_rounds(self) -> None:
        for r in range(self.params.f + 2):
            boundary = self.t0 + (r + 1) * self.round_length
            self.sim.schedule_in(
                max(0.0, boundary - self.sim.now),
                lambda r=r: self._end_of_round(r),
                tag=f"eig:round{r}",
            )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def set_initial_value(self, value: Value) -> None:
        """Round-0 receipt of the General's value (root of the tree)."""
        self.tree[(self.general,)] = value

    def on_message(self, envelope: Envelope) -> None:
        msg = envelope.payload
        if not isinstance(msg, EigRoundMsg) or msg.general != self.general:
            return
        per_round = self._pending.setdefault(msg.round, {})
        per_round.setdefault(envelope.sender, dict(msg.reports))

    def _end_of_round(self, r: int) -> None:
        if self.decision is not None:
            return
        if r > 0:
            # Fold the reports of round r into tree level r + 1.
            for sender, reports in self._pending.get(r, {}).items():
                for path, value in reports.items():
                    if len(path) != r or sender in path:
                        continue  # malformed or duplicate-label: discard
                    self.tree[path + (sender,)] = value
        if r < self.params.f + 1:
            # Send this node's level-(r + 1) view to everyone.
            level = {
                path: value
                for path, value in self.tree.items()
                if len(path) == r + 1 and self.node_id not in path[1:]
            }
            self.broadcast(
                EigRoundMsg(self.general, r + 1, tuple(sorted(level.items(), key=repr)))
            )
        else:
            self.decision = self._resolve((self.general,))
            self.trace("eig_decide", value=self.decision)

    # ------------------------------------------------------------------
    # Recursive majority resolution
    # ------------------------------------------------------------------
    def _resolve(self, path: Path) -> Value:
        depth = len(path)
        if depth == self.params.f + 2:
            return self.tree.get(path, DEFAULT_VALUE)
        children = [
            child
            for child in range(self.params.n)
            if child not in path
        ]
        if not children:
            return self.tree.get(path, DEFAULT_VALUE)
        votes: dict[Value, int] = {}
        for child in children:
            value = self._resolve(path + (child,))
            votes[value] = votes.get(value, 0) + 1
        best_value, best_count = max(votes.items(), key=lambda kv: (kv[1], repr(kv[0])))
        if best_count * 2 > len(children):
            return best_value
        return DEFAULT_VALUE

    # ------------------------------------------------------------------
    # Transient corruption (the E10 payload)
    # ------------------------------------------------------------------
    def corrupt_tree(
        self, rng: RandomSource, value_pool: list[Value], probability: float = 0.5
    ) -> None:
        """Overwrite a random subset of the EIG state with garbage.

        Hits both the folded tree and the buffered (not yet folded) round
        reports -- a transient fault corrupts memory, not just one data
        structure.
        """
        for path in list(self.tree):
            if rng.chance(probability):
                self.tree[path] = rng.choice(value_pool)
        for per_round in self._pending.values():
            for reports in per_round.values():
                for path in list(reports):
                    if rng.chance(probability):
                        reports[path] = rng.choice(value_pool)
        self.trace("eig_corrupted")


class EigCluster:
    """A synchronized cluster running one EIG agreement."""

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        general: int = 0,
        policy: Optional[DeliveryPolicy] = None,
    ) -> None:
        self.params = params
        self.general = general
        self.rng = RandomSource(seed, "eig")
        self.sim = Simulator()
        self.tracer = Tracer()
        self.net = Network(
            self.sim,
            policy or UniformDelay(0.1 * params.delta, params.delta),
            self.rng.split("net"),
            self.tracer,
        )
        self.round_length = 2.0 * params.d
        self.nodes: dict[int, EigNode] = {}
        for node_id in range(params.n):
            ctx = NodeContext(
                sim=self.sim, net=self.net, tracer=self.tracer, clock_config=ClockConfig()
            )
            self.nodes[node_id] = EigNode(
                node_id, ctx, params, general, t0=0.0, round_length=self.round_length
            )

    def initiate(self, value: Value) -> None:
        """Give every node the General's round-0 value (correct General)."""
        for node in self.nodes.values():
            node.set_initial_value(value)

    def initiate_equivocating(self, assignment: dict[int, Value]) -> None:
        """A Byzantine General hands different round-0 values per node."""
        for node_id, value in assignment.items():
            self.nodes[node_id].set_initial_value(value)

    def corrupt_mid_run(self, value_pool: list[Value], at_round: int = 1) -> None:
        """Schedule a transient fault hitting every tree mid-protocol."""
        when = (at_round + 0.5) * self.round_length

        def strike() -> None:
            for node in self.nodes.values():
                node.corrupt_tree(self.rng.split(f"corrupt/{node.node_id}"), value_pool)

        self.sim.schedule_in(max(0.0, when - self.sim.now), strike, tag="eig:corrupt")

    def run_to_completion(self) -> dict[int, Value]:
        """Run all rounds; returns per-node decisions."""
        horizon = (self.params.f + 3) * self.round_length
        self.sim.run_until(horizon)
        return {
            node_id: node.decision
            for node_id, node in self.nodes.items()
            if node.decision is not None
        }


__all__ = ["DEFAULT_VALUE", "EigCluster", "EigNode", "EigRoundMsg"]
