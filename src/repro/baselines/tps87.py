"""Toueg-Perry-Srikanth (1987) agreement with time-driven lock-step rounds.

This is the protocol ss-Byz-Agree is modeled on ([14] in the paper), kept as
close as possible to our msgd-broadcast implementation so the *only*
difference the E5 experiment measures is the round structure:

* **Here**: nodes evaluate quorum conditions and emit the next wave of
  messages only at *phase boundaries* ``t0 + i * Phi`` of a globally
  synchronized round clock.  A message arriving early still waits for the
  boundary; latency is a multiple of ``Phi`` no matter how fast the network
  actually is.
* **msgd-broadcast**: the same conditions fire the moment the messages
  arrive; the phase bound is only an upper limit.

The baseline is granted everything its model assumes and the paper's model
denies: perfectly synchronized initialization (all nodes know ``t0``) and
drift-free clocks.  It is therefore an *upper* bound on what a time-driven
protocol can do -- and it still loses to the message-driven rounds whenever
actual delivery beats the worst case, which is the paper's point.

The broadcast primitive below is the original echo / init' / echo' relay
machinery with the same ``n - 2f`` / ``n - f`` thresholds; the agreement
layer is the same R/S/T/U skeleton (round-1 adoption by the General's
direct recipients plays the role of Initiator-Accept).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.params import BOTTOM, ProtocolParams
from repro.net.delivery import DeliveryPolicy, UniformDelay
from repro.net.network import Envelope, Network
from repro.node.base import Node
from repro.runtime.sim_host import NodeContext
from repro.node.msglog import MessageLog
from repro.sim.clock import ClockConfig
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

Value = Hashable


@dataclass(frozen=True)
class TpsInitiate:
    """Round-0 value dissemination by the General."""

    general: int
    value: Value


@dataclass(frozen=True)
class TpsMsg:
    """One broadcast-primitive message: kind in {init, echo, init', echo'}."""

    general: int
    kind: str
    origin: int
    value: Value
    k: int


@dataclass(frozen=True)
class TpsDecision:
    """Outcome of the baseline agreement at one node."""

    node: int
    general: int
    value: Value
    returned_real: float

    @property
    def decided(self) -> bool:
        return self.value is not BOTTOM


class Tps87Node(Node):
    """One lock-step participant.

    Phase ``i`` covers real time ``[t0 + i * Phi, t0 + (i + 1) * Phi)``; all
    protocol action happens at phase boundaries.
    """

    def __init__(
        self,
        node_id: int,
        ctx: NodeContext,
        params: ProtocolParams,
        general: int,
        t0: float,
    ) -> None:
        super().__init__(node_id, ctx)
        self.params = params
        self.general = general
        self.t0 = t0
        self.log = MessageLog()
        self.value: Optional[Value] = None  # adopted value
        self.accepted: dict[tuple[int, Value, int], int] = {}  # triplet -> phase
        self.broadcasters: set[int] = set()
        self._sent: set[tuple[str, int, Value, int]] = set()
        self.decision: Optional[TpsDecision] = None
        self._schedule_phases()

    # ------------------------------------------------------------------
    # Phase clock
    # ------------------------------------------------------------------
    def _schedule_phases(self) -> None:
        total_phases = 2 * self.params.f + 4
        for i in range(1, total_phases + 1):
            boundary = self.t0 + i * self.params.phi
            delay = max(0.0, boundary - self.sim.now)
            self.sim.schedule_in(
                delay, lambda i=i: self._at_phase_boundary(i), tag=f"tps:phase{i}"
            )

    # ------------------------------------------------------------------
    # Message intake: log only; processing waits for the boundary
    # ------------------------------------------------------------------
    def on_message(self, envelope: Envelope) -> None:
        msg = envelope.payload
        if isinstance(msg, TpsInitiate):
            if envelope.sender == msg.general == self.general and self.value is None:
                self.value = msg.value
        elif isinstance(msg, TpsMsg):
            if msg.kind == "init" and envelope.sender != msg.origin:
                return  # authenticated: only the origin may init
            self.log.add((msg.kind, msg.origin, msg.value, msg.k), envelope.sender, self.sim.now)

    # ------------------------------------------------------------------
    # Lock-step processing
    # ------------------------------------------------------------------
    def _send_once(self, kind: str, origin: int, value: Value, k: int) -> None:
        key = (kind, origin, value, k)
        if key in self._sent:
            return
        self._sent.add(key)
        self.broadcast(TpsMsg(self.general, kind, origin, value, k))

    def _at_phase_boundary(self, phase: int) -> None:
        if self.decision is not None:
            return
        p = self.params

        # Broadcast-primitive relays (kinds gated by the original's phase
        # windows: echo by 2k, init'/accept by 2k+1, echo' by 2k+2).
        for k in range(1, p.f + 2):
            if phase >= 2 * k - 1:
                self._phase_relay(k, phase)

        # Agreement layer at odd boundaries 2r+1.
        if phase % 2 == 1:
            r = (phase - 1) // 2
            self._agreement_step(r, phase)

    def _phase_relay(self, k: int, phase: int) -> None:
        p = self.params
        # Echo every init we have (round-k window: by phase 2k).
        for key in list(self.log.keys):
            kind, origin, value, kk = key
            if kk != k:
                continue
            if kind == "init" and phase <= 2 * k and self.log.has_from(key, origin):
                self._send_once("echo", origin, value, k)
            if kind == "echo" and phase <= 2 * k + 1:
                count = self.log.count_distinct(key)
                if count >= p.weak_quorum:
                    self._send_once("init_prime", origin, value, k)
                if count >= p.strong_quorum:
                    self._accept(origin, value, k, phase)
            if kind == "init_prime" and phase <= 2 * k + 2:
                count = self.log.count_distinct(key)
                if count >= p.weak_quorum:
                    self.broadcasters.add(origin)
                if count >= p.strong_quorum:
                    self._send_once("echo_prime", origin, value, k)
            if kind == "echo_prime":
                count = self.log.count_distinct(key)
                if count >= p.weak_quorum:
                    self._send_once("echo_prime", origin, value, k)
                if count >= p.strong_quorum:
                    self._accept(origin, value, k, phase)

    def _accept(self, origin: int, value: Value, k: int, phase: int) -> None:
        triplet = (origin, value, k)
        if triplet not in self.accepted:
            self.accepted[triplet] = phase
            self.trace("tps_accept", origin=origin, value=value, k=k)

    def _agreement_step(self, r: int, phase: int) -> None:
        p = self.params
        # Round-0 adoption: the General's direct value, relayed at k=1.
        if r == 0:
            if self.value is not None:
                self._send_once("init", self.node_id, self.value, 1)
                self._decide(self.value)
            return
        # S-analogue: a chain of accepted (p_i, m, i), i = 1..r, distinct.
        for value, chain_ok in self._chains(r).items():
            if chain_ok:
                self._send_once("init", self.node_id, value, r + 1)
                self._decide(value)
                return
        # T/U-analogue: abort when the broadcaster count lags the round.
        if r >= 2 and len(self.broadcasters) < r - 1:
            self._decide(BOTTOM)
            return
        if r >= p.f + 1:
            self._decide(BOTTOM)

    def _chains(self, r: int) -> dict[Value, bool]:
        by_value: dict[Value, dict[int, set[int]]] = {}
        for (origin, value, k), _phase in self.accepted.items():
            if origin == self.general:
                continue
            by_value.setdefault(value, {}).setdefault(k, set()).add(origin)
        out: dict[Value, bool] = {}
        for value, per_level in by_value.items():
            used: set[int] = set()
            ok = True
            for i in range(1, r + 1):
                pick = next(
                    (o for o in per_level.get(i, set()) if o not in used), None
                )
                if pick is None:
                    ok = False
                    break
                used.add(pick)
            out[value] = ok
        return out

    def _decide(self, value: Value) -> None:
        if self.decision is None:
            self.decision = TpsDecision(
                node=self.node_id,
                general=self.general,
                value=value,
                returned_real=self.sim.now,
            )
            self.trace("tps_decide", value=value)


class Tps87Cluster:
    """A synchronized lock-step cluster running one TPS'87 agreement."""

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        general: int = 0,
        policy: Optional[DeliveryPolicy] = None,
    ) -> None:
        self.params = params
        self.general = general
        self.rng = RandomSource(seed, "tps87")
        self.sim = Simulator()
        self.tracer = Tracer()
        self.net = Network(
            self.sim,
            policy or UniformDelay(0.1 * params.delta, params.delta),
            self.rng.split("net"),
            self.tracer,
        )
        self.t0 = 0.0
        self.nodes: dict[int, Tps87Node] = {}
        for node_id in range(params.n):
            ctx = NodeContext(
                sim=self.sim, net=self.net, tracer=self.tracer, clock_config=ClockConfig()
            )
            self.nodes[node_id] = Tps87Node(node_id, ctx, params, general, self.t0)

    def initiate(self, value: Value) -> None:
        """The (correct) General disseminates its value at round 0."""
        self.nodes[self.general].broadcast(TpsInitiate(self.general, value))

    def run_to_completion(self) -> list[TpsDecision]:
        """Run through all phases; returns the per-node decisions."""
        horizon = self.t0 + (2 * self.params.f + 5) * self.params.phi
        self.sim.run_until(horizon)
        return [n.decision for n in self.nodes.values() if n.decision is not None]


__all__ = ["Tps87Cluster", "Tps87Node", "TpsDecision", "TpsInitiate", "TpsMsg"]
