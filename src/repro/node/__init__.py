"""Node/process framework.

A :class:`~repro.node.base.Node` owns a drifting local clock, talks to the
world only through the network, and observes time only through local-time
intervals -- the exact discipline the paper's model imposes.  The
:class:`~repro.node.msglog.MessageLog` provides the sliding-window quorum
queries ("received X from >= k distinct nodes within [tau - a, tau]") that
every block of the paper's primitives is written in terms of.
"""

from repro.node.base import Node, NodeContext
from repro.node.msglog import MessageLog

__all__ = ["MessageLog", "Node", "NodeContext"]
