"""Base class for simulated nodes.

Design rules enforced here (mirroring the paper's model):

* a node reads time *only* via its :class:`~repro.sim.clock.DriftClock`
  (``local_now``), never the simulator's real time;
* a node interacts with other nodes *only* via the network;
* local timers are scheduled in local-time units and are translated to the
  real axis through the node's own (possibly drifting) clock;
* a node can be *stunned* (crashed) and later resumed, and its timers can be
  wiped by a transient fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.network import Envelope, Network
from repro.sim.clock import ClockConfig, DriftClock
from repro.sim.engine import EventHandle, Simulator
from repro.sim.trace import Tracer


@dataclass
class NodeContext:
    """Everything a node needs to exist in a scenario."""

    sim: Simulator
    net: Network
    tracer: Tracer
    clock_config: ClockConfig = ClockConfig()


class Node:
    """A process with a drifting clock, an inbox, and local timers."""

    def __init__(self, node_id: int, ctx: NodeContext) -> None:
        self.node_id = node_id
        self.sim = ctx.sim
        self.net = ctx.net
        self.tracer = ctx.tracer
        self.clock = DriftClock(ctx.sim, ctx.clock_config)
        self._timers: list[EventHandle] = []
        self._timer_compact_at = 256
        self._crashed = False
        ctx.net.register(node_id, self._receive)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def local_now(self) -> float:
        """Current local-clock reading."""
        return self.clock.local_now()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, receiver: int, payload: object) -> None:
        """Point-to-point send (ignored while crashed)."""
        if self._crashed:
            return
        self.net.send(self.node_id, receiver, payload)

    def broadcast(self, payload: object) -> None:
        """Send to every node, including self (no broadcast medium)."""
        if self._crashed:
            return
        self.net.broadcast(self.node_id, payload)

    def _receive(self, envelope: Envelope) -> None:
        if self._crashed:
            return
        self.on_message(envelope)

    def on_message(self, envelope: Envelope) -> None:
        """Handle a delivered message.  Subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Local timers
    # ------------------------------------------------------------------
    def after_local(
        self, delay_local: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Run ``action`` after a local-time delay measured on *this* clock."""
        real_delay = self.clock.real_delay_for_local(delay_local)

        def guarded() -> None:
            if not self._crashed:
                action()

        handle = self.sim.schedule_in(
            real_delay, guarded, tag=tag or f"timer:{self.node_id}"
        )
        timers = self._timers
        timers.append(handle)
        if len(timers) > self._timer_compact_at:
            # Compact executed/cancelled handles so long runs (and the
            # per-triplet deadline timers of the push evaluators) do not
            # grow this list without bound.  The next compaction point
            # doubles with the surviving population, so a node that simply
            # has many live timers is not rescanned on every append.
            self._timers = [h for h in timers if h.alive]
            self._timer_compact_at = max(256, 2 * len(self._timers))
        return handle

    def every_local(
        self, interval_local: float, action: Callable[[], None], tag: str = ""
    ) -> None:
        """Run ``action`` periodically, every local interval, forever."""
        if interval_local <= 0:
            raise ValueError(f"interval must be positive, got {interval_local!r}")

        def tick() -> None:
            action()
            self.after_local(interval_local, tick, tag=tag)

        self.after_local(interval_local, tick, tag=tag)

    def cancel_timers(self) -> None:
        """Cancel all pending timers (used by crash / corruption)."""
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Crash control
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the node is stopped."""
        return self._crashed

    def crash(self) -> None:
        """Stop participating entirely (messages and timers ignored)."""
        self._crashed = True

    def resume(self) -> None:
        """Resume after a crash.  State is whatever it was -- deliberately.

        A resumed node is *non-faulty* but not yet *correct* in the paper's
        terms (Definition 4): its memory may be stale and it becomes correct
        only after ``Delta_node`` of continuous good behaviour.
        """
        self._crashed = False

    # ------------------------------------------------------------------
    # Tracing helpers
    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        """True while full tracing is on -- hot call sites guard on this."""
        return self.tracer.enabled

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event attributed to this node, with both clocks."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now, self.node_id, kind, local_time=self.local_now(), **detail
            )
        else:
            # Count-only fast path: skip the clock reads and event build.
            tracer.bump(kind)


__all__ = ["Node", "NodeContext"]
