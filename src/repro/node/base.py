"""Base class for protocol nodes, written against the sans-I/O host API.

Design rules enforced here (mirroring the paper's model):

* a node reads time *only* through its host's local clock (``local_now``),
  never any global real time;
* a node interacts with other nodes *only* via the host's transport;
* local timers are scheduled in local-time units; the host translates them
  to whatever real axis it owns (simulated time, the asyncio loop, ...);
* a node can be *stunned* (crashed) and later resumed, and its timers can be
  wiped by a transient fault.

A node is itself a :class:`~repro.runtime.api.ProtocolHost`: it forwards the
host surface to its backend while layering the crash semantics on top (a
crashed node neither sends nor fires timers).  The protocol primitives in
``repro.core`` therefore receive the *node* as their host.

Construction accepts either a ready-made host (``SimHost``, ``AsyncioHost``,
any conforming object) or the legacy sim-specific
:class:`~repro.runtime.sim_host.NodeContext`, which is wrapped in a
``SimHost`` on the fly -- existing scenario builders keep working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.runtime.api import Delivery, ProtocolHost, TimerHandle

if TYPE_CHECKING:
    from repro.runtime.sim_host import NodeContext


def __getattr__(name: str):
    # Back-compat: ``NodeContext`` moved to repro.runtime.sim_host (it is
    # sim-specific); keep the historical import path working lazily so this
    # module itself stays free of simulator imports.
    if name == "NodeContext":
        from repro.runtime.sim_host import NodeContext

        return NodeContext
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Node:
    """A process with a local clock, an inbox, and local timers."""

    def __init__(self, node_id: int, ctx) -> None:
        if not hasattr(ctx, "schedule_after"):
            # A legacy NodeContext bundle: wrap it in the sim backend.
            from repro.runtime.sim_host import SimHost

            ctx = SimHost.from_context(node_id, ctx)
        self.node_id = node_id
        self.host: ProtocolHost = ctx
        # Back-compat surface for sim-backed call sites (baselines, fault
        # scripts, property checkers); None under non-sim backends.
        self.sim = getattr(ctx, "sim", None)
        self.net = getattr(ctx, "net", None)
        self.clock = getattr(ctx, "clock", None)
        self.tracer = ctx.tracer
        self.rand = getattr(ctx, "rand", None)
        self._crashed = False
        # Hot-path bindings: clock reads resolve straight to the host's
        # (itself usually a direct binding to the clock's affine map).
        self.local_now = ctx.now
        self.now = ctx.now
        ctx.attach(self._receive)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def local_now(self) -> float:  # shadowed by the instance binding above
        """Current local-clock reading."""
        return self.host.now()

    now = local_now  # ProtocolHost spelling (also instance-bound in __init__)

    def real_now(self) -> float:
        """Observer-side real time (results bookkeeping only)."""
        return self.host.real_now()

    def real_at_local(self, local_time: float) -> float:
        """Real time at which this node's local reading equals the input."""
        return self.host.real_at_local(local_time)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, receiver: int, payload: object) -> None:
        """Point-to-point send (ignored while crashed)."""
        if self._crashed:
            return
        self.host.send(receiver, payload)

    def broadcast(self, payload: object) -> None:
        """Send to every node, including self (no broadcast medium)."""
        if self._crashed:
            return
        self.host.broadcast(payload)

    def _receive(self, envelope: Delivery) -> None:
        if self._crashed:
            return
        self.on_message(envelope)

    def on_message(self, envelope: Delivery) -> None:
        """Handle a delivered message.  Subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Local timers
    # ------------------------------------------------------------------
    def after_local(
        self, delay_local: float, action: Callable[[], None], tag: str = ""
    ) -> TimerHandle:
        """Run ``action`` after a local-time delay measured on *this* clock."""

        def guarded() -> None:
            if not self._crashed:
                action()

        return self.host.schedule_after(
            delay_local, guarded, tag or f"timer:{self.node_id}"
        )

    # ProtocolHost spelling; identical semantics (crash-guarded).
    schedule_after = after_local

    def schedule_at(
        self, when_local: float, action: Callable[[], None], tag: str = ""
    ) -> TimerHandle:
        """Run ``action`` at an absolute local time (clamped to now)."""
        return self.after_local(
            max(0.0, when_local - self.host.now()), action, tag
        )

    def every_local(
        self, interval_local: float, action: Callable[[], None], tag: str = ""
    ) -> None:
        """Run ``action`` periodically, every local interval, forever."""
        if interval_local <= 0:
            raise ValueError(f"interval must be positive, got {interval_local!r}")

        def tick() -> None:
            action()
            self.after_local(interval_local, tick, tag=tag)

        self.after_local(interval_local, tick, tag=tag)

    def cancel_timers(self) -> None:
        """Cancel all pending timers (used by crash / corruption)."""
        self.host.cancel_all_timers()

    def live_timer_count(self) -> int:
        """Still-pending timers on this node's host (hygiene introspection)."""
        return self.host.live_timer_count()

    # ------------------------------------------------------------------
    # Crash control
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the node is stopped."""
        return self._crashed

    def crash(self) -> None:
        """Stop participating entirely (messages and timers ignored)."""
        self._crashed = True

    def resume(self) -> None:
        """Resume after a crash.  State is whatever it was -- deliberately.

        A resumed node is *non-faulty* but not yet *correct* in the paper's
        terms (Definition 4): its memory may be stale and it becomes correct
        only after ``Delta_node`` of continuous good behaviour.
        """
        self._crashed = False

    # ------------------------------------------------------------------
    # Tracing helpers
    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        """True while full tracing is on -- hot call sites guard on this."""
        return self.tracer.enabled

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event attributed to this node, with both clocks."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                self.host.real_now(),
                self.node_id,
                kind,
                local_time=self.host.now(),
                **detail,
            )
        else:
            # Count-only fast path: skip the clock reads and event build.
            tracer.bump(kind)


__all__ = ["Node", "NodeContext"]
