"""Naive reference implementation of :class:`~repro.node.msglog.MessageLog`.

This is the original O(records)-per-query implementation, kept verbatim as
the behavioural oracle for the incremental fast-path log.  The randomized
differential test (``tests/test_msglog_equiv.py``) and the kernel
micro-benchmarks (``benchmarks/bench_perf_kernel.py``) pit the two against
each other: every public query must return identical results after any
interleaving of adds, corrupt inserts, prunes, and removals, and the
incremental log must beat this one by a wide margin on window queries.

Do not "optimize" this module -- its simplicity is its value.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Optional

Key = Hashable


class ReferenceMessageLog:
    """Arrival-time log keyed by (message key, sender) -- naive scans."""

    def __init__(self) -> None:
        # key -> sender -> sorted list of arrival local-times
        self._records: dict[Key, dict[int, list[float]]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, key: Key, sender: int, arrival_local: float) -> None:
        """Record one arrival."""
        per_sender = self._records.setdefault(key, {})
        arrivals = per_sender.setdefault(sender, [])
        if arrivals and arrival_local < arrivals[-1]:
            bisect.insort(arrivals, arrival_local)
        else:
            arrivals.append(arrival_local)

    def corrupt_insert(self, key: Key, sender: int, arrival_local: float) -> None:
        """Insert a fabricated record (transient-fault modelling)."""
        self.add(key, sender, arrival_local)

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def senders(self, key: Key) -> set[int]:
        """All senders with at least one record for the key."""
        return set(self._records.get(key, {}))

    def count_distinct(self, key: Key) -> int:
        """Number of distinct senders recorded for the key (any time)."""
        return len(self._records.get(key, {}))

    def distinct_senders_in(self, key: Key, start: float, end: float) -> set[int]:
        """Senders with at least one arrival in the closed window [start, end]."""
        found: set[int] = set()
        for sender, arrivals in self._records.get(key, {}).items():
            if any(start <= a <= end for a in arrivals):
                found.add(sender)
        return found

    def count_distinct_in(self, key: Key, start: float, end: float) -> int:
        """Number of distinct senders with an arrival in [start, end]."""
        return len(self.distinct_senders_in(key, start, end))

    def latest_arrival_per_sender(self, key: Key) -> dict[int, float]:
        """Latest recorded arrival per sender."""
        return {
            sender: arrivals[-1]
            for sender, arrivals in self._records.get(key, {}).items()
            if arrivals
        }

    def kth_latest_distinct(self, key: Key, k: int) -> Optional[float]:
        """k-th largest of the per-sender latest arrivals, or None."""
        latest = sorted(self.latest_arrival_per_sender(key).values(), reverse=True)
        if len(latest) < k:
            return None
        return latest[k - 1]

    def earliest_arrival(self, key: Key) -> Optional[float]:
        """Earliest arrival recorded for the key across all senders."""
        candidates = [
            arrivals[0]
            for arrivals in self._records.get(key, {}).values()
            if arrivals
        ]
        return min(candidates) if candidates else None

    def has_from(self, key: Key, sender: int) -> bool:
        """True iff the key has a record from the given sender."""
        return sender in self._records.get(key, {})

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def prune_older_than(self, cutoff_local: float) -> int:
        """Drop records with arrival before ``cutoff_local``; return count."""
        dropped = 0
        empty_keys = []
        for key, per_sender in self._records.items():
            empty_senders = []
            for sender, arrivals in per_sender.items():
                kept = [a for a in arrivals if a >= cutoff_local]
                dropped += len(arrivals) - len(kept)
                if kept:
                    per_sender[sender] = kept
                else:
                    empty_senders.append(sender)
            for sender in empty_senders:
                del per_sender[sender]
            if not per_sender:
                empty_keys.append(key)
        for key in empty_keys:
            del self._records[key]
        return dropped

    def prune_future(self, now_local: float) -> int:
        """Drop records with arrival times in the (local) future."""
        dropped = 0
        for per_sender in self._records.values():
            for sender, arrivals in list(per_sender.items()):
                kept = [a for a in arrivals if a <= now_local]
                dropped += len(arrivals) - len(kept)
                if kept:
                    per_sender[sender] = kept
                else:
                    del per_sender[sender]
        return dropped

    def remove_keys(self, keys: Iterable[Key]) -> None:
        """Remove all records for the given keys."""
        for key in keys:
            self._records.pop(key, None)

    def remove_matching(self, predicate) -> None:
        """Remove all records whose key satisfies the predicate."""
        for key in [k for k in self._records if predicate(k)]:
            del self._records[key]

    def clear(self) -> None:
        """Drop everything."""
        self._records.clear()

    @property
    def keys(self) -> list[Key]:
        """All keys with at least one record."""
        return list(self._records)

    def total_records(self) -> int:
        """Total number of stored arrivals."""
        return sum(
            len(arrivals)
            for per_sender in self._records.values()
            for arrivals in per_sender.values()
        )


__all__ = ["ReferenceMessageLog"]
