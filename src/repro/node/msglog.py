"""Per-node log of received protocol messages with arrival local-times.

The paper's primitives are condition-driven: every block is a predicate of
the form "received <kind> for (G, m) from at least k distinct nodes within
the local-time window [tau - a, tau]".  The log stores, per message *key*
(an arbitrary hashable, e.g. ``("support", G, m)``) and per authenticated
sender, the arrival local-times, and answers exactly those window queries.

Self-stabilization support: the log can be filled with arbitrary fabricated
records (:meth:`MessageLog.corrupt_insert`), modelling a node that wakes up
from a transient fault with spurious "received messages" in memory, and
pruned by age (the protocols' cleanup rules).

Fast path
---------
Window predicates are evaluated on *every* message arrival, so this module
is the single hottest query path in the simulator.  The log therefore keeps
incremental per-key state instead of rescanning records:

* a flat time-sorted pair of arrays ``(times, time_senders)`` per key, so a
  window query is two bisects plus a slice over only the in-window hits;
* per-sender sorted arrival lists (the authoritative record store), so
  per-sender queries and prunes stay local;
* a lazily cached ascending array of per-sender latest arrivals, so
  ``kth_latest_distinct`` is a cache lookup instead of a sort per call.

Arrivals are observed in nondecreasing local time during normal operation,
so every maintenance step above is an O(1) append; bisect-insertion only
happens for out-of-order (corrupted) arrivals.  The naive original
implementation survives as :class:`repro.node.msglog_ref.ReferenceMessageLog`
and ``tests/test_msglog_equiv.py`` proves behavioural equivalence.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Hashable, Iterable, Optional

Key = Hashable


class _KeyLog:
    """Incremental state for one message key."""

    __slots__ = ("per_sender", "times", "time_senders", "latest_sorted")

    def __init__(self) -> None:
        # sender -> sorted arrival local-times (never empty once present)
        self.per_sender: dict[int, list[float]] = {}
        # flat arrival axis: times is sorted, time_senders[i] sent times[i]
        self.times: list[float] = []
        self.time_senders: list[int] = []
        # ascending per-sender latest arrivals; None when stale
        self.latest_sorted: Optional[list[float]] = None

    # -- recording ------------------------------------------------------
    def add(self, sender: int, arrival: float) -> None:
        arrivals = self.per_sender.get(sender)
        cache = self.latest_sorted
        if arrivals is None:
            self.per_sender[sender] = [arrival]
            if cache is not None:
                insort(cache, arrival)
        elif arrival >= arrivals[-1]:
            old_latest = arrivals[-1]
            arrivals.append(arrival)
            if cache is not None and arrival != old_latest:
                del cache[bisect_left(cache, old_latest)]
                insort(cache, arrival)
        else:
            # out-of-order (corruption): sender's latest is unchanged
            insort(arrivals, arrival)
        times = self.times
        if times and arrival < times[-1]:
            idx = bisect_right(times, arrival)
            times.insert(idx, arrival)
            self.time_senders.insert(idx, sender)
        else:
            times.append(arrival)
            self.time_senders.append(sender)

    # -- queries --------------------------------------------------------
    def window_senders(self, start: float, end: float) -> set[int]:
        times = self.times
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        if lo >= hi:
            return set()
        if hi - lo == len(times):
            return set(self.per_sender)
        return set(self.time_senders[lo:hi])

    def latest_ascending(self) -> list[float]:
        cache = self.latest_sorted
        if cache is None:
            cache = sorted(a[-1] for a in self.per_sender.values())
            self.latest_sorted = cache
        return cache

    # -- pruning --------------------------------------------------------
    def prune_older_than(self, cutoff: float) -> int:
        times = self.times
        idx = bisect_left(times, cutoff)
        if idx == 0:
            return 0
        del times[:idx]
        del self.time_senders[:idx]
        dead: list[int] = []
        for sender, arrivals in self.per_sender.items():
            j = bisect_left(arrivals, cutoff)
            if j:
                if j == len(arrivals):
                    dead.append(sender)
                else:
                    del arrivals[:j]
        if dead:
            for sender in dead:
                del self.per_sender[sender]
            self.latest_sorted = None  # lost whole senders
        return idx

    def prune_future(self, now: float) -> int:
        times = self.times
        keep = bisect_right(times, now)
        total = len(times)
        if keep == total:
            return 0
        del times[keep:]
        del self.time_senders[keep:]
        dead: list[int] = []
        for sender, arrivals in self.per_sender.items():
            j = bisect_right(arrivals, now)
            if j != len(arrivals):
                if j == 0:
                    dead.append(sender)
                else:
                    del arrivals[j:]
        for sender in dead:
            del self.per_sender[sender]
        self.latest_sorted = None  # future stamps are always some latest
        return total - keep


class MessageLog:
    """Arrival-time log keyed by (message key, sender)."""

    def __init__(self) -> None:
        self._keys: dict[Key, _KeyLog] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, key: Key, sender: int, arrival_local: float) -> None:
        """Record one arrival."""
        klog = self._keys.get(key)
        if klog is None:
            klog = self._keys[key] = _KeyLog()
        klog.add(sender, arrival_local)

    def corrupt_insert(self, key: Key, sender: int, arrival_local: float) -> None:
        """Insert a fabricated record (transient-fault modelling)."""
        self.add(key, sender, arrival_local)

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def senders(self, key: Key) -> set[int]:
        """All senders with at least one record for the key."""
        klog = self._keys.get(key)
        return set(klog.per_sender) if klog is not None else set()

    def count_distinct(self, key: Key) -> int:
        """Number of distinct senders recorded for the key (any time)."""
        klog = self._keys.get(key)
        return len(klog.per_sender) if klog is not None else 0

    def distinct_senders_in(self, key: Key, start: float, end: float) -> set[int]:
        """Senders with at least one arrival in the closed window [start, end]."""
        klog = self._keys.get(key)
        if klog is None:
            return set()
        return klog.window_senders(start, end)

    def count_distinct_in(self, key: Key, start: float, end: float) -> int:
        """Number of distinct senders with an arrival in [start, end]."""
        klog = self._keys.get(key)
        if klog is None:
            return 0
        return len(klog.window_senders(start, end))

    def latest_arrival_per_sender(self, key: Key) -> dict[int, float]:
        """Latest recorded arrival per sender."""
        klog = self._keys.get(key)
        if klog is None:
            return {}
        return {sender: arrivals[-1] for sender, arrivals in klog.per_sender.items()}

    def kth_latest_distinct(self, key: Key, k: int) -> Optional[float]:
        """Start of the shortest window ending *now* with k distinct senders.

        Returns the k-th largest of the per-sender latest arrivals (i.e. the
        arrival time of the "slowest" member of the most recent k-quorum), or
        ``None`` if fewer than k distinct senders are recorded.  This
        implements the paper's "shortest interval [tau - a, tau]" phrasing in
        Block L.
        """
        klog = self._keys.get(key)
        if klog is None or len(klog.per_sender) < k or k <= 0:
            return None
        return klog.latest_ascending()[-k]

    def earliest_arrival(self, key: Key) -> Optional[float]:
        """Earliest arrival recorded for the key across all senders."""
        klog = self._keys.get(key)
        if klog is None or not klog.times:
            return None
        return klog.times[0]

    def has_from(self, key: Key, sender: int) -> bool:
        """True iff the key has a record from the given sender."""
        klog = self._keys.get(key)
        return klog is not None and sender in klog.per_sender

    # ------------------------------------------------------------------
    # Cleanup (the protocols' decay rules)
    # ------------------------------------------------------------------
    def prune_older_than(self, cutoff_local: float) -> int:
        """Drop records with arrival before ``cutoff_local``; return count."""
        dropped = 0
        empty_keys = []
        for key, klog in self._keys.items():
            dropped += klog.prune_older_than(cutoff_local)
            if not klog.per_sender:
                empty_keys.append(key)
        for key in empty_keys:
            del self._keys[key]
        return dropped

    def prune_future(self, now_local: float) -> int:
        """Drop records with arrival times in the (local) future.

        The paper: "Each time-stamped entry that is clearly wrong, with
        respect to the current clock reading ... is removed; i.e., future
        time stamps or too old time stamps."  Future stamps only arise from
        transient corruption.  (Matching the original implementation, a key
        emptied here keeps its -- empty -- entry; only age-pruning retires
        keys.)
        """
        dropped = 0
        for klog in self._keys.values():
            dropped += klog.prune_future(now_local)
        return dropped

    def remove_keys(self, keys: Iterable[Key]) -> None:
        """Remove all records for the given keys (N4's "remove all (G,m))."""
        for key in keys:
            self._keys.pop(key, None)

    def remove_matching(self, predicate) -> None:
        """Remove all records whose key satisfies the predicate."""
        for key in [k for k in self._keys if predicate(k)]:
            del self._keys[key]

    def clear(self) -> None:
        """Drop everything."""
        self._keys.clear()

    @property
    def keys(self) -> list[Key]:
        """All keys with at least one record."""
        return list(self._keys)

    def total_records(self) -> int:
        """Total number of stored arrivals (for memory-boundedness tests)."""
        return sum(len(klog.times) for klog in self._keys.values())


__all__ = ["MessageLog"]
