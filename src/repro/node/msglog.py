"""Per-node log of received protocol messages with arrival local-times.

The paper's primitives are condition-driven: every block is a predicate of
the form "received <kind> for (G, m) from at least k distinct nodes within
the local-time window [tau - a, tau]".  The log stores, per message *key*
(an arbitrary hashable, e.g. ``("support", G, m)``) and per authenticated
sender, the arrival local-times, and answers exactly those window queries.

Self-stabilization support: the log can be filled with arbitrary fabricated
records (:meth:`MessageLog.corrupt_insert`), modelling a node that wakes up
from a transient fault with spurious "received messages" in memory, and
pruned by age (the protocols' cleanup rules).

Fast path
---------
Window predicates are evaluated on *every* message arrival, so this module
is the single hottest query path in the simulator.  The log therefore keeps
incremental per-key state instead of rescanning records:

* a flat time-sorted pair of arrays ``(times, time_senders)`` per key, so a
  window query is two bisects plus a slice over only the in-window hits;
* per-sender sorted arrival lists (the authoritative record store), so
  per-sender queries and prunes stay local;
* a lazily cached ascending array of per-sender latest arrivals, so
  ``kth_latest_distinct`` is a cache lookup instead of a sort per call.

Arrivals are observed in nondecreasing local time during normal operation,
so every maintenance step above is an O(1) append; bisect-insertion only
happens for out-of-order (corrupted) arrivals.  The naive original
implementation survives as :class:`repro.node.msglog_ref.ReferenceMessageLog`
and ``tests/test_msglog_equiv.py`` proves behavioural equivalence.

Push path
---------
On top of the incremental storage, the log offers a *subscription* API for
the protocol blocks whose guards are anchored-window quorum counts
("received <kind> from >= k distinct nodes within [anchor, now]"):

* :meth:`MessageLog.watch` registers a :class:`FreshWindowWatch` on one
  (key, window-start) pair.  The watch maintains the distinct-sender count
  for the half-open-ended window ``[start, now]`` incrementally: a normal
  in-order arrival is a set insertion, not a window scan.
* A watch may carry quorum ``thresholds`` and a ``sentinel`` sender; the
  registered callback fires exactly when the count *crosses* a threshold or
  the sentinel's first in-window record matures -- this is what lets the
  msgd-broadcast primitive skip block evaluation entirely for arrivals that
  cannot change any decision.
* Future-stamped records (transient corruption) are parked in a per-watch
  min-heap and *mature* -- get counted, possibly firing the callback -- as
  the observed local time passes them, matching the lazy semantics of the
  eager window query they replace.
* Any operation the watch cannot track in O(1) (age/future pruning, key
  removal, clears) marks it stale; the next query rebuilds it with one
  ordinary window query.  Consumers that prune are expected to re-evaluate
  their guards unconditionally right after, so no crossing is ever lost.

``count_distinct_in`` itself also gained a fast path for the *sliding*
windows of Initiator-Accept (``[now - c*d, now]``): when the window end is
at or beyond the newest record, a sender has an in-window arrival iff its
latest arrival is >= the window start, so the cached ascending
latest-arrival array answers the count with a single bisect.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from heapq import heapify, heappop, heappush
from typing import Callable, Hashable, Iterable, Optional

Key = Hashable


class _KeyLog:
    """Incremental state for one message key."""

    __slots__ = ("per_sender", "times", "time_senders", "latest_sorted")

    def __init__(self) -> None:
        # sender -> sorted arrival local-times (never empty once present)
        self.per_sender: dict[int, list[float]] = {}
        # flat arrival axis: times is sorted, time_senders[i] sent times[i]
        self.times: list[float] = []
        self.time_senders: list[int] = []
        # ascending per-sender latest arrivals; None when stale
        self.latest_sorted: Optional[list[float]] = None

    # -- recording ------------------------------------------------------
    def add(self, sender: int, arrival: float) -> None:
        arrivals = self.per_sender.get(sender)
        cache = self.latest_sorted
        if arrivals is None:
            self.per_sender[sender] = [arrival]
            if cache is not None:
                insort(cache, arrival)
        elif arrival >= arrivals[-1]:
            old_latest = arrivals[-1]
            arrivals.append(arrival)
            if cache is not None and arrival != old_latest:
                del cache[bisect_left(cache, old_latest)]
                insort(cache, arrival)
        else:
            # out-of-order (corruption): sender's latest is unchanged
            insort(arrivals, arrival)
        times = self.times
        if times and arrival < times[-1]:
            idx = bisect_right(times, arrival)
            times.insert(idx, arrival)
            self.time_senders.insert(idx, sender)
        else:
            times.append(arrival)
            self.time_senders.append(sender)

    # -- queries --------------------------------------------------------
    def window_senders(self, start: float, end: float) -> set[int]:
        times = self.times
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        if lo >= hi:
            return set()
        if hi - lo == len(times):
            return set(self.per_sender)
        return set(self.time_senders[lo:hi])

    def latest_ascending(self) -> list[float]:
        cache = self.latest_sorted
        if cache is None:
            cache = sorted(a[-1] for a in self.per_sender.values())
            self.latest_sorted = cache
        return cache

    # -- pruning --------------------------------------------------------
    def prune_older_than(self, cutoff: float) -> int:
        times = self.times
        idx = bisect_left(times, cutoff)
        if idx == 0:
            return 0
        del times[:idx]
        del self.time_senders[:idx]
        dead: list[int] = []
        for sender, arrivals in self.per_sender.items():
            j = bisect_left(arrivals, cutoff)
            if j:
                if j == len(arrivals):
                    dead.append(sender)
                else:
                    del arrivals[:j]
        if dead:
            for sender in dead:
                del self.per_sender[sender]
            self.latest_sorted = None  # lost whole senders
        return idx

    def prune_future(self, now: float) -> int:
        times = self.times
        keep = bisect_right(times, now)
        total = len(times)
        if keep == total:
            return 0
        del times[keep:]
        del self.time_senders[keep:]
        dead: list[int] = []
        for sender, arrivals in self.per_sender.items():
            j = bisect_right(arrivals, now)
            if j != len(arrivals):
                if j == 0:
                    dead.append(sender)
                else:
                    del arrivals[j:]
        for sender in dead:
            del self.per_sender[sender]
        self.latest_sorted = None  # future stamps are always some latest
        return total - keep


class FreshWindowWatch:
    """Incremental distinct-sender counter for one ``[start, now]`` window.

    Created via :meth:`MessageLog.watch`.  ``count(now)`` / ``has(sender,
    now)`` answer exactly what ``count_distinct_in(key, start, now)`` /
    ``sender in distinct_senders_in(key, start, now)`` would, in O(1)
    amortized instead of a window scan.  ``now`` must be nondecreasing
    across queries (local clocks are monotone); records stamped beyond the
    highest ``now`` seen so far are parked in ``_pending`` and mature as
    time passes them.

    ``on_event`` (if given) fires with the watch as its argument whenever
    the distinct count *reaches* one of ``thresholds``, or the ``sentinel``
    sender's first in-window record matures.  It never fires from a stale
    rebuild: staleness only results from operations (prunes, removals)
    whose caller must re-evaluate its guards unconditionally anyway.
    """

    __slots__ = (
        "log",
        "key",
        "start",
        "thresholds",
        "sentinel",
        "on_event",
        "_matured",
        "_pending",
        "_hwm",
        "_stale",
        "cancelled",
    )

    def __init__(
        self,
        log: "MessageLog",
        key: Key,
        start: float,
        thresholds: frozenset[int],
        sentinel: Optional[int],
        on_event: Optional[Callable[["FreshWindowWatch"], None]],
    ) -> None:
        self.log = log
        self.key = key
        self.start = start
        self.thresholds = thresholds
        self.sentinel = sentinel
        self.on_event = on_event
        self._matured: set[int] = set()
        self._pending: list[tuple[float, int]] = []
        self._hwm = float("-inf")
        self._stale = True  # built lazily on first query
        self.cancelled = False

    # -- maintenance hooks (called by MessageLog) -----------------------
    def _on_add(self, sender: int, arrival: float, advances_time: bool) -> None:
        if self._stale:
            return  # rebuilt from the log on next query
        if advances_time and arrival > self._hwm:
            self._drain(arrival)
            self._hwm = arrival
        if arrival < self.start:
            return
        if arrival <= self._hwm:
            self._mature(sender)
        else:
            heappush(self._pending, (arrival, sender))

    def _mature(self, sender: int) -> None:
        matured = self._matured
        if sender in matured:
            return
        matured.add(sender)
        if self.on_event is not None and (
            sender == self.sentinel or len(matured) in self.thresholds
        ):
            self.log.watch_fires += 1
            self.on_event(self)

    def _drain(self, now: float) -> None:
        pending = self._pending
        while pending and pending[0][0] <= now:
            self._mature(heappop(pending)[1])

    def _rebuild(self, now: float) -> None:
        self._matured = self.log.distinct_senders_in(self.key, self.start, now)
        pending: list[tuple[float, int]] = []
        klog = self.log._keys.get(self.key)
        if klog is not None and klog.times and klog.times[-1] > now:
            idx = bisect_right(klog.times, now)
            start = self.start
            pending = [
                (t, s)
                for t, s in zip(klog.times[idx:], klog.time_senders[idx:])
                if t >= start
            ]
            heapify(pending)
        self._pending = pending
        self._hwm = now
        self._stale = False

    def _sync(self, now: float) -> None:
        if self._stale:
            self._rebuild(now)
        elif now > self._hwm:
            if self._pending:
                self._drain(now)
            self._hwm = now

    # -- queries --------------------------------------------------------
    def count(self, now: float) -> int:
        """Distinct senders with an arrival in ``[start, now]``."""
        self._sync(now)
        return len(self._matured)

    def has(self, sender: int, now: float) -> bool:
        """True iff ``sender`` has an arrival in ``[start, now]``."""
        self._sync(now)
        return sender in self._matured

    @property
    def has_pending(self) -> bool:
        """True if future-stamped (or unverified stale) records may mature."""
        return self._stale or bool(self._pending)

    def cancel(self) -> None:
        """Detach from the log (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            self.log._unwatch(self)


class MessageLog:
    """Arrival-time log keyed by (message key, sender)."""

    def __init__(self) -> None:
        self._keys: dict[Key, _KeyLog] = {}
        self._watches: dict[Key, list[FreshWindowWatch]] = {}
        #: Watch callbacks actually fired (threshold crossings / sentinel
        #: maturations).  Observability only -- never read by protocol code.
        self.watch_fires = 0

    def live_watch_count(self) -> int:
        """Currently registered (uncancelled) watches across all keys."""
        return sum(len(watches) for watches in self._watches.values())

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, key: Key, sender: int, arrival_local: float) -> None:
        """Record one arrival (stamped with the *current* local time)."""
        klog = self._keys.get(key)
        if klog is None:
            klog = self._keys[key] = _KeyLog()
        klog.add(sender, arrival_local)
        if self._watches:
            watches = self._watches.get(key)
            if watches:
                for watch in watches:
                    watch._on_add(sender, arrival_local, True)

    def corrupt_insert(self, key: Key, sender: int, arrival_local: float) -> None:
        """Insert a fabricated record (transient-fault modelling).

        Unlike :meth:`add`, the stamp is arbitrary -- it says nothing about
        the current local time, so watches must not treat it as a clock
        advance (a future stamp stays pending until real queries pass it).
        """
        klog = self._keys.get(key)
        if klog is None:
            klog = self._keys[key] = _KeyLog()
        klog.add(sender, arrival_local)
        if self._watches:
            watches = self._watches.get(key)
            if watches:
                for watch in watches:
                    watch._on_add(sender, arrival_local, False)

    # ------------------------------------------------------------------
    # Subscriptions (the push-based evaluators' fast path)
    # ------------------------------------------------------------------
    def watch(
        self,
        key: Key,
        start: float,
        thresholds: Iterable[int] = (),
        sentinel: Optional[int] = None,
        on_event: Optional[Callable[[FreshWindowWatch], None]] = None,
    ) -> FreshWindowWatch:
        """Subscribe an incremental ``[start, now]`` distinct-sender counter.

        ``on_event`` fires when the count reaches any of ``thresholds`` or
        when ``sentinel``'s first in-window record matures.  The caller owns
        the watch's lifetime: :meth:`FreshWindowWatch.cancel` detaches it.
        """
        watch = FreshWindowWatch(
            self, key, start, frozenset(thresholds), sentinel, on_event
        )
        self._watches.setdefault(key, []).append(watch)
        return watch

    def _unwatch(self, watch: FreshWindowWatch) -> None:
        watches = self._watches.get(watch.key)
        if watches is not None:
            try:
                watches.remove(watch)
            except ValueError:
                pass
            if not watches:
                del self._watches[watch.key]

    def _invalidate_watches(self, key: Optional[Key] = None) -> None:
        """Mark watches stale (all of them, or one key's)."""
        if not self._watches:
            return
        if key is None:
            for watches in self._watches.values():
                for watch in watches:
                    watch._stale = True
        else:
            for watch in self._watches.get(key, ()):
                watch._stale = True

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def senders(self, key: Key) -> set[int]:
        """All senders with at least one record for the key."""
        klog = self._keys.get(key)
        return set(klog.per_sender) if klog is not None else set()

    def count_distinct(self, key: Key) -> int:
        """Number of distinct senders recorded for the key (any time)."""
        klog = self._keys.get(key)
        return len(klog.per_sender) if klog is not None else 0

    def distinct_senders_in(self, key: Key, start: float, end: float) -> set[int]:
        """Senders with at least one arrival in the closed window [start, end]."""
        klog = self._keys.get(key)
        if klog is None:
            return set()
        return klog.window_senders(start, end)

    def count_distinct_in(self, key: Key, start: float, end: float) -> int:
        """Number of distinct senders with an arrival in [start, end].

        Fast path for the protocol's sliding windows ``[now - c*d, now]``:
        when ``end`` is at or beyond the newest record, every sender's
        latest arrival is <= ``end``, so a sender has an in-window arrival
        iff its latest arrival is >= ``start`` -- one bisect on the cached
        ascending latest-arrival array instead of a window scan.
        """
        klog = self._keys.get(key)
        if klog is None:
            return 0
        times = klog.times
        if not times:
            return 0
        if end >= times[-1]:
            if start <= times[0]:
                return len(klog.per_sender)
            latest = klog.latest_ascending()
            return len(latest) - bisect_left(latest, start)
        return len(klog.window_senders(start, end))

    def latest_arrival_per_sender(self, key: Key) -> dict[int, float]:
        """Latest recorded arrival per sender."""
        klog = self._keys.get(key)
        if klog is None:
            return {}
        return {sender: arrivals[-1] for sender, arrivals in klog.per_sender.items()}

    def kth_latest_distinct(self, key: Key, k: int) -> Optional[float]:
        """Start of the shortest window ending *now* with k distinct senders.

        Returns the k-th largest of the per-sender latest arrivals (i.e. the
        arrival time of the "slowest" member of the most recent k-quorum), or
        ``None`` if fewer than k distinct senders are recorded.  This
        implements the paper's "shortest interval [tau - a, tau]" phrasing in
        Block L.
        """
        klog = self._keys.get(key)
        if klog is None or len(klog.per_sender) < k or k <= 0:
            return None
        return klog.latest_ascending()[-k]

    def earliest_arrival(self, key: Key) -> Optional[float]:
        """Earliest arrival recorded for the key across all senders."""
        klog = self._keys.get(key)
        if klog is None or not klog.times:
            return None
        return klog.times[0]

    def has_from(self, key: Key, sender: int) -> bool:
        """True iff the key has a record from the given sender."""
        klog = self._keys.get(key)
        return klog is not None and sender in klog.per_sender

    # ------------------------------------------------------------------
    # Cleanup (the protocols' decay rules)
    # ------------------------------------------------------------------
    def prune_older_than(self, cutoff_local: float) -> int:
        """Drop records with arrival before ``cutoff_local``; return count."""
        dropped = 0
        empty_keys = []
        for key, klog in self._keys.items():
            dropped += klog.prune_older_than(cutoff_local)
            if not klog.per_sender:
                empty_keys.append(key)
        for key in empty_keys:
            del self._keys[key]
        if dropped:
            self._invalidate_watches()
        return dropped

    def prune_future(self, now_local: float) -> int:
        """Drop records with arrival times in the (local) future.

        The paper: "Each time-stamped entry that is clearly wrong, with
        respect to the current clock reading ... is removed; i.e., future
        time stamps or too old time stamps."  Future stamps only arise from
        transient corruption.  (Matching the original implementation, a key
        emptied here keeps its -- empty -- entry; only age-pruning retires
        keys.)
        """
        dropped = 0
        for klog in self._keys.values():
            dropped += klog.prune_future(now_local)
        if dropped:
            self._invalidate_watches()
        return dropped

    def remove_keys(self, keys: Iterable[Key]) -> None:
        """Remove all records for the given keys (N4's "remove all (G,m))."""
        for key in keys:
            if self._keys.pop(key, None) is not None:
                self._invalidate_watches(key)

    def remove_matching(self, predicate) -> None:
        """Remove all records whose key satisfies the predicate."""
        for key in [k for k in self._keys if predicate(k)]:
            del self._keys[key]
            self._invalidate_watches(key)

    def clear(self) -> None:
        """Drop everything."""
        self._keys.clear()
        self._invalidate_watches()

    @property
    def keys(self) -> list[Key]:
        """All keys with at least one record."""
        return list(self._keys)

    def total_records(self) -> int:
        """Total number of stored arrivals (for memory-boundedness tests)."""
        return sum(len(klog.times) for klog in self._keys.values())


__all__ = ["FreshWindowWatch", "MessageLog"]
