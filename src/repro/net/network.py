"""The message-passing fabric connecting nodes.

Responsibilities:

* point-to-point sends with authenticated sender identity (the receiver
  always learns the true ``sender`` -- the model's one unbreakable guarantee
  once the network is correct);
* per-copy delivery decisions delegated to the active
  :class:`~repro.net.delivery.DeliveryPolicy`;
* *spurious injection* for the transient period: the fault injector may put
  arbitrary messages with arbitrary claimed senders in flight, modelling the
  paper's "the communication network may behave arbitrarily";
* accounting (messages sent / delivered / dropped) for the complexity
  experiments.

Determinism across execution layouts
------------------------------------
Per-copy delivery randomness comes from *per-sender* streams (lazy
``rng.split(f"sender/{i}")`` children of the network's stream), not one
shared stream in global execution order.  A node's sends always happen while
that node's own events execute, so each sender's draw sequence depends only
on its own local history -- the property the sharded kernel
(:mod:`repro.sim.shard`) relies on to keep delay draws bit-identical no
matter which shard executes which node.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional

from repro.net.delivery import DeliveryPolicy
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer


@dataclass(frozen=True, slots=True)
class Envelope:
    """A delivered message as seen by the receiver."""

    sender: int
    receiver: int
    payload: object
    sent_at: float
    delivered_at: float


Receiver = Callable[[Envelope], None]


class Network:
    """Bounded-delay authenticated network bound to one simulator."""

    def __init__(
        self,
        sim: Simulator,
        policy: DeliveryPolicy,
        rng: RandomSource,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = sim
        self._policy = policy
        self._rng = rng
        self._sender_rngs: dict[int, RandomSource] = {}
        self._tracer = tracer
        self._receivers: dict[int, Receiver] = {}
        self._node_ids: Optional[list[int]] = None  # cached sorted ids
        self._partitioned: set[int] = set()
        self.sent_count = 0
        self.delivered_count = 0
        # Drop accounting is split by cause so scenario reports can attribute
        # loss: copies suppressed by a node cut (partition/crash isolation)
        # vs. copies the delivery policy chose to drop.
        self.dropped_partition = 0
        self.dropped_policy = 0

    @property
    def dropped_count(self) -> int:
        """Total dropped copies (partition-suppressed + policy-dropped)."""
        return self.dropped_partition + self.dropped_policy

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: int, receiver: Receiver) -> None:
        """Attach a node's message handler."""
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} already registered")
        self._receivers[node_id] = receiver
        self._node_ids = None

    @property
    def node_ids(self) -> list[int]:
        """All registered node identifiers, sorted."""
        if self._node_ids is None:
            self._node_ids = sorted(self._receivers)
        return list(self._node_ids)

    # ------------------------------------------------------------------
    # Policy control (scenario transitions, e.g. incoherent -> coherent)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> DeliveryPolicy:
        """The active delivery policy."""
        return self._policy

    def set_policy(self, policy: DeliveryPolicy) -> None:
        """Swap the delivery policy (e.g. when the network becomes correct)."""
        self._policy = policy

    def partition(self, node_id: int) -> None:
        """Disconnect a node entirely (crash / isolation modelling)."""
        self._partitioned.add(node_id)

    def heal(self, node_id: int) -> None:
        """Reconnect a partitioned node."""
        self._partitioned.discard(node_id)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, payload: object) -> None:
        """Send one message; the policy decides delay/drop per copy."""
        self.sent_count += 1
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    self._sim.now, sender, "send", receiver=receiver, payload=payload
                )
            else:
                tracer.bump("send")
        self._dispatch(sender, receiver, payload, authenticated=True)

    def broadcast(self, sender: int, payload: object) -> None:
        """Send one copy to every registered node (including the sender).

        The model has no broadcast medium: this is n point-to-point sends and
        a Byzantine sender may instead call :meth:`send` selectively.
        Semantically identical to n :meth:`send` calls, but done as one sweep
        over the cached id list with the per-copy policy decision and
        delivery scheduling inlined (no per-copy closure allocation).
        """
        if self._node_ids is None:
            self._node_ids = sorted(self._receivers)
        tracer = self._tracer
        counts_only = None
        if tracer is not None and not tracer.enabled:
            # Disabled tracer: batch-count the sends, skip per-copy event
            # builds, and keep only the count-only handle for drops.
            counts_only = tracer
            tracer = None
            counts_only.bump_many("send", len(self._node_ids))
        policy = self._policy
        rng = self._sender_rng(sender)
        now = self._sim.now
        sender_cut = sender in self._partitioned
        for receiver in self._node_ids:
            self.sent_count += 1
            if tracer is not None:
                tracer.record(now, sender, "send", receiver=receiver, payload=payload)
            if sender_cut or receiver in self._partitioned:
                self.dropped_partition += 1
                continue
            decision = policy.decide(sender, receiver, payload, rng)
            if decision.drop:
                if decision.partition:
                    self.dropped_partition += 1
                else:
                    self.dropped_policy += 1
                if tracer is not None:
                    tracer.record(
                        now, sender, "drop", receiver=receiver, payload=payload
                    )
                elif counts_only is not None:
                    counts_only.bump("drop")
                continue
            self._deliver_later(sender, receiver, payload, now, decision.delay)

    def inject_spurious(
        self,
        claimed_sender: int,
        receiver: int,
        payload: object,
        delay: float = 0.0,
    ) -> None:
        """Put a forged message in flight (transient-fault modelling only).

        Bypasses the delivery policy; the claimed sender identity is *not*
        authenticated.  Legal only while the network is faulty -- callers
        (the transient injector) enforce that scenario-side.
        """
        self._deliver_later(claimed_sender, receiver, payload, self._sim.now, delay)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sender_rng(self, sender: int) -> RandomSource:
        rng = self._sender_rngs.get(sender)
        if rng is None:
            rng = self._sender_rngs[sender] = self._rng.split(f"sender/{sender}")
        return rng

    def _dispatch(
        self, sender: int, receiver: int, payload: object, authenticated: bool
    ) -> None:
        if receiver not in self._receivers:
            raise ValueError(f"unknown receiver {receiver}")
        if sender in self._partitioned or receiver in self._partitioned:
            self.dropped_partition += 1
            return
        decision = self._policy.decide(sender, receiver, payload, self._sender_rng(sender))
        if decision.drop:
            if decision.partition:
                self.dropped_partition += 1
            else:
                self.dropped_policy += 1
            if self._tracer is not None:
                self._tracer.record(
                    self._sim.now, sender, "drop", receiver=receiver, payload=payload
                )
            return
        self._deliver_later(sender, receiver, payload, self._sim.now, decision.delay)

    def _deliver_later(
        self,
        sender: int,
        receiver: int,
        payload: object,
        sent_at: float,
        delay: float,
    ) -> None:
        # Deliveries are never cancelled: fire-and-forget scheduling skips
        # the per-copy EventHandle allocation and tag formatting.
        self._sim.schedule_fire(
            delay, partial(self._deliver_now, sender, receiver, payload, sent_at)
        )

    def _deliver_now(
        self, sender: int, receiver: int, payload: object, sent_at: float
    ) -> None:
        if receiver in self._partitioned:
            self.dropped_partition += 1
            return
        self.delivered_count += 1
        now = self._sim.now
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=sent_at,
            delivered_at=now,
        )
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    now, receiver, "deliver", sender=sender, payload=payload
                )
            else:
                tracer.bump("deliver")
        self._receivers[receiver](envelope)


__all__ = ["Envelope", "Network", "Receiver"]
