"""Authenticated bounded-delay message network (paper Definition 2).

When the network is *non-faulty* every message from a non-faulty node arrives
within ``delta`` real-time units with sender identity and content intact.
When it is *faulty* (the transient period before coherence) anything goes:
messages may be dropped, delayed arbitrarily, reordered, and spurious
messages with forged sender identities may be injected -- everything except
the one thing the model never allows, which is breaking sender
authentication *after* the network becomes correct.

The fabric keeps per-cause drop counters (``dropped_partition`` for copies
suppressed by a severed link or node cut, ``dropped_policy`` for ordinary
lossy-policy drops; ``dropped_count`` is their sum) so scenario reports can
attribute message loss to the adversary action that caused it.
"""

from repro.net.delivery import (
    AdversarialDelay,
    BurstyDelay,
    DeliveryDecision,
    DeliveryPolicy,
    FixedDelay,
    IncoherentDelivery,
    LinkPartitionPolicy,
    UniformDelay,
)
from repro.net.network import Envelope, Network

__all__ = [
    "AdversarialDelay",
    "BurstyDelay",
    "DeliveryDecision",
    "DeliveryPolicy",
    "Envelope",
    "FixedDelay",
    "IncoherentDelivery",
    "LinkPartitionPolicy",
    "Network",
    "UniformDelay",
]
