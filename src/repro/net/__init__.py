"""Authenticated bounded-delay message network (paper Definition 2).

When the network is *non-faulty* every message from a non-faulty node arrives
within ``delta`` real-time units with sender identity and content intact.
When it is *faulty* (the transient period before coherence) anything goes:
messages may be dropped, delayed arbitrarily, reordered, and spurious
messages with forged sender identities may be injected -- everything except
the one thing the model never allows, which is breaking sender
authentication *after* the network becomes correct.
"""

from repro.net.delivery import (
    AdversarialDelay,
    DeliveryDecision,
    DeliveryPolicy,
    FixedDelay,
    IncoherentDelivery,
    UniformDelay,
)
from repro.net.network import Envelope, Network

__all__ = [
    "AdversarialDelay",
    "DeliveryDecision",
    "DeliveryPolicy",
    "Envelope",
    "FixedDelay",
    "IncoherentDelivery",
    "Network",
    "UniformDelay",
]
