"""Delivery policies: who gets which message, when.

A policy maps (sender, receiver, payload) to a :class:`DeliveryDecision`.
Policies are where the *adversary controls the network* within the model's
bounds: any per-message delay in ``[delta_min, delta]`` is legal for a
correct network, and the paper's proofs must hold for every such choice, so
experiments sweep both benign (uniform) and adversarial (skew-maximizing)
policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.sim.rand import RandomSource


@dataclass(frozen=True)
class DeliveryDecision:
    """Outcome for a single (message, receiver) pair.

    ``delay`` is the real-time transit delay; ``drop`` wins over delay.
    ``partition`` marks a drop as partition-suppressed (a severed link)
    rather than an ordinary lossy-policy drop -- the network keeps separate
    counters so scenario reports can attribute loss to its cause.
    """

    delay: float = 0.0
    drop: bool = False
    partition: bool = False

    @staticmethod
    def dropped(partition: bool = False) -> "DeliveryDecision":
        return DeliveryDecision(delay=0.0, drop=True, partition=partition)


class DeliveryPolicy(Protocol):
    """Strategy interface consulted once per (message, receiver)."""

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        """Return the delivery decision for one copy of a message."""
        ...

    def min_delay(self) -> float:
        """A lower bound on the transit delay of any *delivered* copy.

        The sharded kernel (:mod:`repro.sim.shard`) uses this as its
        conservative-synchronization lookahead: a shard may safely execute
        everything below ``min(peer horizons) + min_delay()`` because no
        cross-shard message can arrive earlier.  The bound must hold for
        every copy the policy ever delivers (dropped copies are exempt --
        they never arrive); ``0.0`` is always sound but makes a policy
        unusable with more than one shard.
        """
        ...


class FixedDelay:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.delay = delay

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        return DeliveryDecision(delay=self.delay)

    def min_delay(self) -> float:
        return self.delay


class UniformDelay:
    """Delay drawn uniformly from ``[low, high]``, independently per copy."""

    def __init__(self, low: float, high: float) -> None:
        if not (0 <= low <= high):
            raise ValueError(f"invalid delay range [{low!r}, {high!r}]")
        self.low = low
        self.high = high

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        return DeliveryDecision(delay=rng.uniform(self.low, self.high))

    def min_delay(self) -> float:
        return self.low


class AdversarialDelay:
    """Maximizes arrival-time skew between receivers, within the legal bound.

    Receivers in ``fast_set`` get messages at ``delta_min``; everyone else at
    ``delta_max``.  This is the pattern the paper's trickiest lemmas (window
    boundaries in Blocks L/M) are exposed to: some correct nodes see a quorum
    "just in time" while others see it as late as legally possible.
    """

    def __init__(
        self, delta_min: float, delta_max: float, fast_set: frozenset[int]
    ) -> None:
        if not (0 <= delta_min <= delta_max):
            raise ValueError(f"invalid range [{delta_min!r}, {delta_max!r}]")
        self.delta_min = delta_min
        self.delta_max = delta_max
        self.fast_set = fast_set

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        if receiver in self.fast_set:
            return DeliveryDecision(delay=self.delta_min)
        return DeliveryDecision(delay=self.delta_max)

    def min_delay(self) -> float:
        return self.delta_min


class IncoherentDelivery:
    """Transient-period network behaviour: loss and unbounded delay.

    Used *before* the scenario declares coherence.  Each copy is independently
    dropped with ``drop_probability``, otherwise delayed uniformly up to
    ``max_delay`` (which may far exceed the model's ``delta``).
    """

    def __init__(self, drop_probability: float, max_delay: float) -> None:
        if not (0.0 <= drop_probability <= 1.0):
            raise ValueError(f"invalid probability {drop_probability!r}")
        if max_delay < 0:
            raise ValueError(f"negative max delay {max_delay!r}")
        self.drop_probability = drop_probability
        self.max_delay = max_delay

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        if rng.chance(self.drop_probability):
            return DeliveryDecision.dropped()
        return DeliveryDecision(delay=rng.uniform(0.0, self.max_delay))

    def min_delay(self) -> float:
        # Delivered copies may arrive instantly -- the transient-period
        # network offers no lookahead at all.
        return 0.0


class BurstyDelay:
    """Alternates between a fast regime and a congested regime.

    Real networks are rarely uniformly slow; they oscillate.  The policy
    switches regimes every ``period`` of real time (the caller supplies a
    clock via ``now_fn``, normally ``sim.now``-bound), staying within the
    legal ``[0, delta]`` envelope in both regimes so the model bound holds.
    """

    def __init__(
        self,
        now_fn,
        period: float,
        fast_max: float,
        slow_min: float,
        slow_max: float,
    ) -> None:
        if not (0 <= fast_max and 0 <= slow_min <= slow_max):
            raise ValueError("invalid delay regimes")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.now_fn = now_fn
        self.period = period
        self.fast_max = fast_max
        self.slow_min = slow_min
        self.slow_max = slow_max

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        phase = int(self.now_fn() / self.period) % 2
        if phase == 0:
            return DeliveryDecision(delay=rng.uniform(0.0, self.fast_max))
        return DeliveryDecision(delay=rng.uniform(self.slow_min, self.slow_max))

    def min_delay(self) -> float:
        # The fast regime's floor is zero regardless of the slow regime.
        return 0.0


class LinkPartitionPolicy:
    """Drops traffic across a node-set cut while active, else delegates.

    Models the *faulty-network* period's partitions: only legal before
    coherence (a correct network never partitions in this model), so
    scenarios must deactivate it (or heal the cut) before declaring the
    system coherent.
    """

    def __init__(self, inner: "DeliveryPolicy", island: frozenset[int]) -> None:
        self.inner = inner
        self.island = island
        self.active = True

    def heal(self) -> None:
        """Remove the cut (traffic resumes under the inner policy)."""
        self.active = False

    def decide(
        self, sender: int, receiver: int, payload: object, rng: RandomSource
    ) -> DeliveryDecision:
        if self.active and ((sender in self.island) != (receiver in self.island)):
            return DeliveryDecision.dropped(partition=True)
        return self.inner.decide(sender, receiver, payload, rng)

    def min_delay(self) -> float:
        # Cross-cut copies are dropped, never delayed, so the wrapper
        # inherits the inner policy's delivered-copy bound unchanged.
        return self.inner.min_delay()


__all__ = [
    "AdversarialDelay",
    "BurstyDelay",
    "DeliveryDecision",
    "DeliveryPolicy",
    "FixedDelay",
    "IncoherentDelivery",
    "LinkPartitionPolicy",
    "UniformDelay",
]
