"""The ss-Byz-Agree protocol (paper Section 3, Figure 1).

Per-General state machine layered on the two primitives:

* **Q0/Q1** -- the General disseminates ``(Initiator, G, m)``; receivers
  invoke Initiator-Accept.
* **R** -- if the node I-accepts within ``4d`` of its anchor it adopts the
  General's value, relays it via msgd-broadcast at round 1, and decides.
* **S** -- otherwise the node decides once it has accepted a chain of
  ``r`` relayed broadcasts ``(p_i, (G, m''), i)``, ``i = 1..r`` from distinct
  non-General nodes, within the round-``r`` deadline -- then relays at round
  ``r + 1``.
* **T/U** -- aborts: too few detected broadcasters for the elapsed round
  (T), or the hard ``(2f + 1) Phi`` deadline (U).
* **Cleanup** -- stale values decay; 3d after returning, the node resets the
  primitives and the anchor, which is what lets agreement instances recur.

The General-side Sending Validity Criteria (IG1 ``Delta_0`` pacing, IG2
``Delta_v`` same-value pacing, IG3 ``Delta_reset`` back-off after a failed
initiation) are enforced by :meth:`ProtocolNode.propose`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.initiator_accept import InitiatorAccept
from repro.core.messages import (
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
    Value,
)
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import BOTTOM, ProtocolParams
from repro.node.base import Node
from repro.runtime.api import Delivery, RandomStream


@dataclass(frozen=True)
class Decision:
    """The outcome of one agreement execution at one node.

    ``value is BOTTOM`` means the node *aborted*; otherwise it *decided*.
    ``tau_g_*`` is the anchor (the agreed initiation time estimate); it is
    present for aborts too when the node had an anchor.
    """

    node: int
    general: int
    value: Value
    tau_g_local: Optional[float]
    tau_g_real: Optional[float]
    returned_local: float
    returned_real: float

    @property
    def decided(self) -> bool:
        """True iff a non-BOTTOM value was returned."""
        return self.value is not BOTTOM


DecisionCallback = Callable[[Decision], None]


def distinct_chain_exists(per_level: dict[int, set[int]], r: int) -> bool:
    """Distinct origins p_1..p_r with an accepted (p_i, m, i) per level?

    A system-of-distinct-representatives check over levels 1..r, solved by
    backtracking (r <= f is small).  This is the eager reference predicate;
    :class:`SdrPrefixCache` memoizes it incrementally.
    """
    level_sets = []
    for i in range(1, r + 1):
        origins = per_level.get(i, set())
        if not origins:
            return False
        level_sets.append(origins)
    # Smallest sets first makes the backtracking near-linear in practice.
    order = sorted(range(r), key=lambda i: len(level_sets[i]))

    used: set[int] = set()

    def assign(idx: int) -> bool:
        if idx == r:
            return True
        for origin in level_sets[order[idx]]:
            if origin not in used:
                used.add(origin)
                if assign(idx + 1):
                    return True
                used.discard(origin)
        return False

    return assign(0)


class SdrPrefixCache:
    """Incremental cache of the feasible SDR prefix per candidate value.

    An SDR for levels ``1..r`` restricts to one for ``1..r-1``, so the set
    of feasible ``r`` is always a prefix ``1..max_sdr``; and adding origins
    to level sets can only *extend* that prefix.  Block S therefore needs a
    fresh backtracking search only for values whose origin sets grew since
    the last check -- and only upward from the cached prefix length.  Any
    shrinking mutation (cleanup decay, corruption) must call
    :meth:`invalidate`, which falls back to a from-scratch recompute.
    """

    __slots__ = ("_max", "_grown")

    def __init__(self) -> None:
        self._max: dict[Value, int] = {}
        self._grown: set[Value] = set()

    def grew(self, value: Value) -> None:
        """Record that a level set of ``value`` gained an origin."""
        self._grown.add(value)

    def invalidate(self) -> None:
        """Forget everything (level sets shrank or were rebuilt)."""
        self._max.clear()
        self._grown.clear()

    def prefix(
        self, value: Value, per_level: dict[int, set[int]], max_r: int
    ) -> int:
        """Longest ``r`` in ``0..max_r`` with an SDR over levels 1..r."""
        cached = self._max.get(value)
        if cached is not None and value not in self._grown:
            return cached
        m = cached or 0
        while m < max_r and distinct_chain_exists(per_level, m + 1):
            m += 1
        self._max[value] = m
        self._grown.discard(value)
        return m


class AgreementInstance:
    """One node's execution state for agreements initiated by one General."""

    def __init__(self, node: "ProtocolNode", general) -> None:
        self.node = node
        self.general = general
        # Concurrent-invocation support (paper footnote 9): an instance may
        # be keyed by (general_node_id, index); the authenticated-sender
        # checks always use the underlying node id.
        self.general_node_id = general if isinstance(general, int) else general[0]
        self.params = node.params
        self.ia = InitiatorAccept(node, general, self._on_i_accept)
        self.mb = MsgdBroadcast(node, general, self._on_mb_accept)

        self.tau_g: Optional[float] = None
        self.accepted_value: Optional[Value] = None  # m' from the I-accept
        self.stopped = False
        self.returned_at: Optional[float] = None
        # value -> level k -> set of origins whose (p, (G, m), k) we accepted
        self.accept_levels: dict[Value, dict[int, set[int]]] = {}
        self._deadline_timers: list = []
        self._reset_timer = None
        # Incremental Block-S state: cached SDR prefix per value, and the
        # round deadlines for the current anchor (recomputed if a transient
        # fault rewrites ``tau_g`` under us).
        self._sdr = SdrPrefixCache()
        self._round_deadlines: Optional[tuple[float, list[float]]] = None

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def handle(self, msg: object, sender: int) -> None:
        """Route one delivered protocol message to the right primitive."""
        # msgd-broadcast traffic dominates (4 kinds x n relays), so it is
        # dispatched first.
        if isinstance(msg, (MBInitMsg, MBEchoMsg, MBInitPrimeMsg, MBEchoPrimeMsg)):
            self.mb.on_message(msg, sender)
        elif isinstance(msg, (SupportMsg, ApproveMsg, ReadyMsg)):
            self.ia.on_message(msg, sender)
        elif isinstance(msg, InitiatorMsg):
            # Block Q1: invoke Initiator-Accept (only the General's own
            # Initiator message counts -- authenticated sender check).
            if sender == self.general_node_id and not self.stopped:
                self.ia.invoke(msg.value)
        else:
            raise TypeError(f"unknown protocol message: {msg!r}")

    # ------------------------------------------------------------------
    # Primitive callbacks
    # ------------------------------------------------------------------
    def _on_i_accept(self, value: Value, tau_g: float) -> None:
        if self.stopped:
            return
        if self.tau_g is not None:
            # At most one setting of tau_G per execution.
            return
        now = self.node.local_now()
        self.tau_g = tau_g
        self.accepted_value = value
        self.mb.set_anchor(tau_g)
        self._schedule_deadlines()
        if self.stopped:
            # The anchor-set backlog replay can complete an S-chain and
            # return synchronously; at most one of R..U runs per anchor.
            return

        # Block R: fresh I-accept -> decide now.  The paper's Figure 1 says
        # "tau_q - tau_G_q <= 4d", but its own IA-1D bound allows the gap to
        # reach 5d for a correct General (anchor >= t0 - d, accept <= t0 +
        # 4d), and executions at the legal-delay tail do reach ~4.2d -- with
        # a 4d guard every node rejects, nobody relays, and Validity fails.
        # We use the 5d bound IA-1D actually proves; every downstream
        # argument only needs this window to fit inside Phi = 8d (Lemma 8,
        # r = 0 case), which it does.
        if now - tau_g <= 5.0 * self.params.d:
            self._decide(value, relay_round=1)
        else:
            # Too stale for R; S may still decide from relayed broadcasts.
            self._check_s()

    def _on_mb_accept(self, origin: int, value: Value, k: int, now: float) -> None:
        if self.stopped:
            return
        if origin == self.general_node_id:
            # Block S requires p_i != G.
            return
        per_level = self.accept_levels.setdefault(value, {})
        origins = per_level.setdefault(k, set())
        if origin not in origins:
            origins.add(origin)
            self._sdr.grew(value)
        self._check_s()

    # ------------------------------------------------------------------
    # Block S: decide from a chain of relayed broadcasts
    # ------------------------------------------------------------------
    def _check_s(self) -> None:
        if self.stopped or self.tau_g is None:
            return
        now = self.node.local_now()
        deadlines = self._deadlines_for(self.tau_g)
        f = self.params.f
        sdr = self._sdr
        for r in range(1, f + 1):
            if now > deadlines[r - 1]:
                continue
            for value, per_level in self.accept_levels.items():
                if sdr.prefix(value, per_level, f) >= r:
                    self._decide(value, relay_round=r + 1)
                    return

    def _deadlines_for(self, tau_g: float) -> list[float]:
        """Round deadlines ``tau_G + (2r + 1) Phi``, cached per anchor."""
        cache = self._round_deadlines
        if cache is None or cache[0] != tau_g:
            p = self.params
            deadlines = [tau_g + p.round_deadline(r) for r in range(1, p.f + 1)]
            self._round_deadlines = (tau_g, deadlines)
            return deadlines
        return cache[1]

    def _distinct_chain_exists(
        self, per_level: dict[int, set[int]], r: int
    ) -> bool:
        """Eager SDR predicate (kept for tests; see module-level function)."""
        return distinct_chain_exists(per_level, r)

    # ------------------------------------------------------------------
    # Blocks T and U: aborts at round deadlines
    # ------------------------------------------------------------------
    def _schedule_deadlines(self) -> None:
        assert self.tau_g is not None
        now = self.node.local_now()
        epsilon = self.params.d * 1e-9
        for r in range(1, self.params.f + 2):
            target = self.tau_g + self.params.round_deadline(r) + epsilon
            delay = max(0.0, target - now)
            handle = self.node.after_local(
                delay, lambda r=r: self._at_deadline(r), tag=f"deadline:{self.general}:r{r}"
            )
            self._deadline_timers.append(handle)

    def _at_deadline(self, r: int) -> None:
        if self.stopped or self.tau_g is None:
            return
        now = self.node.local_now()
        # Block U: hard deadline at (2f + 1) Phi.
        if now > self.tau_g + self.params.round_deadline(self.params.f):
            self._abort()
            return
        # Block T: past round r's deadline with too few broadcasters.
        if now > self.tau_g + self.params.round_deadline(r):
            if len(self.mb.broadcasters) < r - 1:
                self._abort()

    # ------------------------------------------------------------------
    # Returning
    # ------------------------------------------------------------------
    def _decide(self, value: Value, relay_round: int) -> None:
        # Lines R2-R4 / S2-S4: adopt, relay, stop, return.
        self.mb.invoke(value, relay_round)
        self._return_value(value)

    def _abort(self) -> None:
        self._return_value(BOTTOM)

    def _return_value(self, value: Value) -> None:
        now = self.node.local_now()
        self.stopped = True
        self.returned_at = now
        tau_g_real = (
            self.node.real_at_local(self.tau_g)
            if self.tau_g is not None
            else None
        )
        decision = Decision(
            node=self.node.node_id,
            general=self.general,
            value=value,
            tau_g_local=self.tau_g,
            tau_g_real=tau_g_real,
            returned_local=now,
            returned_real=self.node.real_now(),
        )
        kind = "decide" if decision.decided else "abort"
        self.node.trace(
            kind,
            general=self.general,
            value=value,
            tau_g_local=self.tau_g,
            tau_g_real=tau_g_real,
        )
        self.node.record_decision(decision)
        # 3d after returning: reset the primitives, tau_G, and the anchor.
        self._reset_timer = self.node.after_local(
            3.0 * self.params.d, self._reset_after_return, tag=f"reset:{self.general}"
        )

    def _reset_after_return(self) -> None:
        self._reset_timer = None
        self.reset()

    def reset(self) -> None:
        """Reset this execution (keeps the General's pacing history)."""
        self.ia.reset()
        self.mb.reset()
        self.tau_g = None
        self.accepted_value = None
        self.stopped = False
        self.returned_at = None
        self.accept_levels.clear()
        self._sdr.invalidate()
        self._round_deadlines = None
        for handle in self._deadline_timers:
            handle.cancel()
        self._deadline_timers.clear()

    def retire(self) -> None:
        """Drop every live timer and all execution state for good.

        ``reset()`` deliberately leaves the 3d post-return timer pending (the
        paper's recurrence story needs it); a *retired* instance is being
        removed from the node entirely, so that timer must go too or it keeps
        the instance object alive in the timer wheel.
        """
        self.reset()
        if self._reset_timer is not None:
            self._reset_timer.cancel()
            self._reset_timer = None

    # ------------------------------------------------------------------
    # Cleanup (periodic)
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Decay stale state; self-heals a corrupted/stuck execution."""
        now = self.node.local_now()
        p = self.params
        self.ia.cleanup()
        self.mb.cleanup()
        horizon = p.delta_agr + 3.0 * p.d
        # A (possibly corrupted) anchor older than the whole agreement window
        # is stale: erase it (the paper's "erase any value ... older than
        # (2f + 1) Phi + 3d").
        if self.tau_g is not None and (self.tau_g > now or now - self.tau_g > horizon):
            self.reset()
            return
        # A return whose 3d reset timer was lost to a fault also self-heals.
        if self.returned_at is not None and (
            self.returned_at > now or now - self.returned_at > 4.0 * p.d
        ):
            self.reset()
            return
        # Stale accepted-broadcast evidence decays with the mb log; rebuild
        # the level sets from the surviving accepted records.  The sets may
        # shrink, so the cached SDR prefixes are no longer trustworthy.
        if self.accept_levels:
            survivors: dict[Value, dict[int, set[int]]] = {}
            for (origin, value, k), _t in self.mb.accepted.items():
                if origin == self.general_node_id:
                    continue
                survivors.setdefault(value, {}).setdefault(k, set()).add(origin)
            self.accept_levels = survivors
            self._sdr.invalidate()

    # ------------------------------------------------------------------
    # Transient corruption
    # ------------------------------------------------------------------
    def corrupt(self, rng: RandomStream, value_pool: list[Value]) -> None:
        """Scramble the whole execution state (transient fault)."""
        now = self.node.local_now()
        span = self.params.delta_stb
        self.ia.corrupt(rng, value_pool)
        self.mb.corrupt(rng, value_pool)
        if rng.chance(0.5):
            self.tau_g = now + rng.uniform(-span, span)
            self.accepted_value = rng.choice(value_pool)
        if rng.chance(0.3):
            self.stopped = True
            self.returned_at = now + rng.uniform(-span, span)
        for value in value_pool:
            if rng.chance(0.4):
                per_level = self.accept_levels.setdefault(value, {})
                for k in range(1, self.params.f + 2):
                    if rng.chance(0.4):
                        per_level.setdefault(k, set()).update(
                            rng.sample(range(self.params.n), rng.randint(1, 2))
                        )
        # The level sets were rewritten wholesale: recompute from scratch.
        self._sdr.invalidate()


class ProtocolNode(Node):
    """A correct node running ss-Byz-Agree for every General."""

    def __init__(
        self,
        node_id: int,
        ctx,  # a ProtocolHost, or a sim NodeContext (wrapped by Node)
        params: ProtocolParams,
        on_decision: Optional[DecisionCallback] = None,
        cleanup_interval_d: float = 1.0,
        resend_gap_d: float = 1.0,
    ) -> None:
        super().__init__(node_id, ctx)
        self.params = params
        self.cleanup_interval_d = cleanup_interval_d
        self.resend_gap_d = resend_gap_d
        self.instances: dict[int, AgreementInstance] = {}
        self.decisions: list[Decision] = []
        self.on_decision = on_decision
        # Service-layer hook: when set, a message for a general with *no*
        # existing instance only creates one if the gate returns True.  Lets
        # a long-lived process refuse to resurrect retired instance keys
        # from straggler relays without touching the protocol hot path.
        self.instance_gate: Optional[Callable[[object], bool]] = None
        # Watch fires folded in from retired instances, so the node-level
        # counter stays monotone across instance retirement (observability).
        self._retired_watch_fires = 0

        # General-side pacing state (Sending Validity Criteria).
        self._last_initiation: Optional[float] = None
        self._last_initiation_by_value: dict[Value, float] = {}
        self._failed_initiation_at: Optional[float] = None

        # Background cleanup, every d of local time (ablation-adjustable).
        self.every_local(
            self.cleanup_interval_d * self.params.d,
            self._cleanup_tick,
            tag=f"cleanup:{node_id}",
        )

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def instance(self, general: int) -> AgreementInstance:
        """Get (or lazily create) the execution state for one General."""
        if general not in self.instances:
            self.instances[general] = AgreementInstance(self, general)
        return self.instances[general]

    def retire_instance(self, general) -> bool:
        """Drop one instance's state and timers entirely (service layer).

        Unlike the periodic cleanup decay, this removes the instance from
        ``instances`` so the per-``d`` cleanup tick stops visiting it --
        essential when a long-lived process runs through thousands of
        slot-indexed instances.  Returns True iff the instance existed.
        """
        inst = self.instances.pop(general, None)
        if inst is None:
            return False
        self._retired_watch_fires += (
            inst.ia.log.watch_fires + inst.mb.log.watch_fires
        )
        inst.retire()
        return True

    def watch_fires(self) -> int:
        """Watch callbacks fired node-wide, retired instances included."""
        return self._retired_watch_fires + sum(
            inst.ia.log.watch_fires + inst.mb.log.watch_fires
            for inst in self.instances.values()
        )

    def live_watches(self) -> int:
        """Currently registered message-log watches across live instances."""
        return sum(
            inst.ia.log.live_watch_count() + inst.mb.log.live_watch_count()
            for inst in self.instances.values()
        )

    # ------------------------------------------------------------------
    # Block Q0: initiating an agreement as the General
    # ------------------------------------------------------------------
    def propose(self, value: Value) -> bool:
        """Initiate agreement on ``value`` with this node as the General.

        Enforces the Sending Validity Criteria; returns False (and sends
        nothing) if pacing forbids initiating now.
        """
        now = self.local_now()
        if not self.may_propose(value):
            self.trace("propose_refused", value=value)
            return False
        # The General removes prior messages associated with its own
        # invocations before initiating (Section 4).
        own = self.instance(self.node_id)
        own.ia.log.clear()

        self._last_initiation = now
        self._last_initiation_by_value[value] = now
        self.trace("propose", value=value)
        self.broadcast(InitiatorMsg(self.node_id, value))
        self._watch_own_initiation(value, now)
        return True

    def may_propose(self, value: Value) -> bool:
        """Check IG1 (Delta_0), IG2 (Delta_v), IG3 (Delta_reset back-off)."""
        now = self.local_now()
        p = self.params
        if self._last_initiation is not None and (
            now - self._last_initiation < p.delta_0
        ):
            return False
        last_same = self._last_initiation_by_value.get(value)
        if last_same is not None and now - last_same < p.delta_v:
            return False
        if self._failed_initiation_at is not None and (
            now - self._failed_initiation_at < p.delta_reset
        ):
            return False
        return True

    def _watch_own_initiation(self, value: Value, started: float) -> None:
        """IG3: watch own L4/M4/N4 progress; mark failure if any is late."""
        ia = self.instance(self.node_id).ia
        checks = (("L4", 2.0), ("M4", 3.0), ("N4", 4.0))
        epsilon = self.params.d * 1e-9

        def make_check(line: str, bound_d: float):
            def check() -> None:
                executed = ia.line_exec.get((line, value))
                if executed is None or executed < started:
                    if self._failed_initiation_at is None or (
                        self._failed_initiation_at < started
                    ):
                        self._failed_initiation_at = self.local_now()
                        self.trace(
                            "initiation_failed", value=value, missing_line=line
                        )

            return check

        for line, bound_d in checks:
            self.after_local(
                bound_d * self.params.d + epsilon,
                make_check(line, bound_d),
                tag=f"ig3:{line}",
            )

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_message(self, envelope: Delivery) -> None:
        msg = envelope.payload
        general = getattr(msg, "general", None)
        if general is None:
            return  # not an ss-Byz-Agree message; ignore silently
        inst = self.instances.get(general)
        if inst is None:
            gate = self.instance_gate
            if gate is not None and not gate(general):
                return
            inst = self.instance(general)
        inst.handle(msg, envelope.sender)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def record_decision(self, decision: Decision) -> None:
        """Store a completed execution's outcome and notify the observer."""
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)

    def decisions_for(self, general: int) -> list[Decision]:
        """All recorded outcomes for one General, in return order."""
        return [dec for dec in self.decisions if dec.general == general]

    # ------------------------------------------------------------------
    # Background cleanup and corruption
    # ------------------------------------------------------------------
    def _cleanup_tick(self) -> None:
        for inst in self.instances.values():
            inst.cleanup()
        # General-side pacing stamps: future stamps are "clearly wrong" and
        # are removed (transient-fault hygiene); stale ones have expired
        # anyway and are dropped to bound memory.
        now = self.local_now()
        p = self.params
        if self._last_initiation is not None and (
            self._last_initiation > now or now - self._last_initiation > p.delta_v
        ):
            self._last_initiation = None
        for value in list(self._last_initiation_by_value):
            stamp = self._last_initiation_by_value[value]
            if stamp > now or now - stamp > p.delta_v:
                del self._last_initiation_by_value[value]
        if self._failed_initiation_at is not None and (
            self._failed_initiation_at > now
            or now - self._failed_initiation_at > p.delta_reset
        ):
            self._failed_initiation_at = None

    def corrupt(self, rng: RandomStream, value_pool: list[Value]) -> None:
        """Transient fault: scramble all protocol state on this node."""
        self.trace("corrupt")
        for inst in self.instances.values():
            inst.corrupt(rng, value_pool)
        if rng.chance(0.5):
            self._last_initiation = self.local_now() + rng.uniform(
                -self.params.delta_stb, self.params.delta_stb
            )
        if rng.chance(0.3):
            self._failed_initiation_at = self.local_now() + rng.uniform(
                -self.params.delta_stb, 0
            )


__all__ = [
    "AgreementInstance",
    "Decision",
    "DecisionCallback",
    "ProtocolNode",
    "SdrPrefixCache",
    "distinct_chain_exists",
]
