"""The paper's contribution: ss-Byz-Agree and its two building blocks.

* :mod:`repro.core.params` -- the timing-constant algebra of Section 3.
* :mod:`repro.core.messages` -- the protocol message vocabulary.
* :mod:`repro.core.initiator_accept` -- the Initiator-Accept primitive
  (Section 4, Figure 2).
* :mod:`repro.core.msgd_broadcast` -- the message-driven reliable broadcast
  primitive (Section 5, Figure 3).
* :mod:`repro.core.agreement` -- the ss-Byz-Agree protocol proper
  (Section 3, Figure 1) and the per-node orchestration.
"""

from repro.core.agreement import AgreementInstance, Decision, ProtocolNode
from repro.core.initiator_accept import InitiatorAccept
from repro.core.messages import (
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
)
from repro.core.msgd_broadcast import MsgdBroadcast
from repro.core.params import BOTTOM, ProtocolParams

__all__ = [
    "AgreementInstance",
    "ApproveMsg",
    "BOTTOM",
    "Decision",
    "InitiatorAccept",
    "InitiatorMsg",
    "MBEchoMsg",
    "MBEchoPrimeMsg",
    "MBInitMsg",
    "MBInitPrimeMsg",
    "MsgdBroadcast",
    "ProtocolNode",
    "ProtocolParams",
    "ReadyMsg",
    "SupportMsg",
]
