"""Reference (pull-based) evaluators for the two primitives.

These are the *eager* evaluators exactly as they stood before the push-based
rewrite of :mod:`repro.core.msgd_broadcast` and
:mod:`repro.core.initiator_accept`: every message arrival re-runs the full
block cascade, and every block re-issues its window queries against the
message log.  They are kept verbatim as the behavioural oracle for the
incremental evaluators -- ``tests/test_eval_equiv.py`` drives both through
thousands of randomized adversarial schedules (Byzantine corruption,
pruning, anchor resets) and demands identical send/accept/trace sequences,
and ``benchmarks/bench_perf_kernel.py`` pits them head to head (the push
path must win by >= 3x; that gate is the regression tripwire).

Do not "optimize" this module -- its eagerness is its value.  It mirrors
the differential-reference pattern of :mod:`repro.node.msglog_ref`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.messages import (
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
    Value,
)
from repro.node.msglog import MessageLog
from repro.runtime.api import ProtocolHost, RandomStream



def eager_fresh_senders(log: MessageLog, key, start: float, now: float) -> set:
    """The eager oracle for one anchored window: a full rescan, no caches.

    Recomputes "senders with an arrival in the closed window [start, now]"
    straight from the log's raw per-sender records -- the semantics every
    fresh-window count in this module's evaluators (and the incremental
    :meth:`~repro.node.msglog.MessageLog.watch` counters that replace them)
    must reproduce.  ``tests/test_eval_equiv.py`` fuzzes the watch API
    against this function through long adversarial schedules.
    """
    klog = log._keys.get(key)
    if klog is None:
        return set()
    return {
        sender
        for sender, arrivals in klog.per_sender.items()
        if any(start <= arrival <= now for arrival in arrivals)
    }


# Callback signatures shared with the incremental evaluators.
MbAcceptCallback = Callable[[int, Value, int, float], None]
BroadcasterCallback = Optional[Callable[[int], None]]
IaAcceptCallback = Callable[[Value, float], None]

Triplet = tuple[int, Value, int]  # (p, m, k)


class ReferenceMsgdBroadcast:
    """Pull-based msgd-broadcast context: all (p, m, k) triplets for one General."""

    INIT = "mb_init"
    ECHO = "mb_echo"
    INIT_PRIME = "mb_init_prime"
    ECHO_PRIME = "mb_echo_prime"

    def __init__(
        self,
        host: ProtocolHost,
        general: int,
        on_accept: MbAcceptCallback,
        on_broadcaster: BroadcasterCallback = None,
    ) -> None:
        self.host = host
        self.general = general
        self.on_accept = on_accept
        self.on_broadcaster = on_broadcaster
        self.params = host.params

        self.anchor: Optional[float] = None  # tau_G on this node's clock
        self.log = MessageLog()
        self.broadcasters: dict[int, float] = {}  # node -> local add time
        self.accepted: dict[Triplet, float] = {}  # triplet -> local accept time
        self._sent: set[tuple[str, Triplet]] = set()
        self._known_triplets: set[Triplet] = set()

    # ------------------------------------------------------------------
    # Anchor management
    # ------------------------------------------------------------------
    def set_anchor(self, tau_g: float) -> None:
        """Define ``tau_G``; replays any backlog logged before it was known."""
        self.anchor = tau_g
        for triplet in sorted(self._known_triplets, key=repr):
            self.evaluate(triplet)

    def clear_anchor(self) -> None:
        """Undefine the anchor (instance reset)."""
        self.anchor = None

    # ------------------------------------------------------------------
    # Invocation (Block V)
    # ------------------------------------------------------------------
    def invoke(self, value: Value, k: int) -> None:
        """msgd-broadcast (q, value, k): send init to all (Line V)."""
        msg = MBInitMsg(self.general, self.host.node_id, value, k)
        self.host.broadcast(msg)
        self.host.trace(
            "mb_invoke", general=self.general, value=value, k=k
        )

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_message(self, msg: object, sender: int) -> None:
        """Log an arriving message; evaluate blocks if the anchor is known."""
        now = self.host.now()
        if isinstance(msg, MBInitMsg):
            # Only the origin itself can init its own broadcast; the network
            # authenticates senders, so an init claiming another origin is
            # Byzantine noise and is discarded (Line W2: "received ... from p").
            if sender != msg.origin:
                return
            kind = self.INIT
        elif isinstance(msg, MBEchoMsg):
            kind = self.ECHO
        elif isinstance(msg, MBInitPrimeMsg):
            kind = self.INIT_PRIME
        elif isinstance(msg, MBEchoPrimeMsg):
            kind = self.ECHO_PRIME
        else:
            raise TypeError(f"not a msgd-broadcast message: {msg!r}")
        triplet: Triplet = (msg.origin, msg.value, msg.k)
        self._known_triplets.add(triplet)
        self.log.add((kind,) + triplet, sender, now)
        if self.anchor is not None:
            self.evaluate(triplet)

    # ------------------------------------------------------------------
    # Blocks W, X, Y, Z
    # ------------------------------------------------------------------
    def evaluate(self, triplet: Triplet) -> None:
        """Re-run the blocks for one (p, m, k) triplet."""
        if self.anchor is None:
            return
        now = self.host.now()
        origin, value, k = triplet
        p = self.params
        phi = p.phi
        anchor = self.anchor

        init_key = (self.INIT,) + triplet
        echo_key = (self.ECHO,) + triplet
        initp_key = (self.INIT_PRIME,) + triplet
        echop_key = (self.ECHO_PRIME,) + triplet

        # Primitive instances are "implicitly associated with the agreement
        # instance that invoked them" (paper Section 3): only messages that
        # arrived within *this* execution -- i.e. at or after the anchor --
        # count as evidence.  Stragglers of a previous execution of the same
        # General predate the current anchor and are scoped out.
        def fresh_count(key) -> int:
            return self.log.count_distinct_in(key, anchor, now)

        # Block W: tau_q <= tau_G + 2k Phi -- echo the origin's init.
        if now <= anchor + 2 * k * phi:
            if origin in self.log.distinct_senders_in(init_key, anchor, now):
                self._send_once(self.ECHO, triplet, MBEchoMsg(*((self.general,) + triplet)))

        # Block X: tau_q <= tau_G + (2k + 1) Phi.
        if now <= anchor + (2 * k + 1) * phi:
            echoes = fresh_count(echo_key)
            if echoes >= p.weak_quorum:
                self._send_once(
                    self.INIT_PRIME, triplet, MBInitPrimeMsg(*((self.general,) + triplet))
                )
            if echoes >= p.strong_quorum:
                self._accept(triplet, now)

        # Block Y: tau_q <= tau_G + (2k + 2) Phi.
        if now <= anchor + (2 * k + 2) * phi:
            init_primes = fresh_count(initp_key)
            if init_primes >= p.weak_quorum and origin not in self.broadcasters:
                self.broadcasters[origin] = now
                self.host.trace(
                    "mb_broadcaster", general=self.general, origin=origin, k=k
                )
                if self.on_broadcaster is not None:
                    self.on_broadcaster(origin)
            if init_primes >= p.strong_quorum:
                self._send_once(
                    self.ECHO_PRIME, triplet, MBEchoPrimeMsg(*((self.general,) + triplet))
                )

        # Block Z: at any time.
        echo_primes = fresh_count(echop_key)
        if echo_primes >= p.weak_quorum:
            self._send_once(
                self.ECHO_PRIME, triplet, MBEchoPrimeMsg(*((self.general,) + triplet))
            )
        if echo_primes >= p.strong_quorum:
            self._accept(triplet, now)

    def _send_once(self, kind: str, triplet: Triplet, payload: object) -> None:
        """Nodes send specific messages only once (Figure 3 header note)."""
        if (kind, triplet) in self._sent:
            return
        self._sent.add((kind, triplet))
        self.host.broadcast(payload)
        self.host.trace(
            f"{kind}_sent",
            general=self.general,
            origin=triplet[0],
            value=triplet[1],
            k=triplet[2],
        )

    def _accept(self, triplet: Triplet, now: float) -> None:
        """Accept (p, m, k) -- only once per triplet (Line Z5 note)."""
        if triplet in self.accepted:
            return
        self.accepted[triplet] = now
        origin, value, k = triplet
        self.host.trace(
            "mb_accept", general=self.general, origin=origin, value=value, k=k
        )
        self.on_accept(origin, value, k, now)

    # ------------------------------------------------------------------
    # Cleanup, reset, corruption
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Decay rule: drop messages older than ``(2f + 3) Phi``."""
        now = self.host.now()
        horizon = (2 * self.params.f + 3) * self.params.phi
        self.log.prune_older_than(now - horizon)
        self.log.prune_future(now)
        # Stale derived state ages out on the same horizon.
        self.broadcasters = {
            node: t for node, t in self.broadcasters.items() if now - t <= horizon
        }
        self.accepted = {
            trip: t
            for trip, t in self.accepted.items()
            if now - t <= horizon and t <= now
        }
        self._known_triplets = {
            trip
            for trip in self._known_triplets
            if any(
                self.log.count_distinct((kind,) + trip) > 0
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME)
            )
        } | set(self.accepted)

    def reset(self) -> None:
        """Full reset (3d after the agreement instance returns)."""
        self.anchor = None
        self.log.clear()
        self.broadcasters.clear()
        self.accepted.clear()
        self._sent.clear()
        self._known_triplets.clear()
        self.host.trace("mb_reset", general=self.general)

    def corrupt(self, rng: RandomStream, value_pool: list[Value]) -> None:
        """Transient fault: scramble anchor, logs, and derived sets."""
        now = self.host.now()
        p = self.params
        span = p.delta_stb
        if rng.chance(0.5):
            self.anchor = now + rng.uniform(-span, span)
        for node in range(p.n):
            if rng.chance(0.3):
                self.broadcasters[node] = now + rng.uniform(-span, 0)
        for value in value_pool:
            for k in range(1, p.f + 2):
                triplet: Triplet = (rng.randint(0, p.n - 1), value, k)
                self._known_triplets.add(triplet)
                if rng.chance(0.3):
                    self.accepted[triplet] = now + rng.uniform(-span, 0)
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME):
                    for sender in range(p.n):
                        if rng.chance(0.15):
                            self.log.corrupt_insert(
                                (kind,) + triplet, sender, now + rng.uniform(-span, span)
                            )
        self.host.trace("mb_corrupted", general=self.general)




@dataclass
class _IValueEntry:
    """One entry of ``i_values[G, *]``: a recording time plus its write time."""

    recording: float
    written_at: float


class _TimedFlag:
    """A boolean that remembers when it was last set (for decay)."""

    __slots__ = ("set_at",)

    def __init__(self) -> None:
        self.set_at: Optional[float] = None

    def set(self, now: float) -> None:
        self.set_at = now

    def is_set(self, now: float, max_age: float) -> bool:
        return (
            self.set_at is not None
            and self.set_at <= now
            and now - self.set_at <= max_age
        )

    def clear(self) -> None:
        self.set_at = None


class _HistoryVar:
    """A scalar with a change history, answering "what was it at time T?".

    Used for ``last(G, m)``: Line K1 needs its value *d time units in the
    past* (the data structure "reflects that information", per the paper).
    """

    def __init__(self) -> None:
        self.current: Optional[float] = None
        self._history: list[tuple[float, Optional[float]]] = []

    def assign(self, now: float, value: Optional[float]) -> None:
        self.current = value
        self._history.append((now, value))

    def value_at(self, when: float) -> Optional[float]:
        """Value at an earlier time; entries before any record are BOTTOM."""
        result: Optional[float] = None
        for time, value in self._history:
            if time <= when:
                result = value
            else:
                break
        return result

    def prune(self, horizon: float) -> None:
        """Drop history before ``horizon`` keeping the last earlier entry."""
        keep_from = 0
        for idx, (time, _value) in enumerate(self._history):
            if time < horizon:
                keep_from = idx
        self._history = self._history[keep_from:]


class ReferenceInitiatorAccept:
    """Pull-based Initiator-Accept instance: this node's view of General ``G``."""

    SUPPORT = "support"
    APPROVE = "approve"
    READY = "ready"

    def __init__(
        self,
        host: ProtocolHost,
        general: int,
        on_accept: IaAcceptCallback,
    ) -> None:
        self.host = host
        self.general = general
        self.on_accept = on_accept
        self.params = host.params
        self.log = MessageLog()

        # The paper's per-(G, m) data structures.
        self.i_values: dict[Value, _IValueEntry] = {}
        self.last_g: Optional[float] = None
        self.last_gm: dict[Value, _HistoryVar] = {}
        self.ready: dict[Value, _TimedFlag] = {}
        self.ignore_until: dict[Value, float] = {}

        # Implementation bookkeeping.
        self._own_support_sends: list[tuple[float, Value]] = []
        self._sent_at: dict[tuple[str, Value], float] = {}
        self.line_exec: dict[tuple[str, Value], float] = {}
        # Re-send throttle gap (the ablation bench sweeps this).
        self.resend_gap = host.params.d * getattr(host, "resend_gap_d", 1.0)

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.host.now()

    def _key(self, kind: str, value: Value):
        return (kind, self.general, value)

    def _last_gm(self, value: Value) -> _HistoryVar:
        if value not in self.last_gm:
            self.last_gm[value] = _HistoryVar()
        return self.last_gm[value]

    def _touch_last_gm(self, value: Value, now: float) -> None:
        self._last_gm(value).assign(now, now)

    def _ready_flag(self, value: Value) -> _TimedFlag:
        if value not in self.ready:
            self.ready[value] = _TimedFlag()
        return self.ready[value]

    def _may_send(self, kind: str, value: Value, now: float) -> bool:
        """Re-send throttle: identical messages at most once per ``d``.

        The paper allows unbounded repetition ("we ignore possible
        optimizations that can save such repetitive sending"); the proofs
        only rely on the *existence* of the sends, so throttling to one per
        ``d`` preserves every liveness argument while keeping message counts
        meaningful for the complexity experiments.
        """
        sent = self._sent_at.get((kind, value))
        return sent is None or now - sent > self.resend_gap

    def _do_send(self, kind: str, value: Value, payload: object) -> None:
        now = self._now()
        self._sent_at[(kind, value)] = now
        if kind == self.SUPPORT:
            self._own_support_sends.append((now, value))
        self.host.broadcast(payload)
        self.host.trace(f"ia_{kind}_sent", general=self.general, value=value)

    def _ignoring(self, value: Value, now: float) -> bool:
        return self.ignore_until.get(value, -float("inf")) > now

    # ------------------------------------------------------------------
    # Block K: invocation (on receiving the General's Initiator message)
    # ------------------------------------------------------------------
    def invoke(self, value: Value) -> bool:
        """Execute Block K; returns True iff Line K1 passed (K2 executed)."""
        now = self._now()
        d = self.params.d
        if self._ignoring(value, now):
            return False
        if not self._k1_condition(value, now):
            self.host.trace("ia_k1_rejected", general=self.general, value=value)
            return False
        # Line K2: record a time prior to the invocation (hence the -d),
        # send support to all, and stamp last(G, m).
        self.i_values[value] = _IValueEntry(recording=now - d, written_at=now)
        self._do_send(self.SUPPORT, value, SupportMsg(self.general, value))
        self._touch_last_gm(value, now)
        self.line_exec[("K2", value)] = now
        return True

    def _k1_condition(self, value: Value, now: float) -> bool:
        d = self.params.d
        # i_values[G, m'] = BOTTOM for every m' != m  (current state).
        for other, entry in self.i_values.items():
            if other != value and self._i_value_live(entry, now):
                return False
        # last(G) = BOTTOM  (current state).
        if self.last_g is not None:
            return False
        # Did not send any (support, G, *) in [tau - d, tau].
        if any(now - d <= t <= now for t, _v in self._own_support_sends):
            return False
        # last(G, m) = BOTTOM at tau - d  (state d time units ago).
        history = self.last_gm.get(value)
        if history is not None and history.value_at(now - d) is not None:
            return False
        return True

    def _i_value_live(self, entry: _IValueEntry, now: float) -> bool:
        return (
            entry.written_at <= now
            and now - entry.written_at <= self.params.delta_rmv
        )

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_message(self, msg: object, sender: int) -> None:
        """Log an arriving primitive message and re-evaluate the blocks."""
        now = self._now()
        if isinstance(msg, InitiatorMsg):
            # Block Q1 of the caller routes Initiator messages to invoke();
            # they are not logged here.
            return
        if isinstance(msg, SupportMsg):
            kind = self.SUPPORT
        elif isinstance(msg, ApproveMsg):
            kind = self.APPROVE
        elif isinstance(msg, ReadyMsg):
            kind = self.READY
        else:
            raise TypeError(f"not an Initiator-Accept message: {msg!r}")
        value = msg.value  # type: ignore[attr-defined]
        if self._ignoring(value, now):
            return
        self.log.add(self._key(kind, value), sender, now)
        self.evaluate(value)

    # ------------------------------------------------------------------
    # Blocks L, M, N (guards over the message log)
    # ------------------------------------------------------------------
    def evaluate(self, value: Value) -> None:
        """Re-run Lines L1..N4 for one value (the paper's "repeatedly")."""
        now = self._now()
        if self._ignoring(value, now):
            return
        self._block_l(value, now)
        self._block_m(value, now)
        self._block_n(value, now)

    def _block_l(self, value: Value, now: float) -> None:
        p = self.params
        d = p.d
        support_key = self._key(self.SUPPORT, value)

        # L1/L2: weak quorum of support within the shortest window <= 4d.
        kth = self.log.kth_latest_distinct(support_key, p.weak_quorum)
        if kth is not None and now - kth <= 4.0 * d:
            new_recording = kth - 2.0 * d
            entry = self.i_values.get(value)
            if entry is None or not self._i_value_live(entry, now):
                self.i_values[value] = _IValueEntry(new_recording, now)
            elif new_recording > entry.recording:
                self.i_values[value] = _IValueEntry(new_recording, now)
            else:
                entry.written_at = now  # refresh expiry
            self._touch_last_gm(value, now)
            self.line_exec[("L2", value)] = now

        # L3/L4: strong quorum of support within [tau - 2d, tau] -> approve.
        strong = self.log.count_distinct_in(support_key, now - 2.0 * d, now)
        if strong >= p.strong_quorum and self._may_send(self.APPROVE, value, now):
            self._do_send(self.APPROVE, value, ApproveMsg(self.general, value))
            self._touch_last_gm(value, now)
            self.line_exec[("L4", value)] = now

    def _block_m(self, value: Value, now: float) -> None:
        p = self.params
        d = p.d
        approve_key = self._key(self.APPROVE, value)

        # M1/M2: weak quorum of approve within [tau - 5d, tau] -> ready flag.
        weak = self.log.count_distinct_in(approve_key, now - 5.0 * d, now)
        if weak >= p.weak_quorum:
            self._ready_flag(value).set(now)
            self._touch_last_gm(value, now)
            self.line_exec[("M2", value)] = now

        # M3/M4: strong quorum of approve within [tau - 3d, tau] -> ready msg.
        strong = self.log.count_distinct_in(approve_key, now - 3.0 * d, now)
        if strong >= p.strong_quorum and self._may_send(self.READY, value, now):
            self._do_send(self.READY, value, ReadyMsg(self.general, value))
            self._touch_last_gm(value, now)
            self.line_exec[("M4", value)] = now

    def _block_n(self, value: Value, now: float) -> None:
        p = self.params
        ready_key = self._key(self.READY, value)
        if not self._ready_flag(value).is_set(now, p.delta_rmv):
            return

        # N1/N2: weak quorum of ready messages -> amplify.
        count = self.log.count_distinct(ready_key)
        if count >= p.weak_quorum and self._may_send(self.READY, value, now):
            self._do_send(self.READY, value, ReadyMsg(self.general, value))
            self._touch_last_gm(value, now)
            self.line_exec[("N2", value)] = now

        # N3/N4: strong quorum of ready messages -> I-accept.
        if count >= p.strong_quorum:
            self._execute_n4(value, now)

    def _execute_n4(self, value: Value, now: float) -> None:
        entry = self.i_values.get(value)
        if entry is None or not self._i_value_live(entry, now):
            # From an arbitrary initial state, forged ready quorums can push a
            # node here with no live anchor (Lemma 2 proves this cannot happen
            # once stable).  Hardening: drop the wave instead of accepting a
            # garbage anchor.
            self.host.trace(
                "ia_n4_no_anchor", general=self.general, value=value
            )
            self.log.remove_keys(
                [self._key(k, value) for k in (self.SUPPORT, self.APPROVE, self.READY)]
            )
            self._ready_flag(value).clear()
            return
        tau_g = entry.recording
        # i_values[G, *] := BOTTOM; remove and ignore (G, m) messages for 3d.
        self.i_values.clear()
        self.log.remove_keys(
            [self._key(k, value) for k in (self.SUPPORT, self.APPROVE, self.READY)]
        )
        self.ignore_until[value] = now + 3.0 * self.params.d
        self._touch_last_gm(value, now)
        self.last_g = now
        self.line_exec[("N4", value)] = now
        self.host.trace(
            "i_accept", general=self.general, value=value, tau_g_local=tau_g
        )
        self.on_accept(value, tau_g)

    # ------------------------------------------------------------------
    # Cleanup (the background decay process)
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Run the paper's cleanup rules; call every ~d of local time."""
        now = self._now()
        p = self.params

        self.log.prune_older_than(now - p.delta_rmv)
        self.log.prune_future(now)

        # last(G): reset if in the future or older than Delta_0 - 6d.
        if self.last_g is not None:
            if self.last_g > now or self.last_g < now - (p.delta_0 - 6.0 * p.d):
                self.last_g = None

        # last(G, m): reset if in the future or older than 2 Delta_rmv + 9d.
        horizon = 2.0 * p.delta_rmv + 9.0 * p.d
        for value, history in self.last_gm.items():
            current = history.current
            if current is not None and (current > now or current < now - horizon):
                history.assign(now, None)
            history.prune(now - horizon - p.delta_rmv)

        # i_values entries: expire after Delta_rmv; drop future garbage.
        for value in list(self.i_values):
            entry = self.i_values[value]
            if not self._i_value_live(entry, now) or entry.recording > now:
                del self.i_values[value]

        # ready flags: same decay as other values.
        for flag in self.ready.values():
            if flag.set_at is not None and (
                flag.set_at > now or now - flag.set_at > p.delta_rmv
            ):
                flag.clear()

        # Implementation bookkeeping decays on the same horizons.
        self._sent_at = {
            key: t for key, t in self._sent_at.items() if now - horizon <= t <= now
        }
        self._own_support_sends = [
            (t, v) for t, v in self._own_support_sends if now - 2.0 * p.d <= t <= now
        ]
        self.ignore_until = {
            v: t for v, t in self.ignore_until.items() if t > now
        }
        self.line_exec = {
            key: t for key, t in self.line_exec.items() if now - horizon <= t <= now
        }

    # ------------------------------------------------------------------
    # Reset (3d after the agreement returns) and corruption
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Full reset of the instance (ss-Byz-Agree cleanup rule)."""
        now = self._now()
        self.log.clear()
        self.i_values.clear()
        for flag in self.ready.values():
            flag.clear()
        # last(G) / last(G, m) are *not* wiped: they enforce the General's
        # pacing (Delta_0 / Delta_v) across consecutive agreements.
        self._sent_at.clear()
        self._own_support_sends.clear()
        self.line_exec.clear()
        self.host.trace("ia_reset", general=self.general)

    def corrupt(self, rng: RandomStream, value_pool: list[Value]) -> None:
        """Transient fault: scramble every variable with plausible garbage."""
        now = self._now()
        p = self.params
        span = p.delta_stb
        for value in value_pool:
            if rng.chance(0.5):
                self.i_values[value] = _IValueEntry(
                    recording=now + rng.uniform(-span, span),
                    written_at=now + rng.uniform(-span, span),
                )
            if rng.chance(0.5):
                self._last_gm(value).assign(now, now + rng.uniform(-span, span))
            if rng.chance(0.5):
                self._ready_flag(value).set(now + rng.uniform(-span, 0))
            # Fabricated "received" messages from every node at random times.
            for kind in (self.SUPPORT, self.APPROVE, self.READY):
                for sender in range(p.n):
                    if rng.chance(0.3):
                        self.log.corrupt_insert(
                            self._key(kind, value),
                            sender,
                            now + rng.uniform(-span, span),
                        )
        if rng.chance(0.5):
            self.last_g = now + rng.uniform(-span, span)
        self.host.trace("ia_corrupted", general=self.general)



__all__ = ["ReferenceInitiatorAccept", "ReferenceMsgdBroadcast"]
