"""Timing-constant algebra (paper Section 3, notation table).

Everything is derived from four model inputs -- ``n``, ``f``, the network
delay bound ``delta``, the processing bound ``pi`` -- plus the drift bound
``rho``:

    d        = (delta + pi) * (1 + rho)        end-to-end bound on any timer
    tau_skew = 6 d                             max anchor skew (IA-3A)
    Phi      = tau_skew + 2d = 8 d             one protocol phase
    Delta_agr   = (2f + 1) Phi                 agreement duration bound
    Delta_0     = 13 d                         min gap, different values
    Delta_rmv   = Delta_agr + Delta_0          decay age for values/messages
    Delta_v     = 15 d + 2 Delta_rmv           min gap, same value
    Delta_node  = Delta_v + Delta_agr          non-faulty -> correct promotion
    Delta_reset = 20 d + 4 Delta_rmv           General back-off on failure
    Delta_stb   = 2 Delta_reset                stabilization time

These constants are *protocol configuration*: non-faulty nodes never
initialize them with arbitrary values (the paper states n, f, d are fixed
constants), so they survive transient faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class _Bottom:
    """The paper's null value (a unique sentinel, distinct from None)."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOTTOM"

    def __bool__(self) -> bool:
        return False


BOTTOM = _Bottom()


@dataclass(frozen=True)
class ProtocolParams:
    """Model inputs and every derived timing constant.

    Parameters
    ----------
    n:
        Number of nodes.
    f:
        Upper bound on Byzantine nodes at steady state; requires ``n > 3f``.
    delta:
        Bound on message transit delay (real time) while the network is
        correct.
    pi:
        Bound on per-message processing time.
    rho:
        Bound on clock drift rate (``0 <= rho < 1``).
    """

    n: int
    f: int
    delta: float = 1.0
    pi: float = 0.0
    rho: float = 0.0
    # Ablation-only knob: scales Phi below/above the paper's 8d.  The proofs
    # require phi_scale = 1.0; the ablation bench (bench_a1) shows agreement
    # violations appearing when the phase is shortened.
    phi_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.phi_scale <= 0:
            raise ValueError(f"phi_scale must be positive, got {self.phi_scale}")
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.f < 0:
            raise ValueError(f"f must be non-negative, got {self.f}")
        if self.n <= 3 * self.f:
            raise ValueError(
                f"resilience bound violated: need n > 3f, got n={self.n}, f={self.f}"
            )
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        if self.pi < 0:
            raise ValueError(f"pi must be non-negative, got {self.pi}")
        if not (0 <= self.rho < 1):
            raise ValueError(f"rho must be in [0, 1), got {self.rho}")

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    @property
    def weak_quorum(self) -> int:
        """``n - 2f``: guarantees at least one correct member (>= f + 1)."""
        return self.n - 2 * self.f

    @property
    def strong_quorum(self) -> int:
        """``n - f``: every correct node can eventually gather this many."""
        return self.n - self.f

    # ------------------------------------------------------------------
    # Derived timing constants
    # ------------------------------------------------------------------
    @property
    def d(self) -> float:
        """End-to-end send+process bound, as measured on any correct timer."""
        return (self.delta + self.pi) * (1.0 + self.rho)

    @property
    def tau_skew(self) -> float:
        """Maximum real-time skew between correct nodes' anchors (6d)."""
        return 6.0 * self.d

    @property
    def phi(self) -> float:
        """Duration of one protocol phase: ``tau_skew + 2d = 8d``."""
        return (self.tau_skew + 2.0 * self.d) * self.phi_scale

    @property
    def delta_agr(self) -> float:
        """Upper bound on running the agreement: ``(2f + 1) * Phi``."""
        return (2 * self.f + 1) * self.phi

    @property
    def delta_0(self) -> float:
        """Minimal gap between initiations with different values: ``13d``."""
        return 13.0 * self.d

    @property
    def delta_rmv(self) -> float:
        """Decay age for old values/messages: ``Delta_agr + Delta_0``."""
        return self.delta_agr + self.delta_0

    @property
    def delta_v(self) -> float:
        """Minimal gap between initiations of the *same* value."""
        return 15.0 * self.d + 2.0 * self.delta_rmv

    @property
    def delta_node(self) -> float:
        """Continuous non-faulty time before a node counts as correct."""
        return self.delta_v + self.delta_agr

    @property
    def delta_reset(self) -> float:
        """General's back-off after noticing a failed initiation."""
        return 20.0 * self.d + 4.0 * self.delta_rmv

    @property
    def delta_stb(self) -> float:
        """System stabilization time: ``2 * Delta_reset``."""
        return 2.0 * self.delta_reset

    # ------------------------------------------------------------------
    # Helpers for phase arithmetic in the protocol blocks
    # ------------------------------------------------------------------
    def round_deadline(self, r: int) -> float:
        """Local-time offset of the decision deadline of round ``r``.

        Blocks R/S/T of ss-Byz-Agree use ``tau_G + (2r + 1) * Phi``.
        """
        return (2 * r + 1) * self.phi

    def with_faults(self, f: int) -> "ProtocolParams":
        """Copy with a different fault bound (for sweeps)."""
        return ProtocolParams(
            n=self.n, f=f, delta=self.delta, pi=self.pi, rho=self.rho
        )

    def describe(self) -> dict[str, float]:
        """All derived constants as a flat dict (for experiment reports)."""
        return {
            "n": self.n,
            "f": self.f,
            "d": self.d,
            "phi": self.phi,
            "delta_agr": self.delta_agr,
            "delta_0": self.delta_0,
            "delta_rmv": self.delta_rmv,
            "delta_v": self.delta_v,
            "delta_node": self.delta_node,
            "delta_reset": self.delta_reset,
            "delta_stb": self.delta_stb,
        }


def max_faults(n: int) -> int:
    """Largest ``f`` satisfying ``n > 3f`` for a given ``n``."""
    if n < 4:
        raise ValueError(f"Byzantine agreement needs n >= 4, got {n}")
    return (n - 1) // 3


__all__ = ["BOTTOM", "ProtocolParams", "max_faults"]
