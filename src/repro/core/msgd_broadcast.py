"""The msgd-broadcast primitive (paper Section 5, Figure 3).

A message-driven replacement for the synchronous Reliable Broadcast of
Toueg, Perry and Srikanth [TPS'87].  Two departures from the original:

1. Rounds are **anchored** at ``tau_G`` -- the local-time estimate of the
   General's initiation produced by Initiator-Accept -- instead of a global
   round clock.  Every deadline below is of the form
   ``tau_q <= tau_G + c * Phi``.
2. Deadlines are **upper bounds only**: a node acts as soon as the required
   messages arrive, so under fast actual delivery the primitive (and the
   agreement above it) *rushes* ahead of the worst-case phase structure.
   This is the property experiment E5 measures against the time-driven
   baseline.

Messages arriving before the anchor is known are logged and replayed the
moment Initiator-Accept sets the anchor ("nodes log messages until they are
able to process them").

Satisfies TPS-1 (Correctness), TPS-2 (Unforgeability), TPS-3 (Relay) and
TPS-4 (Detection of broadcasters) once the system is stable -- checked
mechanically by :mod:`repro.harness.properties`.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.core.messages import (
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    Value,
)
from repro.core.params import ProtocolParams
from repro.node.msglog import MessageLog
from repro.sim.rand import RandomSource


class Host(Protocol):
    """What the primitive needs from its hosting node."""

    node_id: int
    params: ProtocolParams

    def local_now(self) -> float: ...
    def broadcast(self, payload: object) -> None: ...
    def trace(self, kind: str, **detail: object) -> None: ...


# Callback signature: (origin p, value m, round k, accept local-time).
AcceptCallback = Callable[[int, Value, int, float], None]
# Callback: origin p was added to broadcasters.
BroadcasterCallback = Callable[[int], None]

Triplet = tuple[int, Value, int]  # (p, m, k)


class MsgdBroadcast:
    """One msgd-broadcast context: all (p, m, k) triplets for one General."""

    INIT = "mb_init"
    ECHO = "mb_echo"
    INIT_PRIME = "mb_init_prime"
    ECHO_PRIME = "mb_echo_prime"

    def __init__(
        self,
        host: Host,
        general: int,
        on_accept: AcceptCallback,
        on_broadcaster: Optional[BroadcasterCallback] = None,
    ) -> None:
        self.host = host
        self.general = general
        self.on_accept = on_accept
        self.on_broadcaster = on_broadcaster
        self.params = host.params

        self.anchor: Optional[float] = None  # tau_G on this node's clock
        self.log = MessageLog()
        self.broadcasters: dict[int, float] = {}  # node -> local add time
        self.accepted: dict[Triplet, float] = {}  # triplet -> local accept time
        self._sent: set[tuple[str, Triplet]] = set()
        self._known_triplets: set[Triplet] = set()

    # ------------------------------------------------------------------
    # Anchor management
    # ------------------------------------------------------------------
    def set_anchor(self, tau_g: float) -> None:
        """Define ``tau_G``; replays any backlog logged before it was known."""
        self.anchor = tau_g
        for triplet in sorted(self._known_triplets, key=repr):
            self.evaluate(triplet)

    def clear_anchor(self) -> None:
        """Undefine the anchor (instance reset)."""
        self.anchor = None

    # ------------------------------------------------------------------
    # Invocation (Block V)
    # ------------------------------------------------------------------
    def invoke(self, value: Value, k: int) -> None:
        """msgd-broadcast (q, value, k): send init to all (Line V)."""
        msg = MBInitMsg(self.general, self.host.node_id, value, k)
        self.host.broadcast(msg)
        self.host.trace(
            "mb_invoke", general=self.general, value=value, k=k
        )

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_message(self, msg: object, sender: int) -> None:
        """Log an arriving message; evaluate blocks if the anchor is known."""
        now = self.host.local_now()
        if isinstance(msg, MBInitMsg):
            # Only the origin itself can init its own broadcast; the network
            # authenticates senders, so an init claiming another origin is
            # Byzantine noise and is discarded (Line W2: "received ... from p").
            if sender != msg.origin:
                return
            kind = self.INIT
        elif isinstance(msg, MBEchoMsg):
            kind = self.ECHO
        elif isinstance(msg, MBInitPrimeMsg):
            kind = self.INIT_PRIME
        elif isinstance(msg, MBEchoPrimeMsg):
            kind = self.ECHO_PRIME
        else:
            raise TypeError(f"not a msgd-broadcast message: {msg!r}")
        triplet: Triplet = (msg.origin, msg.value, msg.k)
        self._known_triplets.add(triplet)
        self.log.add((kind,) + triplet, sender, now)
        if self.anchor is not None:
            self.evaluate(triplet)

    # ------------------------------------------------------------------
    # Blocks W, X, Y, Z
    # ------------------------------------------------------------------
    def evaluate(self, triplet: Triplet) -> None:
        """Re-run the blocks for one (p, m, k) triplet."""
        if self.anchor is None:
            return
        now = self.host.local_now()
        origin, value, k = triplet
        p = self.params
        phi = p.phi
        anchor = self.anchor

        init_key = (self.INIT,) + triplet
        echo_key = (self.ECHO,) + triplet
        initp_key = (self.INIT_PRIME,) + triplet
        echop_key = (self.ECHO_PRIME,) + triplet

        # Primitive instances are "implicitly associated with the agreement
        # instance that invoked them" (paper Section 3): only messages that
        # arrived within *this* execution -- i.e. at or after the anchor --
        # count as evidence.  Stragglers of a previous execution of the same
        # General predate the current anchor and are scoped out.
        def fresh_count(key) -> int:
            return self.log.count_distinct_in(key, anchor, now)

        # Block W: tau_q <= tau_G + 2k Phi -- echo the origin's init.
        if now <= anchor + 2 * k * phi:
            if origin in self.log.distinct_senders_in(init_key, anchor, now):
                self._send_once(self.ECHO, triplet, MBEchoMsg(*((self.general,) + triplet)))

        # Block X: tau_q <= tau_G + (2k + 1) Phi.
        if now <= anchor + (2 * k + 1) * phi:
            echoes = fresh_count(echo_key)
            if echoes >= p.weak_quorum:
                self._send_once(
                    self.INIT_PRIME, triplet, MBInitPrimeMsg(*((self.general,) + triplet))
                )
            if echoes >= p.strong_quorum:
                self._accept(triplet, now)

        # Block Y: tau_q <= tau_G + (2k + 2) Phi.
        if now <= anchor + (2 * k + 2) * phi:
            init_primes = fresh_count(initp_key)
            if init_primes >= p.weak_quorum and origin not in self.broadcasters:
                self.broadcasters[origin] = now
                self.host.trace(
                    "mb_broadcaster", general=self.general, origin=origin, k=k
                )
                if self.on_broadcaster is not None:
                    self.on_broadcaster(origin)
            if init_primes >= p.strong_quorum:
                self._send_once(
                    self.ECHO_PRIME, triplet, MBEchoPrimeMsg(*((self.general,) + triplet))
                )

        # Block Z: at any time.
        echo_primes = fresh_count(echop_key)
        if echo_primes >= p.weak_quorum:
            self._send_once(
                self.ECHO_PRIME, triplet, MBEchoPrimeMsg(*((self.general,) + triplet))
            )
        if echo_primes >= p.strong_quorum:
            self._accept(triplet, now)

    def _send_once(self, kind: str, triplet: Triplet, payload: object) -> None:
        """Nodes send specific messages only once (Figure 3 header note)."""
        if (kind, triplet) in self._sent:
            return
        self._sent.add((kind, triplet))
        self.host.broadcast(payload)
        self.host.trace(
            f"{kind}_sent",
            general=self.general,
            origin=triplet[0],
            value=triplet[1],
            k=triplet[2],
        )

    def _accept(self, triplet: Triplet, now: float) -> None:
        """Accept (p, m, k) -- only once per triplet (Line Z5 note)."""
        if triplet in self.accepted:
            return
        self.accepted[triplet] = now
        origin, value, k = triplet
        self.host.trace(
            "mb_accept", general=self.general, origin=origin, value=value, k=k
        )
        self.on_accept(origin, value, k, now)

    # ------------------------------------------------------------------
    # Cleanup, reset, corruption
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Decay rule: drop messages older than ``(2f + 3) Phi``."""
        now = self.host.local_now()
        horizon = (2 * self.params.f + 3) * self.params.phi
        self.log.prune_older_than(now - horizon)
        self.log.prune_future(now)
        # Stale derived state ages out on the same horizon.
        self.broadcasters = {
            node: t for node, t in self.broadcasters.items() if now - t <= horizon
        }
        self.accepted = {
            trip: t
            for trip, t in self.accepted.items()
            if now - t <= horizon and t <= now
        }
        self._known_triplets = {
            trip
            for trip in self._known_triplets
            if any(
                self.log.count_distinct((kind,) + trip) > 0
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME)
            )
        } | set(self.accepted)

    def reset(self) -> None:
        """Full reset (3d after the agreement instance returns)."""
        self.anchor = None
        self.log.clear()
        self.broadcasters.clear()
        self.accepted.clear()
        self._sent.clear()
        self._known_triplets.clear()
        self.host.trace("mb_reset", general=self.general)

    def corrupt(self, rng: RandomSource, value_pool: list[Value]) -> None:
        """Transient fault: scramble anchor, logs, and derived sets."""
        now = self.host.local_now()
        p = self.params
        span = p.delta_stb
        if rng.chance(0.5):
            self.anchor = now + rng.uniform(-span, span)
        for node in range(p.n):
            if rng.chance(0.3):
                self.broadcasters[node] = now + rng.uniform(-span, 0)
        for value in value_pool:
            for k in range(1, p.f + 2):
                triplet: Triplet = (rng.randint(0, p.n - 1), value, k)
                self._known_triplets.add(triplet)
                if rng.chance(0.3):
                    self.accepted[triplet] = now + rng.uniform(-span, 0)
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME):
                    for sender in range(p.n):
                        if rng.chance(0.15):
                            self.log.corrupt_insert(
                                (kind,) + triplet, sender, now + rng.uniform(-span, span)
                            )
        self.host.trace("mb_corrupted", general=self.general)


__all__ = ["MsgdBroadcast"]
