"""The msgd-broadcast primitive (paper Section 5, Figure 3).

A message-driven replacement for the synchronous Reliable Broadcast of
Toueg, Perry and Srikanth [TPS'87].  Two departures from the original:

1. Rounds are **anchored** at ``tau_G`` -- the local-time estimate of the
   General's initiation produced by Initiator-Accept -- instead of a global
   round clock.  Every deadline below is of the form
   ``tau_q <= tau_G + c * Phi``.
2. Deadlines are **upper bounds only**: a node acts as soon as the required
   messages arrive, so under fast actual delivery the primitive (and the
   agreement above it) *rushes* ahead of the worst-case phase structure.
   This is the property experiment E5 measures against the time-driven
   baseline.

Messages arriving before the anchor is known are logged and replayed the
moment Initiator-Accept sets the anchor ("nodes log messages until they are
able to process them").

Satisfies TPS-1 (Correctness), TPS-2 (Unforgeability), TPS-3 (Relay) and
TPS-4 (Detection of broadcasters) once the system is stable -- checked
mechanically by :mod:`repro.harness.properties`.

Push-based evaluation
---------------------
The original evaluator (kept verbatim as
:class:`repro.core.eval_ref.ReferenceMsgdBroadcast`) re-issued up to seven
window queries per triplet per arrival.  This implementation inverts that
pull model:

* Each known ``(p, m, k)`` triplet holds a :class:`_TripletState` with four
  :class:`~repro.node.msglog.FreshWindowWatch` subscriptions -- incremental
  fresh-distinct-sender counters over ``[anchor, now]`` for init / echo /
  init' / echo' -- registered with the weak/strong quorum thresholds (and
  the origin as Block W's sentinel sender).  A threshold crossing fires a
  callback that flags the state; an arrival that crosses nothing and has no
  pending future-stamped records is provably unable to newly satisfy any
  block guard, so it costs one counter update and returns -- O(1) instead
  of seven window scans.
* Once every one-shot action of a triplet has fired (echo / init' / echo'
  sent, accepted, origin a broadcaster), the state is marked *done* and
  arrivals skip evaluation outright.
* The ``now <= anchor + c*Phi`` deadline guards are deactivated exactly
  once by a chained deadline timer scheduled on the host (via the sans-I/O
  ``schedule_after`` hook), instead of being re-derived on every arrival;
  between a deadline and its timer firing, the retained comparison keeps
  the boundary semantics bit-identical to the reference.
* Anything the counters cannot track incrementally -- cleanup pruning,
  decay of ``broadcasters``/``accepted``, transient corruption, anchor
  changes -- conservatively marks states stale (or drops them), and the
  next arrival re-evaluates the full block cascade from the log.

``tests/test_eval_equiv.py`` drives this evaluator and the reference
through randomized adversarial schedules and demands identical behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.messages import (
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    Value,
)
from repro.node.msglog import FreshWindowWatch, MessageLog
from repro.runtime.api import ALWAYS_ENABLED, ProtocolHost, RandomStream, TimerHandle


# Callback signature: (origin p, value m, round k, accept local-time).
AcceptCallback = Callable[[int, Value, int, float], None]
# Callback: origin p was added to broadcasters.
BroadcasterCallback = Callable[[int], None]

Triplet = tuple[int, Value, int]  # (p, m, k)


class _TripletState:
    """Incremental evaluation state for one (p, m, k) under one anchor."""

    __slots__ = (
        "anchor",
        "init_w",
        "echo_w",
        "initp_w",
        "echop_w",
        "w_deadline",
        "x_deadline",
        "y_deadline",
        "w_active",
        "x_active",
        "y_active",
        "signal",
        "stale",
        "done",
        "timer",
    )

    def __init__(self) -> None:
        self.signal = False
        self.stale = True  # first evaluation runs the full cascade
        self.done = False
        self.w_active = True
        self.x_active = True
        self.y_active = True
        self.timer: Optional[TimerHandle] = None  # pending deadline-chain hop

    def wake(self, _watch: FreshWindowWatch) -> None:
        """Threshold-crossing / sentinel-maturation callback."""
        self.signal = True

    @property
    def has_pending(self) -> bool:
        """Future-stamped records that may mature into any counter."""
        return (
            self.init_w.has_pending
            or self.echo_w.has_pending
            or self.initp_w.has_pending
            or self.echop_w.has_pending
        )

    def release(self) -> None:
        """Cancel the watches *and* the pending deadline-chain timer.

        Dropping a state without releasing its timer handle would leak the
        handle in the host's registry until the deadline passed; hygiene is
        asserted by ``ProtocolHost.live_timer_count()`` in the tests.
        """
        self.init_w.cancel()
        self.echo_w.cancel()
        self.initp_w.cancel()
        self.echop_w.cancel()
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class MsgdBroadcast:
    """One msgd-broadcast context: all (p, m, k) triplets for one General."""

    INIT = "mb_init"
    ECHO = "mb_echo"
    INIT_PRIME = "mb_init_prime"
    ECHO_PRIME = "mb_echo_prime"

    def __init__(
        self,
        host: ProtocolHost,
        general: int,
        on_accept: AcceptCallback,
        on_broadcaster: Optional[BroadcasterCallback] = None,
    ) -> None:
        self.host = host
        self.general = general
        self.on_accept = on_accept
        self.on_broadcaster = on_broadcaster
        self.params = host.params

        self.anchor: Optional[float] = None  # tau_G on this node's clock
        self.log = MessageLog()
        self.broadcasters: dict[int, float] = {}  # node -> local add time
        self.accepted: dict[Triplet, float] = {}  # triplet -> local accept time
        self._sent: set[tuple[str, Triplet]] = set()
        self._known_triplets: set[Triplet] = set()
        self._states: dict[Triplet, _TripletState] = {}

        # Cached derived constants (ProtocolParams recomputes per access).
        self._weak = self.params.weak_quorum
        self._strong = self.params.strong_quorum
        self._phi = self.params.phi
        self._deadline_eps = self.params.d * 1e-9
        # Optional host extras: timer-less hosts fall back to lazy,
        # comparison-based deadline deactivation; tracer-less hosts get
        # unguarded tracing.  Behaviour is identical either way.
        self._schedule_after = getattr(host, "schedule_after", None)
        self._tracer = getattr(host, "tracer", ALWAYS_ENABLED)

    # ------------------------------------------------------------------
    # Anchor management
    # ------------------------------------------------------------------
    def set_anchor(self, tau_g: float) -> None:
        """Define ``tau_G``; replays any backlog logged before it was known."""
        if self._states:
            self._drop_states()
        self.anchor = tau_g
        for triplet in sorted(self._known_triplets, key=repr):
            self.evaluate(triplet)

    def clear_anchor(self) -> None:
        """Undefine the anchor (instance reset)."""
        self.anchor = None
        self._drop_states()

    def _drop_states(self) -> None:
        for state in self._states.values():
            state.release()
        self._states.clear()

    # ------------------------------------------------------------------
    # Invocation (Block V)
    # ------------------------------------------------------------------
    def invoke(self, value: Value, k: int) -> None:
        """msgd-broadcast (q, value, k): send init to all (Line V)."""
        msg = MBInitMsg(self.general, self.host.node_id, value, k)
        self.host.broadcast(msg)
        self.host.trace(
            "mb_invoke", general=self.general, value=value, k=k
        )

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_message(self, msg: object, sender: int) -> None:
        """Log an arriving message; evaluate blocks if the anchor is known."""
        now = self.host.now()
        if isinstance(msg, MBInitMsg):
            # Only the origin itself can init its own broadcast; the network
            # authenticates senders, so an init claiming another origin is
            # Byzantine noise and is discarded (Line W2: "received ... from p").
            if sender != msg.origin:
                return
            kind = self.INIT
        elif isinstance(msg, MBEchoMsg):
            kind = self.ECHO
        elif isinstance(msg, MBInitPrimeMsg):
            kind = self.INIT_PRIME
        elif isinstance(msg, MBEchoPrimeMsg):
            kind = self.ECHO_PRIME
        else:
            raise TypeError(f"not a msgd-broadcast message: {msg!r}")
        triplet: Triplet = (msg.origin, msg.value, msg.k)
        self._known_triplets.add(triplet)
        # The add feeds the triplet's counters; a quorum crossing or the
        # origin's init maturing sets state.signal synchronously.
        self.log.add((kind,) + triplet, sender, now)
        if self.anchor is None:
            return
        state = self._states.get(triplet)
        if state is None:
            self.evaluate(triplet)
            return
        if state.done:
            return
        if state.signal or state.stale or state.has_pending:
            self._run_blocks(triplet, state)

    # ------------------------------------------------------------------
    # Blocks W, X, Y, Z
    # ------------------------------------------------------------------
    def evaluate(self, triplet: Triplet) -> None:
        """Run the blocks for one (p, m, k) triplet unconditionally."""
        if self.anchor is None:
            return
        state = self._states.get(triplet)
        if state is None:
            state = self._make_state(triplet)
        self._run_blocks(triplet, state)

    def _make_state(self, triplet: Triplet) -> _TripletState:
        anchor = self.anchor
        phi = self._phi
        k = triplet[2]
        state = _TripletState()
        state.anchor = anchor
        state.w_deadline = anchor + 2 * k * phi
        state.x_deadline = anchor + (2 * k + 1) * phi
        state.y_deadline = anchor + (2 * k + 2) * phi
        log = self.log
        wake = state.wake
        thresholds = (self._weak, self._strong)
        state.init_w = log.watch(
            (self.INIT,) + triplet, anchor, sentinel=triplet[0], on_event=wake
        )
        state.echo_w = log.watch(
            (self.ECHO,) + triplet, anchor, thresholds, on_event=wake
        )
        state.initp_w = log.watch(
            (self.INIT_PRIME,) + triplet, anchor, thresholds, on_event=wake
        )
        state.echop_w = log.watch(
            (self.ECHO_PRIME,) + triplet, anchor, thresholds, on_event=wake
        )
        self._states[triplet] = state
        self._arm_deadline_timer(triplet, state)
        return state

    def _run_blocks(self, triplet: Triplet, state: _TripletState) -> None:
        now = self.host.now()
        origin, value, k = triplet

        # Primitive instances are "implicitly associated with the agreement
        # instance that invoked them" (paper Section 3): only messages that
        # arrived within *this* execution -- i.e. at or after the anchor --
        # count as evidence.  Stragglers of a previous execution of the same
        # General predate the current anchor and are scoped out.

        # Block W: tau_q <= tau_G + 2k Phi -- echo the origin's init.
        if state.w_active:
            if now > state.w_deadline:
                state.w_active = False
            elif state.init_w.has(origin, now):
                self._send_once(
                    self.ECHO, triplet, MBEchoMsg(self.general, origin, value, k)
                )

        # Block X: tau_q <= tau_G + (2k + 1) Phi.
        if state.x_active:
            if now > state.x_deadline:
                state.x_active = False
            else:
                echoes = state.echo_w.count(now)
                if echoes >= self._weak:
                    self._send_once(
                        self.INIT_PRIME,
                        triplet,
                        MBInitPrimeMsg(self.general, origin, value, k),
                    )
                if echoes >= self._strong:
                    self._accept(triplet, now)

        # Block Y: tau_q <= tau_G + (2k + 2) Phi.
        if state.y_active:
            if now > state.y_deadline:
                state.y_active = False
            else:
                init_primes = state.initp_w.count(now)
                if init_primes >= self._weak and origin not in self.broadcasters:
                    self.broadcasters[origin] = now
                    self.host.trace(
                        "mb_broadcaster", general=self.general, origin=origin, k=k
                    )
                    if self.on_broadcaster is not None:
                        self.on_broadcaster(origin)
                if init_primes >= self._strong:
                    self._send_once(
                        self.ECHO_PRIME,
                        triplet,
                        MBEchoPrimeMsg(self.general, origin, value, k),
                    )

        # Block Z: at any time.
        echo_primes = state.echop_w.count(now)
        if echo_primes >= self._weak:
            self._send_once(
                self.ECHO_PRIME, triplet, MBEchoPrimeMsg(self.general, origin, value, k)
            )
        if echo_primes >= self._strong:
            self._accept(triplet, now)

        state.signal = False
        state.stale = False
        sent = self._sent
        state.done = (
            triplet in self.accepted
            and origin in self.broadcasters
            and (self.ECHO, triplet) in sent
            and (self.INIT_PRIME, triplet) in sent
            and (self.ECHO_PRIME, triplet) in sent
        )

    # ------------------------------------------------------------------
    # Deadline timers (blocks deactivate exactly once)
    # ------------------------------------------------------------------
    def _arm_deadline_timer(self, triplet: Triplet, state: _TripletState) -> None:
        """Chain one local timer through the W/X/Y deadlines of a state.

        Each firing flips the expired blocks' active flags and reschedules
        for the next pending deadline, so steady-state arrivals skip even
        the deadline comparison.  Timers fire ``eps`` after the deadline
        (the guards are inclusive); the retained ``now <= deadline`` check
        in :meth:`_run_blocks` covers the gap exactly.

        The pending hop's handle is kept on the state (``state.timer``) and
        canceled by :meth:`_TripletState.release` the moment the state is
        dropped -- anchor change, reset, cleanup retirement -- so dead
        chains never linger in the host's timer registry.  A chain that
        runs to its natural end (all blocks expired) clears the handle
        itself.
        """
        schedule_after = self._schedule_after
        if schedule_after is None:
            return  # hosts without timers fall back to lazy deactivation

        # Belt and braces: release() cancels the pending hop when a state
        # is dropped, and a stale firing that slips through anyway finds a
        # different object in ``_states`` and stops.
        def fire() -> None:
            state.timer = None  # this hop's handle was just consumed
            if self._states.get(triplet) is not state:
                return
            now = self.host.now()
            if state.w_active and now > state.w_deadline:
                state.w_active = False
            if state.x_active and now > state.x_deadline:
                state.x_active = False
            if state.y_active and now > state.y_deadline:
                state.y_active = False
            next_deadline = None
            if state.w_active:
                next_deadline = state.w_deadline
            elif state.x_active:
                next_deadline = state.x_deadline
            elif state.y_active:
                next_deadline = state.y_deadline
            if next_deadline is not None:
                state.timer = schedule_after(
                    max(0.0, next_deadline - now) + self._deadline_eps,
                    fire,
                    tag="mb_deadline",
                )

        now = self.host.now()
        state.timer = schedule_after(
            max(0.0, state.w_deadline - now) + self._deadline_eps,
            fire,
            tag="mb_deadline",
        )

    def _send_once(self, kind: str, triplet: Triplet, payload: object) -> None:
        """Nodes send specific messages only once (Figure 3 header note)."""
        if (kind, triplet) in self._sent:
            return
        self._sent.add((kind, triplet))
        self.host.broadcast(payload)
        if self._tracer.enabled:
            self.host.trace(
                f"{kind}_sent",
                general=self.general,
                origin=triplet[0],
                value=triplet[1],
                k=triplet[2],
            )

    def _accept(self, triplet: Triplet, now: float) -> None:
        """Accept (p, m, k) -- only once per triplet (Line Z5 note)."""
        if triplet in self.accepted:
            return
        self.accepted[triplet] = now
        origin, value, k = triplet
        if self._tracer.enabled:
            self.host.trace(
                "mb_accept", general=self.general, origin=origin, value=value, k=k
            )
        self.on_accept(origin, value, k, now)

    # ------------------------------------------------------------------
    # Cleanup, reset, corruption
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Decay rule: drop messages older than ``(2f + 3) Phi``."""
        now = self.host.now()
        horizon = (2 * self.params.f + 3) * self._phi
        self.log.prune_older_than(now - horizon)
        self.log.prune_future(now)
        # Stale derived state ages out on the same horizon.
        self.broadcasters = {
            node: t for node, t in self.broadcasters.items() if now - t <= horizon
        }
        self.accepted = {
            trip: t
            for trip, t in self.accepted.items()
            if now - t <= horizon and t <= now
        }
        self._known_triplets = {
            trip
            for trip in self._known_triplets
            if any(
                self.log.count_distinct((kind,) + trip) > 0
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME)
            )
        } | set(self.accepted)
        # Pruning and derived-state decay can re-enable block actions the
        # counters alone would not flag: force full re-evaluation per state
        # and retire states for forgotten triplets.
        known = self._known_triplets
        dead = [trip for trip in self._states if trip not in known]
        for trip in dead:
            self._states.pop(trip).release()
        for state in self._states.values():
            state.stale = True
            state.done = False

    def reset(self) -> None:
        """Full reset (3d after the agreement instance returns)."""
        self.anchor = None
        self.log.clear()
        self.broadcasters.clear()
        self.accepted.clear()
        self._sent.clear()
        self._known_triplets.clear()
        self._drop_states()
        self.host.trace("mb_reset", general=self.general)

    def corrupt(self, rng: RandomStream, value_pool: list[Value]) -> None:
        """Transient fault: scramble anchor, logs, and derived sets."""
        now = self.host.now()
        p = self.params
        span = p.delta_stb
        if rng.chance(0.5):
            self.anchor = now + rng.uniform(-span, span)
        for node in range(p.n):
            if rng.chance(0.3):
                self.broadcasters[node] = now + rng.uniform(-span, 0)
        for value in value_pool:
            for k in range(1, p.f + 2):
                triplet: Triplet = (rng.randint(0, p.n - 1), value, k)
                self._known_triplets.add(triplet)
                if rng.chance(0.3):
                    self.accepted[triplet] = now + rng.uniform(-span, 0)
                for kind in (self.INIT, self.ECHO, self.INIT_PRIME, self.ECHO_PRIME):
                    for sender in range(p.n):
                        if rng.chance(0.15):
                            self.log.corrupt_insert(
                                (kind,) + triplet, sender, now + rng.uniform(-span, span)
                            )
        # The anchor and every derived set may have changed under the
        # counters' feet: rebuild evaluation state from scratch.
        self._drop_states()
        self.host.trace("mb_corrupted", general=self.general)


__all__ = ["MsgdBroadcast"]
