"""Protocol message vocabulary.

Two families, matching the paper's two primitives:

* Initiator-Accept traffic (Figure 2): ``(Initiator, G, m)`` from the
  General, then ``(support, G, m)``, ``(approve, G, m)``, ``(ready, G, m)``
  among all nodes.
* msgd-broadcast traffic (Figure 3), always in the context of a General's
  agreement instance: ``(init, p, m, k)``, ``(echo, p, m, k)``,
  ``(init', p, m, k)``, ``(echo', p, m, k)``.

Messages are frozen dataclasses so Byzantine code cannot mutate a message
another node already holds; equivocation is modelled by *sending different
messages*, exactly as in reality.

Sender identity is **not** part of the payload: the network authenticates it
(Definition 2), and receivers read it off the envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

Value = Hashable


# ---------------------------------------------------------------------------
# Initiator-Accept family
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class InitiatorMsg:
    """``(Initiator, G, m)`` -- the General's initiation (Block Q0 / K)."""

    general: int
    value: Value


@dataclass(frozen=True)
class SupportMsg:
    """``(support, G, m)`` -- Block K2 response to an initiation."""

    general: int
    value: Value


@dataclass(frozen=True)
class ApproveMsg:
    """``(approve, G, m)`` -- Block L4, sent on a strong support quorum."""

    general: int
    value: Value


@dataclass(frozen=True)
class ReadyMsg:
    """``(ready, G, m)`` -- Blocks M4/N2, the final (untimed) wave."""

    general: int
    value: Value


# ---------------------------------------------------------------------------
# msgd-broadcast family (context: the agreement instance of ``general``)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MBInitMsg:
    """``(init, p, m, k)`` -- node ``origin`` msgd-broadcasts value at round k."""

    general: int
    origin: int
    value: Value
    k: int


@dataclass(frozen=True)
class MBEchoMsg:
    """``(echo, p, m, k)`` -- Block W relay of a received init."""

    general: int
    origin: int
    value: Value
    k: int


@dataclass(frozen=True)
class MBInitPrimeMsg:
    """``(init', p, m, k)`` -- Block X relay on a weak echo quorum."""

    general: int
    origin: int
    value: Value
    k: int


@dataclass(frozen=True)
class MBEchoPrimeMsg:
    """``(echo', p, m, k)`` -- Blocks Y/Z second-wave echo."""

    general: int
    origin: int
    value: Value
    k: int


IA_MESSAGE_TYPES = (InitiatorMsg, SupportMsg, ApproveMsg, ReadyMsg)
MB_MESSAGE_TYPES = (MBInitMsg, MBEchoMsg, MBInitPrimeMsg, MBEchoPrimeMsg)
ALL_MESSAGE_TYPES = IA_MESSAGE_TYPES + MB_MESSAGE_TYPES


__all__ = [
    "ALL_MESSAGE_TYPES",
    "ApproveMsg",
    "IA_MESSAGE_TYPES",
    "InitiatorMsg",
    "MB_MESSAGE_TYPES",
    "MBEchoMsg",
    "MBEchoPrimeMsg",
    "MBInitMsg",
    "MBInitPrimeMsg",
    "ReadyMsg",
    "SupportMsg",
    "Value",
]
