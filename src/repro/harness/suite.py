"""Scenario-matrix runner: suites of (scenario x seed) cells as data.

A *suite config* is a JSON-able dict describing a grid of scenarios::

    {
        "name": "smoke",
        "seeds": [0, 1],
        "base": {"delta": 1.0, "rho": 1e-4, "value": "v"},
        "grid": {
            "n": [4, 7],
            "cast": ["none", "crash_one"],
            "policy": ["uniform", "bursty"],
            "timeline": ["none", "partition_heal"],
        },
    }

The grid's cartesian product (in declared key order) expands into *cells*;
each cell runs once per seed -- a correct General proposes, the cell's
:class:`~repro.faults.timeline.FaultScript` plays out, and the run is
scored with the property checkers and the network's split drop counters
(``dropped_partition`` vs ``dropped_policy``).  Cells reference Byzantine
casts, delivery policies and fault timelines *by name* (or inline dict
specs for timelines), so a cell is a plain picklable dict and the per-seed
runs fan out over the shared process pool exactly like the experiment
drivers -- bit-identical rows and trace digests at any worker count.

A cell may also carry ``"backend": "asyncio"``: the **same** timeline spec
is then interpreted live by :class:`~repro.faults.live.AsyncioFaultDriver`
against an in-process wall-clock cluster (real ``loop.call_later`` timers,
real elapsed time).  Such cells score with the same row shape but are not
replayable -- wall-clock jitter moves the counters between runs -- so keep
them out of digest-pinned suites; the default ``"sim"`` backend stays
bit-identical.

:func:`run_suite` returns one consolidated row per cell;
:func:`suite_report` renders the rows as the Markdown artifact the CLI
prints.  ``python -m repro.cli suite --preset smoke`` is the end-to-end
entry point.
"""

from __future__ import annotations

import itertools
import json
from functools import partial
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.core.params import ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    MirrorParticipantStrategy,
    TwoFacedParticipantStrategy,
)
from repro.faults.timeline import build_policy, build_timeline
from repro.harness import metrics, properties
from repro.harness.parallel import SeedPool
from repro.harness.report import rows_to_markdown
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.stats import summarize
from repro.sim.trace import trace_digest

DEFAULT_RHO = 1e-4


# ---------------------------------------------------------------------------
# Named Byzantine casts (General 0 always stays correct and proposes)
# ---------------------------------------------------------------------------
def _cast_none(params: ProtocolParams) -> dict:
    return {}


def _cast_crash_one(params: ProtocolParams) -> dict:
    return {params.n - 1: CrashStrategy()}


def _cast_crash_f(params: ProtocolParams) -> dict:
    return {params.n - 1 - i: CrashStrategy() for i in range(params.f)}


def _cast_mirror(params: ProtocolParams) -> dict:
    return {params.n - 1: MirrorParticipantStrategy()}


def _cast_twofaced(params: ProtocolParams) -> dict:
    camp = tuple(range(1, 1 + (params.n - 1) // 2))
    return {params.n - 1: TwoFacedParticipantStrategy(camp)}


CAST_BUILDERS: dict[str, Callable[[ProtocolParams], dict]] = {
    "none": _cast_none,
    "crash_one": _cast_crash_one,
    "crash_f": _cast_crash_f,
    "mirror": _cast_mirror,
    "twofaced": _cast_twofaced,
}


# ---------------------------------------------------------------------------
# Cell execution (runs in pool workers; cell is a plain picklable dict)
# ---------------------------------------------------------------------------
def _cell_params(cell: dict) -> ProtocolParams:
    n = cell["n"]
    f = cell.get("f")
    return ProtocolParams(
        n=n,
        f=f if f is not None else max_faults(n),
        delta=cell.get("delta", 1.0),
        rho=cell.get("rho", DEFAULT_RHO),
    )


def _build_cast(cell: dict, params: ProtocolParams) -> dict:
    cast_name = cell.get("cast", "none")
    try:
        return CAST_BUILDERS[cast_name](params)
    except KeyError:
        known = ", ".join(sorted(CAST_BUILDERS))
        raise KeyError(f"unknown cast {cast_name!r} (known: {known})") from None


def _run_cell(cell: dict, seed: int) -> tuple:
    """One (cell, seed) run; a pure function of its arguments."""
    backend = cell.get("backend", "sim")
    if backend == "asyncio":
        return _run_cell_asyncio(cell, seed)
    if backend != "sim":
        raise KeyError(f"unknown backend {backend!r} (known: sim, asyncio)")
    params = _cell_params(cell)
    cast = _build_cast(cell, params)
    cluster = Cluster(
        ScenarioConfig(
            params=params,
            seed=seed,
            byzantine=cast,
            trace=cell.get("trace", False),
            shards=cell.get("shards"),
            shard_transport=cell.get("shard_transport") or "process",
        )
    )
    try:
        # Policies may need the live cluster (e.g. bursty reads sim.now), so
        # the named policy is built and swapped in before any event has run.
        # A sharded facade has no single live cluster: the *name* ships to
        # every shard worker and resolves against each shard's own state.
        policy_spec = cell.get("policy", "uniform")
        if cluster.sharded:
            cluster.net.set_policy_spec(policy_spec)
        else:
            cluster.net.set_policy(build_policy(policy_spec, cluster))
        script = build_timeline(cell.get("timeline", "none"), params)
        script.install(cluster)

        general = cell.get("general", 0)
        t0 = cluster.sim.now
        proposed = cluster.propose(general=general, value=cell.get("value", "v"))
        run_for_d = cell.get("run_for_d")
        horizon = (
            run_for_d * params.d
            if run_for_d is not None
            else params.delta_agr + 10 * params.d
        )
        cluster.run_for(horizon)

        # Churned nodes stop being correct mid-run; agreement quantifies over
        # the nodes that stayed correct throughout.
        agree = properties.agreement(
            cluster, general, exclude=script.churned_nodes()
        ).holds
        latest = cluster.latest_decision_per_node(general)
        decided = [dec for dec in latest.values() if dec.decided]
        stats = metrics.message_stats(cluster)
        return (
            proposed,
            agree,
            len(decided),
            tuple(metrics.decision_latencies(decided, t0)),
            stats["sent"],
            stats["delivered"],
            stats["dropped_partition"],
            stats["dropped_policy"],
            trace_digest(cluster.tracer),
        )
    finally:
        if cluster.sharded:
            cluster.close()


def _run_cell_asyncio(cell: dict, seed: int) -> tuple:
    """One (cell, seed) run on the asyncio wall-clock backend.

    Same result shape as the sim path, but elapsed time is real: the cell's
    timeline is interpreted by a live
    :class:`~repro.faults.live.AsyncioFaultDriver`, delays come from a
    *named* live policy, and injected-fault drops land in the
    ``dropped_partition`` column (the transport's ``dropped_fault_count``).
    The digest hashes jittery wall-clock counters -- structural parity
    only, not a replay pin.
    """
    import asyncio

    from repro.faults.live import AsyncioFaultDriver, build_live_policy
    from repro.runtime.aio import AsyncioCluster

    params = _cell_params(cell)
    cast = _build_cast(cell, params)
    script = build_timeline(cell.get("timeline", "none"), params)
    general = cell.get("general", 0)

    async def body() -> tuple:
        cluster = AsyncioCluster(
            params,
            seed=seed,
            time_scale=cell.get("time_scale", 0.02),
            byzantine=cast,
            trace=cell.get("trace", False),
        )
        driver = AsyncioFaultDriver(script, cluster)
        try:
            cluster.transport.set_policy(
                build_live_policy(
                    cell.get("policy", "live_default"),
                    params,
                    cluster.transport.now,
                )
            )
            driver.install()
            correct = [
                i for i in cluster.correct_ids if i not in script.churned_nodes()
            ]
            t0 = cluster.transport.now()
            value = cell.get("value", "v")
            proposed = cluster.propose(general, value)
            # Live runs have no simulator stragglers to keep the event pump
            # alive through a long cut, so a cell may ask the General to
            # periodically retry its proposal (pacing-guarded: refused until
            # the Sending Validity Criteria allow a re-initiation).
            repropose = cell.get("repropose_every_d")
            if repropose and general in cluster.correct_ids:
                node = cluster.nodes[general]
                node.every_local(
                    repropose * params.d,
                    lambda: node.propose(value),
                    tag=f"repropose:{general}",
                )
            run_for_d = cell.get("run_for_d")
            horizon = (
                run_for_d * params.d
                if run_for_d is not None
                else params.delta_agr + 10 * params.d
            )
            deadline = t0 + horizon
            while cluster.transport.now() < deadline:
                if all(
                    cluster.nodes[i].decisions_for(general) for i in correct
                ):
                    break
                await cluster.sleep_units(
                    min(1.0, deadline - cluster.transport.now())
                )
        finally:
            driver.cancel()
            cluster.close()
        latest = cluster.latest_decision_per_node(general)
        returned = {i: latest[i] for i in correct if i in latest}
        agree = len(returned) == len(correct) and (
            len({repr(dec.value) for dec in returned.values()}) <= 1
        )
        decided = [dec for dec in returned.values() if dec.decided]
        transport = cluster.transport
        dropped_fault = transport.dropped_fault_count
        return (
            proposed,
            agree,
            len(decided),
            tuple(metrics.decision_latencies(decided, t0)),
            transport.sent_count,
            transport.delivered_count,
            dropped_fault,
            transport.dropped_count - dropped_fault,
            trace_digest(cluster.tracer),
        )

    return asyncio.run(body())


# ---------------------------------------------------------------------------
# Grid expansion and aggregation
# ---------------------------------------------------------------------------
def _timeline_label(spec: Any) -> str:
    if isinstance(spec, str):
        return spec
    return f"inline[{len(spec)}]"


def expand_grid(config: dict) -> list[dict]:
    """Cartesian product of the grid axes (declared order) over the base."""
    base = dict(config.get("base", {}))
    grid = config.get("grid", {})
    if not grid:
        return [base]
    keys = list(grid)
    cells = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        cell = dict(base)
        cell.update(zip(keys, combo))
        cells.append(cell)
    return cells


def _cell_row(cell: dict, results: list, seed_list: Sequence[int]) -> dict:
    params = _cell_params(cell)
    agree_ok = sum(1 for r in results if r[1])
    decided_runs = sum(1 for r in results if r[2] > 0)
    latencies = [lat for r in results for lat in r[3]]
    lat = summarize(latencies)
    runs = len(seed_list)
    combined = "|".join(r[8] for r in results)
    return {
        "n": params.n,
        "f": params.f,
        "backend": cell.get("backend", "sim"),
        "cast": cell.get("cast", "none"),
        "policy": cell.get(
            "policy",
            "live_default" if cell.get("backend") == "asyncio" else "uniform",
        ),
        "timeline": _timeline_label(cell.get("timeline", "none")),
        "runs": runs,
        "proposed": sum(1 for r in results if r[0]),
        "agreement_ok": agree_ok,
        "decided_runs": decided_runs,
        "latency_mean_d": lat.mean / params.d if lat else None,
        "latency_max_d": lat.maximum / params.d if lat else None,
        "sent_mean": sum(r[4] for r in results) / runs if runs else None,
        "dropped_partition_mean": sum(r[6] for r in results) / runs if runs else None,
        "dropped_policy_mean": sum(r[7] for r in results) / runs if runs else None,
        "digest": _combine_digests(combined),
    }


def _combine_digests(combined: str) -> str:
    import hashlib

    return hashlib.sha256(combined.encode()).hexdigest()[:12]


def run_suite(
    config: dict,
    workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    shards: Optional[int] = None,
    shard_transport: Optional[str] = None,
) -> list[dict]:
    """Run a whole suite config; one consolidated row per scenario cell.

    ``seeds``/``workers`` override the config's own values (CLI flags).
    ``shards`` runs every sim-backend cell on the sharded kernel
    (:mod:`repro.sim.shard`); rows and digests are bit-identical to serial.
    Rows come back in grid order and are bit-identical for any worker
    count: each (cell, seed) run is a pure function shipped to the shared
    process pool, and aggregation happens in seed order in the parent.
    """
    seed_list = list(seeds if seeds is not None else config.get("seeds", range(3)))
    cells = expand_grid(config)
    if shards is not None:
        cells = [
            dict(cell, shards=shards, shard_transport=shard_transport)
            if cell.get("backend", "sim") == "sim"
            else cell
            for cell in cells
        ]
    rows = []
    with SeedPool.shared(workers) as pool:
        for cell in cells:
            results = pool.map(partial(_run_cell, cell), seed_list)
            rows.append(_cell_row(cell, results, seed_list))
    return rows


def load_suite_config(path: "str | Path") -> dict:
    """Read a suite config from a JSON file."""
    return json.loads(Path(path).read_text())


def suite_report(config: dict, rows: Sequence[dict]) -> str:
    """Consolidated Markdown report for a finished suite run."""
    name = config.get("name", "suite")
    cells = len(rows)
    runs = sum(row["runs"] for row in rows)
    clean = sum(1 for row in rows if row["agreement_ok"] == row["runs"])
    header = (
        f"Suite `{name}`: {cells} scenario cells, {runs} runs; "
        f"{clean}/{cells} cells with agreement on every seed.\n\n"
    )
    return header + rows_to_markdown(list(rows), title=f"Scenario matrix: {name}")


# ---------------------------------------------------------------------------
# Presets (the CLI's --preset and the CI suite-smoke gate)
# ---------------------------------------------------------------------------
SUITE_PRESETS: dict[str, dict] = {
    # Tiny end-to-end gate: 2 timelines x 2 seeds through the full engine.
    "smoke": {
        "name": "smoke",
        "seeds": [0, 1],
        "base": {"delta": 1.0, "rho": DEFAULT_RHO, "value": "v"},
        "grid": {
            "n": [4],
            "timeline": ["none", "partition_heal"],
        },
    },
    # Fault-timeline tour: every named timeline against two cluster sizes.
    "timelines": {
        "name": "timelines",
        "seeds": [0, 1, 2],
        "base": {"delta": 1.0, "rho": DEFAULT_RHO, "value": "v", "run_for_d": 24.0},
        "grid": {
            "n": [4, 7],
            "timeline": [
                "none",
                "partition_heal",
                "partition_late_heal",
                "delay_storm",
                "bursty",
                "churn",
                "partition_storm",
            ],
        },
    },
    # Wall-clock smoke: the same timeline specs interpreted *live* by the
    # asyncio backend's fault driver (real timers, real elapsed time).  Not
    # digest-pinned -- wall-clock jitter moves the counters between runs.
    # The horizon covers a full IG3 back-off: a cut that outlasts the
    # in-flight traffic silences the live event pump and fails the first
    # initiation, so the agreement completes on the General's paced
    # re-proposal wave once Delta_reset (168d at f=1) has elapsed.
    "live_smoke": {
        "name": "live_smoke",
        "seeds": [0],
        "base": {
            "delta": 1.0,
            "rho": 0.0,
            "value": "v",
            "backend": "asyncio",
            "policy": "live_default",
            "time_scale": 0.02,
            "repropose_every_d": 2.0,
            "run_for_d": 185.0,
        },
        "grid": {
            "n": [4],
            "timeline": ["none", "partition_heal"],
        },
    },
    # Casts x policies: adversarial participants under network regimes.
    "casts": {
        "name": "casts",
        "seeds": [0, 1, 2],
        "base": {"delta": 1.0, "rho": DEFAULT_RHO, "value": "v"},
        "grid": {
            "n": [7],
            "cast": ["none", "crash_one", "crash_f", "mirror", "twofaced"],
            "policy": ["uniform", "fast", "delay_storm", "bursty"],
        },
    },
}


__all__ = [
    "CAST_BUILDERS",
    "SUITE_PRESETS",
    "expand_grid",
    "load_suite_config",
    "run_suite",
    "suite_report",
]
