"""Every theorem of the paper as an executable checker.

Each checker inspects a finished run (the cluster's trace, decisions and
clocks) and returns a :class:`PropertyReport` saying whether the claimed
property held, with the measured quantities that witnessed it.  The bound
constants are taken verbatim from the paper:

=====================  =====================================================
Checker                Paper property
=====================  =====================================================
``agreement``          Agreement (Theorem 3)
``validity``           Validity (Theorem 3)
``termination``        Termination + Timeliness-3
``timeliness_agreement``  Timeliness-1 (a)-(d)
``timeliness_validity``   Timeliness-2
``separation``         Timeliness-4 / IA-4 (Uniqueness)
``ia_correctness``     IA-1 [1A]-[1D]
``ia_unforgeability``  IA-2
``ia_relay``           IA-3 [3A]
``tps_correctness``    TPS-1
``tps_unforgeability`` TPS-2
``tps_relay``          TPS-3
``tps_detection``      TPS-4 (second half)
=====================  =====================================================

A small numerical slack (``EPS`` times d) absorbs float arithmetic; all
bounds are otherwise exactly the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Optional, Sequence

from repro.core.params import BOTTOM
from repro.harness import metrics
from repro.harness.scenario import Cluster

EPS = 1e-6  # multiplied by d and added to every bound


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of checking one property on one run."""

    name: str
    holds: bool
    details: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def expect(self) -> "PropertyReport":
        """Assert the property holds (for use in tests); returns self."""
        assert self.holds, f"{self.name} violated: {self.details}"
        return self


def _slack(cluster: Cluster) -> float:
    return EPS * cluster.params.d


# ---------------------------------------------------------------------------
# Core agreement properties (Theorem 3)
# ---------------------------------------------------------------------------
def agreement(
    cluster: Cluster,
    general: int,
    since_real: float = 0.0,
    exclude: Sequence[int] = (),
) -> PropertyReport:
    """If any correct node decides (G, m), all correct nodes decide (G, m).

    Checked over each node's *latest* outcome after ``since_real`` (earlier
    outcomes may predate stabilization).  ``exclude`` removes nodes that
    stopped being correct mid-run (e.g. churned by a fault timeline): a
    crashed-and-restarted node is *non-faulty but not correct* in the
    paper's Definition 4, so the guarantee is quantified over the others.
    """
    excluded = set(exclude)
    latest = {
        node: dec
        for node, dec in cluster.latest_decision_per_node(general, since_real).items()
        if node not in excluded
    }
    values = metrics.decision_values(latest.values())
    if not values:
        return PropertyReport("agreement", True, {"note": "no correct node decided"})
    single_value = len(values) == 1
    everyone = set(latest) == set(cluster.correct_ids) - excluded and all(
        dec.decided for dec in latest.values()
    )
    return PropertyReport(
        "agreement",
        single_value and everyone,
        {
            "values": sorted(map(repr, values)),
            "deciders": sorted(n for n, d in latest.items() if d.decided),
            "correct": sorted(cluster.correct_ids),
        },
    )


def validity(
    cluster: Cluster, general: int, value: object, since_real: float = 0.0
) -> PropertyReport:
    """With a correct General, every correct node decides the sent value."""
    latest = cluster.latest_decision_per_node(general, since_real)
    missing = [n for n in cluster.correct_ids if n not in latest]
    wrong = [
        (n, dec.value) for n, dec in latest.items() if dec.value != value
    ]
    return PropertyReport(
        "validity",
        not missing and not wrong,
        {"expected": value, "missing": missing, "wrong": wrong},
    )


def termination(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """Every correct node that anchored (I-accepted) also returned, within
    ``Delta_agr`` of its anchor (Timeliness-3)."""
    p = cluster.params
    slack = _slack(cluster)
    accepts = metrics.i_accept_events(cluster, general, since_real)
    latest = cluster.latest_decision_per_node(general, since_real)
    failures = []
    for node_id, accept_real, _value, tau_g_real in accepts:
        dec = latest.get(node_id)
        if dec is None:
            failures.append((node_id, "anchored but never returned"))
            continue
        elapsed = dec.returned_real - tau_g_real
        # Timeliness-3: terminate within Delta_agr of invocation; measured
        # from the anchor, which precedes the invocation estimate.
        if elapsed > p.delta_agr + 8 * p.d + slack:
            failures.append((node_id, f"returned {elapsed:.3f} after anchor"))
    return PropertyReport(
        "termination",
        not failures,
        {"failures": failures, "bound": p.delta_agr},
    )


def timeliness_agreement(
    cluster: Cluster, general: int, since_real: float = 0.0, validity_held: bool = False
) -> PropertyReport:
    """Timeliness-1: decision spread, anchor skew, anchor-precedes-decision."""
    p = cluster.params
    slack = _slack(cluster)
    latest = cluster.latest_decision_per_node(general, since_real)
    decided = metrics.decided_only(list(latest.values()))
    if len(decided) < 2:
        return PropertyReport(
            "timeliness_agreement", True, {"note": "fewer than two deciders"}
        )
    spread_bound = (2.0 if validity_held else 3.0) * p.d
    spread = metrics.decision_spread_real(decided) or 0.0
    anchors = metrics.anchor_spread_real(decided) or 0.0
    ordered = all(
        dec.tau_g_real is not None
        and dec.tau_g_real <= dec.returned_real + slack
        and dec.returned_real - dec.tau_g_real <= p.delta_agr + 8 * p.d + slack
        for dec in decided
    )
    holds = (
        spread <= spread_bound + slack
        and anchors <= 6.0 * p.d + slack
        and ordered
    )
    return PropertyReport(
        "timeliness_agreement",
        holds,
        {
            "decision_spread": spread,
            "decision_spread_bound": spread_bound,
            "anchor_spread": anchors,
            "anchor_spread_bound": 6.0 * p.d,
            "ordered": ordered,
        },
    )


def timeliness_validity(
    cluster: Cluster, general: int, t0_real: float, since_real: float = 0.0
) -> PropertyReport:
    """Timeliness-2: ``t0 - d <= rt(tau_G_q) <= rt(tau_q) <= t0 + 4d``."""
    p = cluster.params
    slack = _slack(cluster)
    latest = cluster.latest_decision_per_node(general, since_real)
    decided = metrics.decided_only(list(latest.values()))
    failures = []
    for dec in decided:
        if dec.tau_g_real is None:
            failures.append((dec.node, "no anchor"))
            continue
        if not (
            t0_real - p.d - slack
            <= dec.tau_g_real
            <= dec.returned_real + slack
        ):
            failures.append((dec.node, f"anchor {dec.tau_g_real:.3f}"))
        if dec.returned_real > t0_real + 4.0 * p.d + slack:
            failures.append((dec.node, f"returned {dec.returned_real:.3f}"))
    return PropertyReport(
        "timeliness_validity",
        bool(decided) and not failures,
        {"t0": t0_real, "failures": failures, "deciders": len(decided)},
    )


def separation(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """Timeliness-4 / IA-4: anchors of distinct agreements are separated.

    For any two correct-node I-accepts for this General:
    different values -> anchors more than ``4d`` apart;
    same value -> anchors within ``6d`` or more than ``2 Delta_rmv - 3d``
    apart.
    """
    p = cluster.params
    slack = _slack(cluster)
    accepts = metrics.i_accept_events(cluster, general, since_real)
    violations = []
    for (n1, _t1, m1, a1), (n2, _t2, m2, a2) in combinations(accepts, 2):
        gap = abs(a1 - a2)
        if m1 != m2:
            if gap <= 4.0 * p.d - slack:
                violations.append((n1, n2, repr(m1), repr(m2), gap))
        else:
            if gap > 6.0 * p.d + slack and gap <= 2.0 * p.delta_rmv - 3.0 * p.d - slack:
                violations.append((n1, n2, repr(m1), repr(m2), gap))
    return PropertyReport(
        "separation",
        not violations,
        {"violations": violations, "accepts": len(accepts)},
    )


# ---------------------------------------------------------------------------
# Initiator-Accept properties (Theorem 1)
# ---------------------------------------------------------------------------
def ia_correctness(
    cluster: Cluster,
    general: int,
    value: object,
    t0_real: float,
    since_real: float = 0.0,
) -> PropertyReport:
    """IA-1: all correct nodes I-accept (G, m) fast, close, and anchored.

    [1A] all accept within ``4d`` of the (correct) General's initiation at
    ``t0``; [1B] accepts within ``2d`` of each other; [1C] anchors within
    ``d`` of each other; [1D] ``t0 - d <= rt(tau_G) <= rt(accept) <= t0+4d``.
    """
    p = cluster.params
    slack = _slack(cluster)
    accepts = [
        (node, t, m, anchor)
        for node, t, m, anchor in metrics.i_accept_events(cluster, general, since_real)
        if m == value
    ]
    accepted_nodes = {node for node, _t, _m, _a in accepts}
    all_accepted = accepted_nodes == set(cluster.correct_ids)
    times = [t for _n, t, _m, _a in accepts]
    anchors = [a for _n, _t, _m, a in accepts]
    within_4d = all(t <= t0_real + 4.0 * p.d + slack for t in times)
    spread_2d = (max(times) - min(times) <= 2.0 * p.d + slack) if times else False
    anchor_d = (max(anchors) - min(anchors) <= p.d + slack) if anchors else False
    bounds_1d = all(
        t0_real - p.d - slack <= a <= t + slack and t <= t0_real + 4.0 * p.d + slack
        for (_n, t, _m, a) in accepts
    )
    return PropertyReport(
        "ia_correctness",
        all_accepted and within_4d and spread_2d and anchor_d and bounds_1d,
        {
            "accepted_nodes": sorted(accepted_nodes),
            "correct": sorted(cluster.correct_ids),
            "accept_spread": (max(times) - min(times)) if times else None,
            "anchor_spread": (max(anchors) - min(anchors)) if anchors else None,
            "within_4d": within_4d,
        },
    )


def ia_unforgeability(
    cluster: Cluster, general: int, value: object, since_real: float = 0.0
) -> PropertyReport:
    """IA-2: no correct node I-accepts a value no correct node invoked."""
    accepts = [
        (node, t)
        for node, t, m, _a in metrics.i_accept_events(cluster, general, since_real)
        if m == value
    ]
    return PropertyReport(
        "ia_unforgeability", not accepts, {"forged_accepts": accepts}
    )


def ia_relay(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """IA-3 [3A]: a fresh I-accept at one correct node drags all along.

    For every correct I-accept whose age (accept time minus anchor) is within
    ``Delta_agr``: every correct node I-accepts the same value within ``2d``,
    with anchors within ``6d``.
    """
    p = cluster.params
    slack = _slack(cluster)
    accepts = metrics.i_accept_events(cluster, general, since_real)
    by_value: dict[object, list[tuple[int, float, float]]] = {}
    for node, t, m, anchor in accepts:
        by_value.setdefault(m, []).append((node, t, anchor))
    failures = []
    for m, group in by_value.items():
        fresh = [
            (node, t, anchor)
            for node, t, anchor in group
            if t - anchor <= p.delta_agr + slack
        ]
        if not fresh:
            continue
        nodes = {node for node, _t, _a in group}
        if nodes != set(cluster.correct_ids):
            failures.append((repr(m), "missing accepts", sorted(nodes)))
            continue
        times = [t for _n, t, _a in group]
        anchors = [a for _n, _t, a in group]
        if max(times) - min(times) > 2.0 * p.d + slack:
            failures.append((repr(m), "accept spread", max(times) - min(times)))
        if max(anchors) - min(anchors) > 6.0 * p.d + slack:
            failures.append((repr(m), "anchor spread", max(anchors) - min(anchors)))
    return PropertyReport("ia_relay", not failures, {"failures": failures})


# ---------------------------------------------------------------------------
# msgd-broadcast properties (Theorem 2)
# ---------------------------------------------------------------------------
def tps_correctness(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """TPS-1: a correct msgd-broadcast (p, m, k) is accepted by all correct
    nodes within ``3d`` (real time) of the invocation."""
    p = cluster.params
    slack = _slack(cluster)
    invokes = metrics.mb_invoke_events(cluster, general, since_real)
    accepts = metrics.mb_accept_events(cluster, general, since_real)
    failures = []
    for origin, t_invoke, value, k in invokes:
        matching = {
            node: t
            for node, t, o, m, kk in accepts
            if o == origin and m == value and kk == k
        }
        missing = set(cluster.correct_ids) - set(matching)
        if missing:
            failures.append((origin, value, k, "missing", sorted(missing)))
            continue
        late = {
            node: t
            for node, t in matching.items()
            if abs(t - t_invoke) > 3.0 * p.d + slack
        }
        if late:
            failures.append((origin, value, k, "late", late))
    return PropertyReport(
        "tps_correctness", not failures, {"failures": failures, "invokes": len(invokes)}
    )


def tps_unforgeability(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """TPS-2: no accept of (p, m, k) for a correct p that never broadcast it."""
    invoked = {
        (origin, value, k)
        for origin, _t, value, k in metrics.mb_invoke_events(
            cluster, general, since_real
        )
    }
    correct = set(cluster.correct_ids)
    forged = [
        (node, origin, value, k)
        for node, _t, origin, value, k in metrics.mb_accept_events(
            cluster, general, since_real
        )
        if origin in correct and (origin, value, k) not in invoked
    ]
    return PropertyReport("tps_unforgeability", not forged, {"forged": forged})


def tps_relay(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """TPS-3 (real-time corollary): one correct accept drags all within 4d."""
    p = cluster.params
    slack = _slack(cluster)
    accepts = metrics.mb_accept_events(cluster, general, since_real)
    by_triplet: dict[tuple, dict[int, float]] = {}
    for node, t, origin, value, k in accepts:
        by_triplet.setdefault((origin, value, k), {})[node] = t
    failures = []
    for triplet, per_node in by_triplet.items():
        missing = set(cluster.correct_ids) - set(per_node)
        if missing:
            failures.append((triplet, "missing", sorted(missing)))
            continue
        spread = max(per_node.values()) - min(per_node.values())
        if spread > 4.0 * p.d + slack:
            failures.append((triplet, "spread", spread))
    return PropertyReport(
        "tps_relay", not failures, {"failures": failures, "triplets": len(by_triplet)}
    )


def tps_detection(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> PropertyReport:
    """TPS-4 (second half): a correct node that never msgd-broadcast is never
    in any correct node's broadcasters set."""
    invoked_origins = {
        origin
        for origin, _t, _v, _k in metrics.mb_invoke_events(cluster, general, since_real)
    }
    correct = set(cluster.correct_ids)
    violations = []
    for ev in cluster.tracer.of_kind("mb_broadcaster"):
        if ev.node not in correct or ev.real_time < since_real:
            continue
        if ev.detail.get("general") != general:
            continue
        origin = ev.detail["origin"]
        if origin in correct and origin not in invoked_origins:
            violations.append((ev.node, origin, ev.real_time))
    return PropertyReport("tps_detection", not violations, {"violations": violations})


def check_all_stable(
    cluster: Cluster, general: int, since_real: float = 0.0
) -> list[PropertyReport]:
    """Run every always-applicable checker for one General."""
    return [
        agreement(cluster, general, since_real),
        termination(cluster, general, since_real),
        timeliness_agreement(cluster, general, since_real),
        separation(cluster, general, since_real),
        ia_relay(cluster, general, since_real),
        tps_unforgeability(cluster, general, since_real),
        tps_relay(cluster, general, since_real),
        tps_detection(cluster, general, since_real),
    ]


__all__ = [
    "PropertyReport",
    "agreement",
    "check_all_stable",
    "ia_correctness",
    "ia_relay",
    "ia_unforgeability",
    "separation",
    "termination",
    "timeliness_agreement",
    "timeliness_validity",
    "tps_correctness",
    "tps_detection",
    "tps_relay",
    "tps_unforgeability",
    "validity",
]
