"""Report rendering: experiment rows to Markdown / CSV, trace timelines.

The benchmark suite prints raw rows; these helpers turn the same rows into
the artifacts EXPERIMENTS.md embeds, and render per-node event timelines
from a run trace for debugging.
"""

from __future__ import annotations

import io
from typing import Any, Optional, Sequence

from repro.harness.scenario import Cluster
from repro.sim.trace import TraceEvent


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def rows_to_markdown(rows: Sequence[dict], title: str = "") -> str:
    """Render homogeneous row dicts as a GitHub-flavoured Markdown table."""
    if not rows:
        return f"*{title}: no rows*" if title else "*no rows*"
    columns = list(rows[0])
    out = io.StringIO()
    if title:
        out.write(f"### {title}\n\n")
    out.write("| " + " | ".join(columns) + " |\n")
    out.write("|" + "|".join("---" for _ in columns) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(_fmt(row.get(col, "")) for col in columns) + " |\n")
    return out.getvalue()


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Render rows as CSV text (stable column order from the first row)."""
    if not rows:
        return ""
    columns = list(rows[0])
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_fmt(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"


INTERESTING_KINDS = (
    "propose",
    "i_accept",
    "decide",
    "abort",
    "mb_invoke",
    "mb_accept",
    "corrupt",
    "coherent",
    "pulse",
    "initiation_failed",
)


def timeline(
    cluster: Cluster,
    kinds: Sequence[str] = INTERESTING_KINDS,
    node: Optional[int] = None,
    limit: Optional[int] = None,
) -> str:
    """Human-readable timeline of the semantically interesting trace events.

    One line per event: real time, node, kind, and the detail payload.
    """
    wanted = set(kinds)
    lines = []
    for ev in cluster.tracer.events:
        if ev.kind not in wanted:
            continue
        if node is not None and ev.node != node:
            continue
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(ev.detail.items()))
        who = "net " if ev.node is None else f"n{ev.node:<3}"
        lines.append(f"{ev.real_time:10.3f}  {who} {ev.kind:<18} {detail}")
        if limit is not None and len(lines) >= limit:
            lines.append("... (truncated)")
            break
    return "\n".join(lines)


def decision_table(cluster: Cluster, general: int) -> str:
    """Markdown table of the latest per-node outcomes for one General."""
    latest = cluster.latest_decision_per_node(general)
    rows = [
        {
            "node": node_id,
            "value": repr(latest[node_id].value),
            "returned_real": latest[node_id].returned_real,
            "tau_g_real": latest[node_id].tau_g_real,
        }
        for node_id in sorted(latest)
    ]
    return rows_to_markdown(rows, title=f"Decisions for General {general}")


__all__ = [
    "INTERESTING_KINDS",
    "decision_table",
    "rows_to_csv",
    "rows_to_markdown",
    "timeline",
]
