"""Experiment drivers E1..E10 (see DESIGN.md section 4).

Each experiment is *data* in the :mod:`repro.harness.registry`: a
groups-builder expands the sweep kwargs into :class:`~repro.harness.
registry.ScenarioGroup` entries (a picklable per-seed callable plus a
parent-side row builder), and the shared :func:`~repro.harness.registry.
run_experiment` engine handles seeds, ``workers=`` fan-out via
:meth:`~repro.harness.parallel.SeedPool.shared`, and row aggregation in
group order.  The public ``run_eN_*`` drivers below are thin wrappers over
the engine and keep their exact historical signatures and row contents --
the benchmark suite (``benchmarks/bench_e*.py``) times and prints them;
EXPERIMENTS.md records paper-bound vs. measured.

Every driver takes ``seeds`` so callers can trade confidence for runtime,
and ``workers`` to fan the per-seed runs out over a process pool
(:mod:`repro.harness.parallel`).  The default ``workers=None`` runs
serially; any worker count returns bit-identical rows because each
per-seed run is a pure function of (scenario, seed) and results are
aggregated in seed order.  The per-seed bodies live in module-level
``_eN_seed`` functions so they pickle cleanly into pool workers.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.baselines.eig import EigCluster
from repro.baselines.tps87 import Tps87Cluster
from repro.core.params import BOTTOM, ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    SelectiveGeneralStrategy,
    SplitWorldStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.faults.transient import TransientFaultInjector
from repro.harness import metrics, properties
from repro.harness.registry import ScenarioGroup, experiment, run_experiment
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.stats import summarize
from repro.net.delivery import DeliveryPolicy, UniformDelay

DEFAULT_RHO = 1e-4


def _params(n: int, f: Optional[int] = None, delta: float = 1.0) -> ProtocolParams:
    return ProtocolParams(n=n, f=f if f is not None else max_faults(n), delta=delta, rho=DEFAULT_RHO)


# ---------------------------------------------------------------------------
# E1 -- Validity + Timeliness-2 with a correct General
# ---------------------------------------------------------------------------
def _e1_seed(params: ProtocolParams, seed: int) -> tuple:
    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    t0 = cluster.sim.now
    assert cluster.propose(general=0, value="m1")
    cluster.run_for(params.delta_agr + 10 * params.d)
    decs = list(cluster.latest_decision_per_node(0).values())
    return (
        properties.validity(cluster, 0, "m1").holds,
        properties.timeliness_validity(cluster, 0, t0).holds,
        metrics.decision_latencies(decs, t0),
        metrics.decision_spread_real(decs),
    )


def _e1_rows(params: ProtocolParams, results: list, seed_list: Sequence[int]) -> list[dict]:
    ok_validity = ok_timeliness = 0
    latencies: list[float] = []
    spreads: list[float] = []
    for v_ok, t_ok, lats, spread in results:
        if v_ok:
            ok_validity += 1
        if t_ok:
            ok_timeliness += 1
        latencies.extend(lats)
        if spread is not None:
            spreads.append(spread)
    lat = summarize(latencies)
    return [
        {
            "n": params.n,
            "f": params.f,
            "runs": len(seed_list),
            "validity_ok": ok_validity,
            "timeliness_ok": ok_timeliness,
            "latency_mean_d": lat.mean / params.d if lat else None,
            "latency_max_d": lat.maximum / params.d if lat else None,
            "latency_bound_d": 4.0,  # paper: rt(tau_q) <= t0 + 4d
            "spread_max_d": max(spreads) / params.d if spreads else None,
            "spread_bound_d": 2.0,  # paper: 2d under validity
        }
    ]


@experiment(
    "e1",
    title="E1: validity and timeliness with a correct General",
    defaults={"ns": (4, 7, 10, 13), "seeds": range(10)},
)
def _e1_groups(ns: Sequence[int] = (4, 7, 10, 13)) -> list[ScenarioGroup]:
    """Correct General: everyone decides its value within the paper bounds."""
    groups = []
    for n in ns:
        params = _params(n)
        groups.append(
            ScenarioGroup(
                seed_fn=partial(_e1_seed, params),
                rows=partial(_e1_rows, params),
                label=f"n={n}",
            )
        )
    return groups


def run_e1_validity(
    ns: Sequence[int] = (4, 7, 10, 13),
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """Correct General: everyone decides its value within the paper bounds."""
    return run_experiment("e1", ns=ns, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E2 -- Agreement under a Byzantine General
# ---------------------------------------------------------------------------
def _e2_seed(params: ProtocolParams, byz: dict, seed: int) -> tuple:
    cluster = Cluster(ScenarioConfig(params=params, seed=seed, byzantine=byz))
    cluster.run_for(3 * params.delta_agr)
    agree = properties.agreement(cluster, 0).holds
    latest = cluster.latest_decision_per_node(0)
    decided = any(dec.decided for dec in latest.values())
    return agree, decided


def _e2_rows(name: str, results: list, seed_list: Sequence[int]) -> list[dict]:
    agree_ok = sum(1 for agree, _ in results if agree)
    split = sum(1 for agree, _ in results if not agree)
    decided_runs = sum(1 for _, decided in results if decided)
    return [
        {
            "attack": name,
            "runs": len(seed_list),
            "agreement_ok": agree_ok,
            "splits": split,
            "runs_with_decision": decided_runs,
        }
    ]


@experiment(
    "e2",
    title="E2: agreement under a Byzantine General",
    defaults={"n": 7, "seeds": range(10)},
)
def _e2_groups(n: int = 7) -> list[ScenarioGroup]:
    """Adversarial General strategies: all-or-nothing, single value, always."""
    params = _params(n)
    others = tuple(range(1, n))
    half = len(others) // 2
    attacks = {
        "equivocate": {
            0: EquivocatingGeneralStrategy("A", "B", others[:half], others[half:])
        },
        "equivocate+twofaced": {
            0: EquivocatingGeneralStrategy("A", "B", others[:half], others[half:]),
            n - 1: TwoFacedParticipantStrategy(others[:half]),
        },
        "staggered_2d": {0: StaggeredGeneralStrategy("S", spread_local=2 * params.d)},
        "staggered_8d": {0: StaggeredGeneralStrategy("S", spread_local=8 * params.d)},
        "staggered_3phi": {
            0: StaggeredGeneralStrategy("S", spread_local=3 * params.phi),
            n - 1: MirrorParticipantStrategy(),
        },
        "selective_quorum": {0: SelectiveGeneralStrategy("X", others[: n - 2])},
        "selective_subquorum": {0: SelectiveGeneralStrategy("X", others[:2])},
    }
    return [
        ScenarioGroup(
            seed_fn=partial(_e2_seed, params, byz),
            rows=partial(_e2_rows, name),
            label=name,
        )
        for name, byz in attacks.items()
    ]


def run_e2_byzantine_general(
    n: int = 7,
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """Adversarial General strategies: all-or-nothing, single value, always."""
    return run_experiment("e2", n=n, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E3 -- Self-stabilization from arbitrary state
# ---------------------------------------------------------------------------
def _e3_seed(params: ProtocolParams, garbage_messages: int, seed: int) -> tuple:
    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    injector = TransientFaultInjector(
        params,
        cluster.rng.split("injector"),
        value_pool=["A", "B", "C"],
        generals=[0, 1],
    )
    cluster.run_for(5.0 * params.d)
    injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages)
    cluster.mark_coherent()
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    t0 = cluster.sim.now
    proposed = cluster.propose(general=0, value="recovered")
    cluster.run_for(params.delta_agr + 10 * params.d)
    v_ok = properties.validity(cluster, 0, "recovered", since_real=since).holds
    t_ok = properties.timeliness_validity(cluster, 0, t0, since_real=since).holds
    return proposed, v_ok, t_ok


def _e3_rows(
    params: ProtocolParams,
    garbage_messages: int,
    results: list,
    seed_list: Sequence[int],
) -> list[dict]:
    recovered = sum(1 for proposed, _, _ in results if proposed)
    post_validity = sum(1 for _, v_ok, _ in results if v_ok)
    post_timeliness = sum(1 for _, _, t_ok in results if t_ok)
    return [
        {
            "n": params.n,
            "f": params.f,
            "runs": len(seed_list),
            "garbage_messages": garbage_messages,
            "proposal_unblocked": recovered,
            "post_stb_validity": post_validity,
            "post_stb_timeliness": post_timeliness,
            "stabilization_bound_d": params.delta_stb / params.d,
        }
    ]


@experiment(
    "e3",
    title="E3: self-stabilization from arbitrary state",
    defaults={"n": 7, "garbage_messages": 300, "seeds": range(10)},
)
def _e3_groups(n: int = 7, garbage_messages: int = 300) -> list[ScenarioGroup]:
    """Havoc everything, wait Delta_stb, then demand a clean agreement."""
    params = _params(n)
    return [
        ScenarioGroup(
            seed_fn=partial(_e3_seed, params, garbage_messages),
            rows=partial(_e3_rows, params, garbage_messages),
        )
    ]


def run_e3_stabilization(
    n: int = 7,
    seeds: Sequence[int] = range(10),
    garbage_messages: int = 300,
    workers: Optional[int] = None,
) -> list[dict]:
    """Havoc everything, wait Delta_stb, then demand a clean agreement."""
    return run_experiment(
        "e3", n=n, garbage_messages=garbage_messages, seeds=seeds, workers=workers
    )


# ---------------------------------------------------------------------------
# E4 -- Early stopping: decision time scales with actual faults f'
# ---------------------------------------------------------------------------
def _e4_seed(params: ProtocolParams, f_actual: int, seed: int) -> tuple:
    byz = {params.n - 1 - i: CrashStrategy() for i in range(f_actual)}
    cluster = Cluster(ScenarioConfig(params=params, seed=seed, byzantine=byz))
    t0 = cluster.sim.now
    assert cluster.propose(general=0, value="v")
    cluster.run_for(params.delta_agr + 10 * params.d)
    decs = list(cluster.latest_decision_per_node(0).values())
    return (
        properties.validity(cluster, 0, "v").holds,
        metrics.decision_latencies(decs, t0),
    )


def _e4_rows(
    params: ProtocolParams, f_actual: int, results: list, seed_list: Sequence[int]
) -> list[dict]:
    latencies: list[float] = []
    validity_ok = 0
    for v_ok, lats in results:
        if v_ok:
            validity_ok += 1
        latencies.extend(lats)
    lat = summarize(latencies)
    return [
        {
            "n": params.n,
            "f": params.f,
            "f_actual": f_actual,
            "runs": len(seed_list),
            "validity_ok": validity_ok,
            "latency_mean_d": lat.mean / params.d if lat else None,
            "latency_max_d": lat.maximum / params.d if lat else None,
            "worstcase_bound_d": params.delta_agr / params.d,
        }
    ]


@experiment(
    "e4",
    title="E4: early stopping in the actual fault count",
    defaults={"n": 13, "seeds": range(10)},
)
def _e4_groups(n: int = 13) -> list[ScenarioGroup]:
    """Crash-faulty subsets of size f' = 0..f; latency tracks f', not f."""
    params = _params(n)
    return [
        ScenarioGroup(
            seed_fn=partial(_e4_seed, params, f_actual),
            rows=partial(_e4_rows, params, f_actual),
            label=f"f'={f_actual}",
        )
        for f_actual in range(params.f + 1)
    ]


def run_e4_early_stopping(
    n: int = 13,
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """Crash-faulty subsets of size f' = 0..f; latency tracks f', not f."""
    return run_experiment("e4", n=n, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E5 -- Message-driven vs time-driven rounds
# ---------------------------------------------------------------------------
def _e5_seed(
    params: ProtocolParams, policy: DeliveryPolicy, actual_max: float, seed: int
) -> tuple:
    # Speed experiment: rows are built from decisions and message counters
    # only, never from the trace, so tracing runs on its zero-cost disabled
    # path.  Protocol behaviour (and hence every row) is unaffected.
    cluster = Cluster(
        ScenarioConfig(params=params, seed=seed, policy=policy, trace=False)
    )
    t0 = cluster.sim.now
    assert cluster.propose(general=0, value="v")
    cluster.run_for(params.delta_agr + 10 * params.d)
    decs = list(cluster.latest_decision_per_node(0).values())
    ss_lat = metrics.decision_latencies(decs, t0)

    tps = Tps87Cluster(params, seed=seed, policy=UniformDelay(0.1 * actual_max, actual_max))
    tps.initiate("v")
    tps_decs = tps.run_to_completion()
    tps_lat = [d.returned_real for d in tps_decs if d.decided]
    return ss_lat, tps_lat


def _e5_rows(
    params: ProtocolParams, frac: float, results: list, seed_list: Sequence[int]
) -> list[dict]:
    ss_lat: list[float] = []
    tps_lat: list[float] = []
    for ss, tp in results:
        ss_lat.extend(ss)
        tps_lat.extend(tp)
    ss = summarize(ss_lat)
    tp = summarize(tps_lat)
    return [
        {
            "actual_delay_frac": frac,
            "ss_latency_mean": ss.mean if ss else None,
            "tps_latency_mean": tp.mean if tp else None,
            "speedup": (tp.mean / ss.mean) if ss and tp and ss.mean > 0 else None,
            "phi": params.phi,
        }
    ]


@experiment(
    "e5",
    title="E5: message-driven vs time-driven rounds",
    defaults={"n": 7, "delay_fracs": (0.1, 0.25, 0.5, 0.75, 1.0), "seeds": range(5)},
)
def _e5_groups(
    n: int = 7, delay_fracs: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)
) -> list[ScenarioGroup]:
    """Latency of ss-Byz-Agree vs TPS'87 as actual delay shrinks below delta.

    The model bound ``delta`` (hence ``d``, ``Phi``) is fixed; the *actual*
    delays sweep downward.  The paper's claim: ss-Byz-Agree finishes at
    actual-network speed, the lock-step baseline at ``Phi`` granularity.
    """
    params = _params(n)
    groups = []
    for frac in delay_fracs:
        actual_max = frac * params.delta
        policy = UniformDelay(0.1 * actual_max, actual_max)
        groups.append(
            ScenarioGroup(
                seed_fn=partial(_e5_seed, params, policy, actual_max),
                rows=partial(_e5_rows, params, frac),
                label=f"delay={frac}",
            )
        )
    return groups


def run_e5_msg_driven(
    n: int = 7,
    delay_fracs: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    seeds: Sequence[int] = range(5),
    workers: Optional[int] = None,
) -> list[dict]:
    """Latency of ss-Byz-Agree vs TPS'87 as actual delay shrinks below delta."""
    return run_experiment(
        "e5", n=n, delay_fracs=delay_fracs, seeds=seeds, workers=workers
    )


# ---------------------------------------------------------------------------
# E6 -- Resilience boundary: n > 3f
# ---------------------------------------------------------------------------
def _e6_seed(
    params: ProtocolParams,
    byz_count: int,
    camp_a: tuple,
    camp_b: tuple,
    seed: int,
) -> bool:
    n = params.n
    general = 0
    helpers = [n - 1 - i for i in range(byz_count - 1)]
    byz: dict = {general: EquivocatingGeneralStrategy("A", "B", camp_a, camp_b)}
    for helper in helpers:
        byz[helper] = SplitWorldStrategy(general, "A", "B", camp_a, camp_b)
    cluster = Cluster(
        ScenarioConfig(
            params=params,
            seed=seed,
            byzantine=byz,
            allow_extra_byzantine=byz_count > params.f,
        )
    )
    cluster.run_for(3 * params.delta_agr)
    return properties.agreement(cluster, 0).holds


def _e6_rows(
    label: str, n: int, byz_count: int, results: list, seed_list: Sequence[int]
) -> list[dict]:
    agree_ok = sum(1 for agree in results if agree)
    splits = sum(1 for agree in results if not agree)
    return [
        {
            "condition": label,
            "n": n,
            "byzantine": byz_count,
            "runs": len(seed_list),
            "agreement_ok": agree_ok,
            "splits": splits,
        }
    ]


@experiment(
    "e6",
    title="E6: resilience boundary n > 3f",
    defaults={"seeds": range(10)},
)
def _e6_groups() -> list[ScenarioGroup]:
    """The split-world attack at n = 7: provably harmless with f' = 2
    Byzantine nodes (n > 3f'), and a working partition with f' = 3
    (n <= 3f') -- the resilience bound is tight."""
    n = 7
    groups = []
    for byz_count, camp_a, camp_b, label in (
        (2, (1, 2, 3), (4, 5), "n>3f (within bound)"),
        (3, (1, 2), (3, 4), "n<=3f' (beyond bound)"),
    ):
        params = ProtocolParams(n=n, f=2, delta=1.0, rho=DEFAULT_RHO)
        groups.append(
            ScenarioGroup(
                seed_fn=partial(_e6_seed, params, byz_count, camp_a, camp_b),
                rows=partial(_e6_rows, label, n, byz_count),
                label=label,
            )
        )
    return groups


def run_e6_resilience(
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """The split-world attack at n = 7, within and beyond the n > 3f bound."""
    return run_experiment("e6", seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E7 -- Initiator-Accept bounds
# ---------------------------------------------------------------------------
def _e7_seed(params: ProtocolParams, seed: int) -> tuple:
    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    t0 = cluster.sim.now
    assert cluster.propose(general=0, value="m")
    cluster.run_for(params.delta_agr)
    rep = properties.ia_correctness(cluster, 0, "m", t0)
    return rep.holds, rep.details["accept_spread"], rep.details["anchor_spread"]


def _e7_rows(params: ProtocolParams, results: list, seed_list: Sequence[int]) -> list[dict]:
    ia_ok = 0
    accept_spreads: list[float] = []
    anchor_spreads: list[float] = []
    for holds, accept_spread, anchor_spread in results:
        if holds:
            ia_ok += 1
        if accept_spread is not None:
            accept_spreads.append(accept_spread)
        if anchor_spread is not None:
            anchor_spreads.append(anchor_spread)
    return [
        {
            "n": params.n,
            "f": params.f,
            "runs": len(seed_list),
            "ia1_ok": ia_ok,
            "accept_spread_max_d": max(accept_spreads) / params.d
            if accept_spreads
            else None,
            "accept_spread_bound_d": 2.0,
            "anchor_spread_max_d": max(anchor_spreads) / params.d
            if anchor_spreads
            else None,
            "anchor_spread_bound_d": 1.0,
        }
    ]


@experiment(
    "e7",
    title="E7: Initiator-Accept bounds",
    defaults={"ns": (4, 7, 10), "seeds": range(10)},
)
def _e7_groups(ns: Sequence[int] = (4, 7, 10)) -> list[ScenarioGroup]:
    """IA-1A/1B/1C/1D with a correct General; IA-3A under a staggered one."""
    groups = []
    for n in ns:
        params = _params(n)
        groups.append(
            ScenarioGroup(
                seed_fn=partial(_e7_seed, params),
                rows=partial(_e7_rows, params),
                label=f"n={n}",
            )
        )
    return groups


def run_e7_initiator_accept(
    ns: Sequence[int] = (4, 7, 10),
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """IA-1A/1B/1C/1D with a correct General; IA-3A under a staggered one."""
    return run_experiment("e7", ns=ns, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E8 -- Separation / Uniqueness across recurrent agreements
# ---------------------------------------------------------------------------
def _e8_seed(params: ProtocolParams, rounds: int, seed: int) -> tuple:
    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    values = [f"v{i}" for i in range(rounds)] + ["v0"]  # repeat v0 at the end
    for value in values:
        # Respect the General's pacing: wait until it may propose again.
        guard = 0
        while not cluster.propose(general=0, value=value):
            cluster.run_for(params.delta_0)
            guard += 1
            if guard > 200:
                raise RuntimeError("General never allowed to propose")
        cluster.run_for(params.delta_agr + 10 * params.d)
    rep = properties.separation(cluster, 0)
    sep = rep.holds
    both = rep.holds and properties.agreement(cluster, 0).holds
    return sep, both


def _e8_rows(
    params: ProtocolParams, rounds: int, results: list, seed_list: Sequence[int]
) -> list[dict]:
    sep_ok = sum(1 for sep, _ in results if sep)
    all_ok = sum(1 for _, both in results if both)
    return [
        {
            "n": params.n,
            "rounds": rounds + 1,
            "runs": len(seed_list),
            "separation_ok": sep_ok,
            "separation_and_agreement_ok": all_ok,
            "distinct_bound_d": 4.0,
            "same_bounds_d": (6.0, 2 * params.delta_rmv / params.d - 3.0),
        }
    ]


@experiment(
    "e8",
    title="E8: separation across recurrent agreements",
    defaults={"n": 7, "rounds": 3, "seeds": range(5)},
)
def _e8_groups(n: int = 7, rounds: int = 3) -> list[ScenarioGroup]:
    """Recurrent initiations (distinct and repeated values): IA-4 bounds."""
    params = _params(n)
    return [
        ScenarioGroup(
            seed_fn=partial(_e8_seed, params, rounds),
            rows=partial(_e8_rows, params, rounds),
        )
    ]


def run_e8_separation(
    n: int = 7,
    rounds: int = 3,
    seeds: Sequence[int] = range(5),
    workers: Optional[int] = None,
) -> list[dict]:
    """Recurrent initiations (distinct and repeated values): IA-4 bounds."""
    return run_experiment("e8", n=n, rounds=rounds, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E9 -- Message complexity and scaling
# ---------------------------------------------------------------------------
def _e9_seed(params: ProtocolParams, seed: int) -> tuple:
    # Scaling experiment: rows read net.sent_count and node decisions only,
    # so tracing runs disabled (zero-cost path); rows are bit-identical.
    cluster = Cluster(ScenarioConfig(params=params, seed=seed, trace=False))
    t0 = cluster.sim.now
    base = cluster.net.sent_count
    assert cluster.propose(general=0, value="v")
    cluster.run_for(params.delta_agr + 10 * params.d)
    decs = list(cluster.latest_decision_per_node(0).values())
    return (
        cluster.net.sent_count - base,
        metrics.decision_latencies(decs, t0),
    )


def _e9_rows(params: ProtocolParams, results: list, seed_list: Sequence[int]) -> list[dict]:
    n = params.n
    msg_counts: list[float] = []
    latencies: list[float] = []
    for sent, lats in results:
        msg_counts.append(sent)
        latencies.extend(lats)
    msgs = summarize(msg_counts)
    lat = summarize(latencies)
    return [
        {
            "n": n,
            "f": params.f,
            "messages_mean": msgs.mean if msgs else None,
            "messages_per_n2": msgs.mean / (n * n) if msgs else None,
            "latency_mean_d": lat.mean / params.d if lat else None,
        }
    ]


@experiment(
    "e9",
    title="E9: message complexity and latency vs n",
    defaults={"ns": (4, 7, 10, 13, 16, 19, 22, 25), "seeds": range(3)},
)
def _e9_groups(ns: Sequence[int] = (4, 7, 10, 13, 16, 19, 22, 25)) -> list[ScenarioGroup]:
    """Messages per agreement vs n (expected O(n^2) per phase shape)."""
    groups = []
    for n in ns:
        params = _params(n)
        groups.append(
            ScenarioGroup(
                seed_fn=partial(_e9_seed, params),
                rows=partial(_e9_rows, params),
                label=f"n={n}",
            )
        )
    return groups


def run_e9_scaling(
    ns: Sequence[int] = (4, 7, 10, 13, 16, 19, 22, 25),
    seeds: Sequence[int] = range(3),
    workers: Optional[int] = None,
) -> list[dict]:
    """Messages per agreement vs n (expected O(n^2) per phase shape)."""
    return run_experiment("e9", ns=ns, seeds=seeds, workers=workers)


# ---------------------------------------------------------------------------
# E10 -- Classic protocol fails from arbitrary state; ss-Byz-Agree recovers
# ---------------------------------------------------------------------------
def _e10_seed(params: ProtocolParams, seed: int) -> tuple:
    eig = EigCluster(params, seed=seed)
    eig.initiate("V")
    eig.corrupt_mid_run(["A", "B"], at_round=params.f)
    decisions = eig.run_to_completion()
    values = set(decisions.values())
    if len(values) > 1:
        eig_outcome = "split"
    elif values == {"V"}:
        eig_outcome = "clean"
    else:
        eig_outcome = "wrong"

    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    injector = TransientFaultInjector(
        params, cluster.rng.split("inj"), value_pool=["A", "B", "V"], generals=[0]
    )
    cluster.run_for(5.0 * params.d)
    injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages=200)
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    ss_recovered = False
    if cluster.propose(general=0, value="V"):
        cluster.run_for(params.delta_agr + 10 * params.d)
        if properties.validity(cluster, 0, "V", since_real=since).holds:
            ss_recovered = True
    return eig_outcome, ss_recovered


def _e10_rows(params: ProtocolParams, results: list, seed_list: Sequence[int]) -> list[dict]:
    eig_split = sum(1 for outcome, _ in results if outcome == "split")
    eig_clean = sum(1 for outcome, _ in results if outcome == "clean")
    eig_agree_wrong = sum(1 for outcome, _ in results if outcome == "wrong")
    ss_recovered = sum(1 for _, recovered in results if recovered)
    return [
        {
            "n": params.n,
            "runs": len(seed_list),
            "eig_agreed_on_garbage": eig_agree_wrong,
            "eig_disagreement": eig_split,
            "eig_unaffected": eig_clean,
            "ss_byz_agree_recovered": ss_recovered,
        }
    ]


@experiment(
    "e10",
    title="E10: classic protocol fails from arbitrary state",
    defaults={"n": 7, "seeds": range(10)},
)
def _e10_groups(n: int = 7) -> list[ScenarioGroup]:
    """Same transient-corruption idea on EIG vs ss-Byz-Agree."""
    params = _params(n)
    return [
        ScenarioGroup(
            seed_fn=partial(_e10_seed, params),
            rows=partial(_e10_rows, params),
        )
    ]


def run_e10_classic_fails(
    n: int = 7,
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
) -> list[dict]:
    """Same transient-corruption idea on EIG vs ss-Byz-Agree."""
    return run_experiment("e10", n=n, seeds=seeds, workers=workers)


__all__ = [
    "run_e1_validity",
    "run_e2_byzantine_general",
    "run_e3_stabilization",
    "run_e4_early_stopping",
    "run_e5_msg_driven",
    "run_e6_resilience",
    "run_e7_initiator_accept",
    "run_e8_separation",
    "run_e9_scaling",
    "run_e10_classic_fails",
]
