"""Experiment drivers E1..E10 (see DESIGN.md section 4).

Each driver runs a family of scenarios and returns a list of row dicts --
the "table" the paper's corresponding theorem would fill.  The benchmark
suite (``benchmarks/bench_e*.py``) times and prints them; EXPERIMENTS.md
records paper-bound vs. measured.

Every driver takes ``seeds`` so callers can trade confidence for runtime.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.eig import EigCluster
from repro.baselines.tps87 import Tps87Cluster
from repro.core.params import BOTTOM, ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    SelectiveGeneralStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.faults.transient import TransientFaultInjector
from repro.harness import metrics, properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.stats import summarize
from repro.net.delivery import UniformDelay

DEFAULT_RHO = 1e-4


def _params(n: int, f: Optional[int] = None, delta: float = 1.0) -> ProtocolParams:
    return ProtocolParams(n=n, f=f if f is not None else max_faults(n), delta=delta, rho=DEFAULT_RHO)


# ---------------------------------------------------------------------------
# E1 -- Validity + Timeliness-2 with a correct General
# ---------------------------------------------------------------------------
def run_e1_validity(
    ns: Sequence[int] = (4, 7, 10, 13), seeds: Sequence[int] = range(10)
) -> list[dict]:
    """Correct General: everyone decides its value within the paper bounds."""
    rows = []
    for n in ns:
        params = _params(n)
        ok_validity = ok_timeliness = 0
        latencies: list[float] = []
        spreads: list[float] = []
        for seed in seeds:
            cluster = Cluster(ScenarioConfig(params=params, seed=seed))
            t0 = cluster.sim.now
            assert cluster.propose(general=0, value="m1")
            cluster.run_for(params.delta_agr + 10 * params.d)
            if properties.validity(cluster, 0, "m1").holds:
                ok_validity += 1
            if properties.timeliness_validity(cluster, 0, t0).holds:
                ok_timeliness += 1
            decs = list(cluster.latest_decision_per_node(0).values())
            latencies.extend(metrics.decision_latencies(decs, t0))
            spread = metrics.decision_spread_real(decs)
            if spread is not None:
                spreads.append(spread)
        lat = summarize(latencies)
        rows.append(
            {
                "n": n,
                "f": params.f,
                "runs": len(list(seeds)),
                "validity_ok": ok_validity,
                "timeliness_ok": ok_timeliness,
                "latency_mean_d": lat.mean / params.d if lat else None,
                "latency_max_d": lat.maximum / params.d if lat else None,
                "latency_bound_d": 4.0,  # paper: rt(tau_q) <= t0 + 4d
                "spread_max_d": max(spreads) / params.d if spreads else None,
                "spread_bound_d": 2.0,  # paper: 2d under validity
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E2 -- Agreement under a Byzantine General
# ---------------------------------------------------------------------------
def run_e2_byzantine_general(
    n: int = 7, seeds: Sequence[int] = range(10)
) -> list[dict]:
    """Adversarial General strategies: all-or-nothing, single value, always."""
    params = _params(n)
    others = tuple(range(1, n))
    half = len(others) // 2

    def attacks(seed_rng_unused):
        return {
            "equivocate": {
                0: EquivocatingGeneralStrategy(
                    "A", "B", others[:half], others[half:]
                )
            },
            "equivocate+twofaced": {
                0: EquivocatingGeneralStrategy("A", "B", others[:half], others[half:]),
                n - 1: TwoFacedParticipantStrategy(others[:half]),
            },
            "staggered_2d": {0: StaggeredGeneralStrategy("S", spread_local=2 * params.d)},
            "staggered_8d": {0: StaggeredGeneralStrategy("S", spread_local=8 * params.d)},
            "staggered_3phi": {
                0: StaggeredGeneralStrategy("S", spread_local=3 * params.phi),
                n - 1: MirrorParticipantStrategy(),
            },
            "selective_quorum": {0: SelectiveGeneralStrategy("X", others[: n - 2])},
            "selective_subquorum": {0: SelectiveGeneralStrategy("X", others[:2])},
        }

    rows = []
    for name, byz in attacks(None).items():
        agree_ok = 0
        split = 0
        decided_runs = 0
        for seed in seeds:
            cluster = Cluster(ScenarioConfig(params=params, seed=seed, byzantine=byz))
            cluster.run_for(3 * params.delta_agr)
            rep = properties.agreement(cluster, 0)
            if rep.holds:
                agree_ok += 1
            else:
                split += 1
            latest = cluster.latest_decision_per_node(0)
            if any(dec.decided for dec in latest.values()):
                decided_runs += 1
        rows.append(
            {
                "attack": name,
                "runs": len(list(seeds)),
                "agreement_ok": agree_ok,
                "splits": split,
                "runs_with_decision": decided_runs,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 -- Self-stabilization from arbitrary state
# ---------------------------------------------------------------------------
def run_e3_stabilization(
    n: int = 7,
    seeds: Sequence[int] = range(10),
    garbage_messages: int = 300,
) -> list[dict]:
    """Havoc everything, wait Delta_stb, then demand a clean agreement."""
    params = _params(n)
    rows = []
    recovered = 0
    post_validity = 0
    post_timeliness = 0
    for seed in seeds:
        cluster = Cluster(ScenarioConfig(params=params, seed=seed))
        injector = TransientFaultInjector(
            params,
            cluster.rng.split("injector"),
            value_pool=["A", "B", "C"],
            generals=[0, 1],
        )
        cluster.run_for(5.0 * params.d)
        injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages)
        cluster.mark_coherent()
        cluster.run_for(params.delta_stb)
        since = cluster.sim.now
        t0 = cluster.sim.now
        proposed = cluster.propose(general=0, value="recovered")
        cluster.run_for(params.delta_agr + 10 * params.d)
        v_ok = properties.validity(cluster, 0, "recovered", since_real=since).holds
        t_ok = properties.timeliness_validity(cluster, 0, t0, since_real=since).holds
        if proposed:
            recovered += 1
        if v_ok:
            post_validity += 1
        if t_ok:
            post_timeliness += 1
    rows.append(
        {
            "n": n,
            "f": params.f,
            "runs": len(list(seeds)),
            "garbage_messages": garbage_messages,
            "proposal_unblocked": recovered,
            "post_stb_validity": post_validity,
            "post_stb_timeliness": post_timeliness,
            "stabilization_bound_d": params.delta_stb / params.d,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E4 -- Early stopping: decision time scales with actual faults f'
# ---------------------------------------------------------------------------
def run_e4_early_stopping(
    n: int = 13, seeds: Sequence[int] = range(10)
) -> list[dict]:
    """Crash-faulty subsets of size f' = 0..f; latency tracks f', not f."""
    params = _params(n)
    rows = []
    for f_actual in range(params.f + 1):
        latencies: list[float] = []
        validity_ok = 0
        for seed in seeds:
            byz = {n - 1 - i: CrashStrategy() for i in range(f_actual)}
            cluster = Cluster(ScenarioConfig(params=params, seed=seed, byzantine=byz))
            t0 = cluster.sim.now
            assert cluster.propose(general=0, value="v")
            cluster.run_for(params.delta_agr + 10 * params.d)
            if properties.validity(cluster, 0, "v").holds:
                validity_ok += 1
            decs = list(cluster.latest_decision_per_node(0).values())
            latencies.extend(metrics.decision_latencies(decs, t0))
        lat = summarize(latencies)
        rows.append(
            {
                "n": n,
                "f": params.f,
                "f_actual": f_actual,
                "runs": len(list(seeds)),
                "validity_ok": validity_ok,
                "latency_mean_d": lat.mean / params.d if lat else None,
                "latency_max_d": lat.maximum / params.d if lat else None,
                "worstcase_bound_d": params.delta_agr / params.d,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E5 -- Message-driven vs time-driven rounds
# ---------------------------------------------------------------------------
def run_e5_msg_driven(
    n: int = 7,
    delay_fracs: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    seeds: Sequence[int] = range(5),
) -> list[dict]:
    """Latency of ss-Byz-Agree vs TPS'87 as actual delay shrinks below delta.

    The model bound ``delta`` (hence ``d``, ``Phi``) is fixed; the *actual*
    delays sweep downward.  The paper's claim: ss-Byz-Agree finishes at
    actual-network speed, the lock-step baseline at ``Phi`` granularity.
    """
    params = _params(n)
    rows = []
    for frac in delay_fracs:
        actual_max = frac * params.delta
        policy = UniformDelay(0.1 * actual_max, actual_max)
        ss_lat: list[float] = []
        tps_lat: list[float] = []
        for seed in seeds:
            cluster = Cluster(ScenarioConfig(params=params, seed=seed, policy=policy))
            t0 = cluster.sim.now
            assert cluster.propose(general=0, value="v")
            cluster.run_for(params.delta_agr + 10 * params.d)
            decs = list(cluster.latest_decision_per_node(0).values())
            ss_lat.extend(metrics.decision_latencies(decs, t0))

            tps = Tps87Cluster(params, seed=seed, policy=UniformDelay(0.1 * actual_max, actual_max))
            tps.initiate("v")
            tps_decs = tps.run_to_completion()
            tps_lat.extend(d.returned_real for d in tps_decs if d.decided)
        ss = summarize(ss_lat)
        tp = summarize(tps_lat)
        rows.append(
            {
                "actual_delay_frac": frac,
                "ss_latency_mean": ss.mean if ss else None,
                "tps_latency_mean": tp.mean if tp else None,
                "speedup": (tp.mean / ss.mean) if ss and tp and ss.mean > 0 else None,
                "phi": params.phi,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E6 -- Resilience boundary: n > 3f
# ---------------------------------------------------------------------------
def run_e6_resilience(seeds: Sequence[int] = range(10)) -> list[dict]:
    """The split-world attack at n = 7: provably harmless with f' = 2
    Byzantine nodes (n > 3f'), and a working partition with f' = 3
    (n <= 3f') -- the resilience bound is tight."""
    from repro.faults.byzantine import SplitWorldStrategy

    rows = []
    n = 7
    for byz_count, camp_a, camp_b, label in (
        (2, (1, 2, 3), (4, 5), "n>3f (within bound)"),
        (3, (1, 2), (3, 4), "n<=3f' (beyond bound)"),
    ):
        params = ProtocolParams(n=n, f=2, delta=1.0, rho=DEFAULT_RHO)
        agree_ok = 0
        splits = 0
        for seed in seeds:
            general = 0
            helpers = [n - 1 - i for i in range(byz_count - 1)]
            byz: dict = {
                general: EquivocatingGeneralStrategy("A", "B", camp_a, camp_b)
            }
            for helper in helpers:
                byz[helper] = SplitWorldStrategy(general, "A", "B", camp_a, camp_b)
            cluster = Cluster(
                ScenarioConfig(
                    params=params,
                    seed=seed,
                    byzantine=byz,
                    allow_extra_byzantine=byz_count > params.f,
                )
            )
            cluster.run_for(3 * params.delta_agr)
            if properties.agreement(cluster, 0).holds:
                agree_ok += 1
            else:
                splits += 1
        rows.append(
            {
                "condition": label,
                "n": n,
                "byzantine": byz_count,
                "runs": len(list(seeds)),
                "agreement_ok": agree_ok,
                "splits": splits,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E7 -- Initiator-Accept bounds
# ---------------------------------------------------------------------------
def run_e7_initiator_accept(
    ns: Sequence[int] = (4, 7, 10), seeds: Sequence[int] = range(10)
) -> list[dict]:
    """IA-1A/1B/1C/1D with a correct General; IA-3A under a staggered one."""
    rows = []
    for n in ns:
        params = _params(n)
        ia_ok = 0
        accept_spreads: list[float] = []
        anchor_spreads: list[float] = []
        for seed in seeds:
            cluster = Cluster(ScenarioConfig(params=params, seed=seed))
            t0 = cluster.sim.now
            assert cluster.propose(general=0, value="m")
            cluster.run_for(params.delta_agr)
            rep = properties.ia_correctness(cluster, 0, "m", t0)
            if rep.holds:
                ia_ok += 1
            if rep.details["accept_spread"] is not None:
                accept_spreads.append(rep.details["accept_spread"])
            if rep.details["anchor_spread"] is not None:
                anchor_spreads.append(rep.details["anchor_spread"])
        rows.append(
            {
                "n": n,
                "f": params.f,
                "runs": len(list(seeds)),
                "ia1_ok": ia_ok,
                "accept_spread_max_d": max(accept_spreads) / params.d
                if accept_spreads
                else None,
                "accept_spread_bound_d": 2.0,
                "anchor_spread_max_d": max(anchor_spreads) / params.d
                if anchor_spreads
                else None,
                "anchor_spread_bound_d": 1.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E8 -- Separation / Uniqueness across recurrent agreements
# ---------------------------------------------------------------------------
def run_e8_separation(
    n: int = 7, rounds: int = 3, seeds: Sequence[int] = range(5)
) -> list[dict]:
    """Recurrent initiations (distinct and repeated values): IA-4 bounds."""
    params = _params(n)
    sep_ok = 0
    all_ok = 0
    for seed in seeds:
        cluster = Cluster(ScenarioConfig(params=params, seed=seed))
        values = [f"v{i}" for i in range(rounds)] + ["v0"]  # repeat v0 at the end
        for value in values:
            # Respect the General's pacing: wait until it may propose again.
            guard = 0
            while not cluster.propose(general=0, value=value):
                cluster.run_for(params.delta_0)
                guard += 1
                if guard > 200:
                    raise RuntimeError("General never allowed to propose")
            cluster.run_for(params.delta_agr + 10 * params.d)
        rep = properties.separation(cluster, 0)
        if rep.holds:
            sep_ok += 1
        if rep.holds and properties.agreement(cluster, 0).holds:
            all_ok += 1
    return [
        {
            "n": n,
            "rounds": rounds + 1,
            "runs": len(list(seeds)),
            "separation_ok": sep_ok,
            "separation_and_agreement_ok": all_ok,
            "distinct_bound_d": 4.0,
            "same_bounds_d": (6.0, 2 * params.delta_rmv / params.d - 3.0),
        }
    ]


# ---------------------------------------------------------------------------
# E9 -- Message complexity and scaling
# ---------------------------------------------------------------------------
def run_e9_scaling(
    ns: Sequence[int] = (4, 7, 10, 13, 16, 19, 22, 25),
    seeds: Sequence[int] = range(3),
) -> list[dict]:
    """Messages per agreement vs n (expected O(n^2) per phase shape)."""
    rows = []
    for n in ns:
        params = _params(n)
        msg_counts: list[float] = []
        latencies: list[float] = []
        for seed in seeds:
            cluster = Cluster(ScenarioConfig(params=params, seed=seed))
            t0 = cluster.sim.now
            base = cluster.net.sent_count
            assert cluster.propose(general=0, value="v")
            cluster.run_for(params.delta_agr + 10 * params.d)
            msg_counts.append(cluster.net.sent_count - base)
            decs = list(cluster.latest_decision_per_node(0).values())
            latencies.extend(metrics.decision_latencies(decs, t0))
        msgs = summarize(msg_counts)
        lat = summarize(latencies)
        rows.append(
            {
                "n": n,
                "f": params.f,
                "messages_mean": msgs.mean if msgs else None,
                "messages_per_n2": msgs.mean / (n * n) if msgs else None,
                "latency_mean_d": lat.mean / params.d if lat else None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E10 -- Classic protocol fails from arbitrary state; ss-Byz-Agree recovers
# ---------------------------------------------------------------------------
def run_e10_classic_fails(
    n: int = 7, seeds: Sequence[int] = range(10)
) -> list[dict]:
    """Same transient-corruption idea on EIG vs ss-Byz-Agree."""
    params = _params(n)
    eig_agree_wrong = eig_split = eig_clean = 0
    ss_recovered = 0
    for seed in seeds:
        eig = EigCluster(params, seed=seed)
        eig.initiate("V")
        eig.corrupt_mid_run(["A", "B"], at_round=params.f)
        decisions = eig.run_to_completion()
        values = set(decisions.values())
        if len(values) > 1:
            eig_split += 1
        elif values == {"V"}:
            eig_clean += 1
        else:
            eig_agree_wrong += 1

        cluster = Cluster(ScenarioConfig(params=params, seed=seed))
        injector = TransientFaultInjector(
            params, cluster.rng.split("inj"), value_pool=["A", "B", "V"], generals=[0]
        )
        cluster.run_for(5.0 * params.d)
        injector.havoc(cluster.correct_nodes(), cluster.net, garbage_messages=200)
        cluster.run_for(params.delta_stb)
        since = cluster.sim.now
        if cluster.propose(general=0, value="V"):
            cluster.run_for(params.delta_agr + 10 * params.d)
            if properties.validity(cluster, 0, "V", since_real=since).holds:
                ss_recovered += 1
    return [
        {
            "n": n,
            "runs": len(list(seeds)),
            "eig_agreed_on_garbage": eig_agree_wrong,
            "eig_disagreement": eig_split,
            "eig_unaffected": eig_clean,
            "ss_byz_agree_recovered": ss_recovered,
        }
    ]


__all__ = [
    "run_e1_validity",
    "run_e2_byzantine_general",
    "run_e3_stabilization",
    "run_e4_early_stopping",
    "run_e5_msg_driven",
    "run_e6_resilience",
    "run_e7_initiator_accept",
    "run_e8_separation",
    "run_e9_scaling",
    "run_e10_classic_fails",
]
