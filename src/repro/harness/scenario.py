"""Scenario construction: from a declarative config to a running cluster.

A scenario fixes everything a run depends on -- n, f, timing model, delivery
policy, clock drift/offsets, the Byzantine cast, and the master seed -- so
that every run is exactly reproducible and sweeps vary one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import Value
from repro.core.params import ProtocolParams
from repro.faults.byzantine import ByzantineNode, Strategy
from repro.net.delivery import DeliveryPolicy, UniformDelay
from repro.net.network import Network
from repro.node.base import Node
from repro.runtime.sim_host import NodeContext
from repro.sim.clock import ClockConfig
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

StrategyOrFactory = Union[Strategy, Callable[[RandomSource], Strategy]]


@dataclass
class ScenarioConfig:
    """Everything that defines a run.

    Attributes
    ----------
    params:
        The timing-constant algebra (n, f, delta, pi, rho).
    seed:
        Master seed; all randomness in the run derives from it.
    policy:
        Delivery policy while the network is correct.  Defaults to uniform
        delays in ``[0.1 * delta, delta]``.
    byzantine:
        Map of node id to a strategy (or a factory taking a
        :class:`RandomSource`).  All other ids get correct protocol nodes.
    random_clock_offsets:
        Give each node an arbitrary initial clock reading (the model allows
        readings to be "arbitrarily apart"); disable for tests that want
        aligned clocks.
    drifted_rates:
        Draw per-node rates uniformly from ``[1 - rho, 1 + rho]``; disable
        for rate-1 clocks.
    trace:
        Record the full event trace (needed by the property checkers).
    allow_extra_byzantine:
        Permit more Byzantine nodes than ``f`` -- used only by the
        resilience-boundary experiment (E6), which deliberately violates
        ``n > 3f`` to show where the guarantees stop.
    cleanup_interval_d / resend_gap_d:
        Ablation knobs (in units of ``d``): period of the background cleanup
        tick and the identical-message re-send throttle.  Defaults match the
        paper's assumptions; the ablation benches sweep them.
    shards / shard_transport:
        Partition the run's nodes into this many shard groups, each an
        independent event loop (see :mod:`repro.sim.shard`), exchanging
        cross-shard deliveries through a conservative-synchronization
        boundary.  ``None`` (default) runs the serial kernel; results are
        bit-identical either way.  ``shard_transport`` selects ``"process"``
        (one OS process per shard) or ``"inline"`` (in-process, for tests
        and single-core machines).
    """

    params: ProtocolParams
    seed: int = 0
    policy: Optional[DeliveryPolicy] = None
    byzantine: dict[int, StrategyOrFactory] = field(default_factory=dict)
    random_clock_offsets: bool = True
    drifted_rates: bool = True
    trace: bool = True
    allow_extra_byzantine: bool = False
    cleanup_interval_d: float = 1.0
    resend_gap_d: float = 1.0
    shards: Optional[int] = None
    shard_transport: str = "process"


# Process-wide sharding default, applied to configs that leave ``shards``
# unset.  Lets the experiment registry re-run unmodified seed functions
# (which build their own Clusters) under the sharded kernel.
_DEFAULT_SHARDS: list = [None, None]


def set_default_shards(
    shards: Optional[int], transport: Optional[str] = None
) -> tuple[Optional[int], Optional[str]]:
    """Set the process-wide sharding default for subsequently built clusters.

    Returns the previous ``(shards, transport)`` pair so callers can restore
    it (``try/finally``); explicit ``ScenarioConfig.shards`` values always
    win over the default.
    """
    previous = (_DEFAULT_SHARDS[0], _DEFAULT_SHARDS[1])
    _DEFAULT_SHARDS[0] = shards
    _DEFAULT_SHARDS[1] = transport
    return previous


class Cluster:
    """A built scenario: simulator + network + nodes, ready to run.

    When the config (or the :func:`set_default_shards` process default)
    requests sharding, constructing a ``Cluster`` transparently returns a
    :class:`repro.sim.shard.ShardedCluster` driving facade instead -- same
    results, bit for bit, with the event loops living in shard workers.
    """

    sharded = False

    def __new__(cls, config: "ScenarioConfig | None" = None, **kwargs: object):
        # Dispatch only for plain, hook-free construction: subclasses and the
        # shard workers themselves (which pass _sim/_tracer/_net_cls) always
        # get a real serial-kernel cluster.
        if cls is Cluster and config is not None and not kwargs:
            shards = config.shards
            transport: Optional[str] = None
            if shards is None:
                shards, transport = _DEFAULT_SHARDS
            if shards is not None:
                from repro.sim.shard import ShardedCluster

                return ShardedCluster(config, shards=shards, transport=transport)
        return super().__new__(cls)

    def __init__(
        self,
        config: ScenarioConfig,
        *,
        _sim: Optional[Simulator] = None,
        _tracer: Optional[Tracer] = None,
        _net_cls: type = Network,
    ) -> None:
        self.config = config
        self.params = config.params
        self.rng = RandomSource(config.seed)
        self.sim = _sim if _sim is not None else Simulator()
        self.tracer = _tracer if _tracer is not None else Tracer(enabled=config.trace)
        policy = config.policy or UniformDelay(
            0.1 * self.params.delta, self.params.delta
        )
        self.net = _net_cls(self.sim, policy, self.rng.split("net"), self.tracer)

        self.nodes: dict[int, Node] = {}
        self.correct_ids: list[int] = []
        self.byzantine_ids: list[int] = []
        self._build_nodes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _clock_config(self, node_id: int) -> ClockConfig:
        clock_rng = self.rng.split(f"clock/{node_id}")
        rho = self.params.rho
        rate = (
            clock_rng.uniform(1.0 - rho, 1.0 + rho)
            if self.config.drifted_rates and rho > 0
            else 1.0
        )
        offset = (
            clock_rng.uniform(0.0, 1000.0 * self.params.d)
            if self.config.random_clock_offsets
            else 0.0
        )
        return ClockConfig(rate=rate, offset=offset)

    def _build_nodes(self) -> None:
        if (
            len(self.config.byzantine) > self.params.f
            and not self.config.allow_extra_byzantine
        ):
            raise ValueError(
                f"{len(self.config.byzantine)} Byzantine nodes exceeds f={self.params.f}"
            )
        for node_id in range(self.params.n):
            # The owner scope attributes construction-time events (background
            # cleanup ticks, strategy timers) and trace records to the node;
            # a no-op on the serial kernel.
            with self.sim.owner_scope(node_id):
                ctx = NodeContext(
                    sim=self.sim,
                    net=self.net,
                    tracer=self.tracer,
                    clock_config=self._clock_config(node_id),
                    rand=self.rng.split(f"host/{node_id}"),
                )
                spec = self.config.byzantine.get(node_id)
                if spec is None:
                    self.nodes[node_id] = ProtocolNode(
                        node_id,
                        ctx,
                        self.params,
                        cleanup_interval_d=self.config.cleanup_interval_d,
                        resend_gap_d=self.config.resend_gap_d,
                    )
                    self.correct_ids.append(node_id)
                else:
                    if hasattr(spec, "install"):
                        strategy = spec
                    else:
                        strategy = spec(self.rng.split(f"byz/{node_id}"))  # type: ignore[operator]
                    self.nodes[node_id] = ByzantineNode(
                        node_id, ctx, self.params, strategy  # type: ignore[arg-type]
                    )
                    self.byzantine_ids.append(node_id)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def correct_nodes(self) -> list[ProtocolNode]:
        """All correct protocol nodes, in id order."""
        return [self.nodes[i] for i in self.correct_ids]  # type: ignore[list-item]

    def node(self, node_id: int) -> Node:
        """Any node by id."""
        return self.nodes[node_id]

    def protocol_node(self, node_id: int) -> ProtocolNode:
        """A correct node by id (raises if the id is Byzantine)."""
        node = self.nodes[node_id]
        if not isinstance(node, ProtocolNode):
            raise TypeError(f"node {node_id} is not a correct protocol node")
        return node

    def node_scope(self, node_id: Optional[int], pos: int):
        """Per-node scope for multi-node fault actions (see
        :meth:`repro.sim.engine.Simulator.node_scope`)."""
        return self.sim.node_scope(node_id, pos)

    # ------------------------------------------------------------------
    # Driving the run
    # ------------------------------------------------------------------
    def propose(self, general: int, value: Value) -> bool:
        """Have a *correct* General initiate agreement on ``value``."""
        return self.protocol_node(general).propose(value)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance the simulation by ``duration`` real-time units."""
        self.sim.run_until(self.sim.now + duration, max_events=max_events)

    def set_policy(self, policy: DeliveryPolicy) -> None:
        """Swap the network's delivery policy (coherence transitions)."""
        self.net.set_policy(policy)
        self.tracer.record(self.sim.now, None, "policy_change")

    def mark_coherent(self) -> None:
        """Record the moment the system (re)entered its assumption bounds."""
        self.tracer.record(self.sim.now, None, "coherent")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def decisions(self, general: int, since_real: float = 0.0) -> list[Decision]:
        """Outcomes recorded by correct nodes for one General, post-`since`."""
        out: list[Decision] = []
        for node in self.correct_nodes():
            out.extend(
                dec
                for dec in node.decisions_for(general)
                if dec.returned_real >= since_real
            )
        return out

    def latest_decision_per_node(
        self, general: int, since_real: float = 0.0
    ) -> dict[int, Decision]:
        """The most recent outcome per correct node for one General."""
        latest: dict[int, Decision] = {}
        for dec in self.decisions(general, since_real):
            held = latest.get(dec.node)
            if held is None or dec.returned_real > held.returned_real:
                latest[dec.node] = dec
        return latest


def build(config: ScenarioConfig) -> Cluster:
    """Construct a cluster from a config (alias for the constructor)."""
    return Cluster(config)


__all__ = [
    "Cluster",
    "ScenarioConfig",
    "StrategyOrFactory",
    "build",
    "set_default_shards",
]
