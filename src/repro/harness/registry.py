"""Experiment registry: experiments as data, one engine for all of them.

Every experiment in :mod:`repro.harness.experiments` used to be its own
~60-line driver loop; the only real differences between them were *which
sweep points* they visit and *how a sweep point's per-seed results collapse
into a result row*.  This module factors that shape out:

* a :class:`ScenarioGroup` is one sweep point -- a picklable per-seed
  callable (shipped to pool workers) plus a parent-side row builder;
* an :class:`ExperimentSpec` names an experiment and knows how to expand its
  sweep kwargs into groups;
* :func:`run_experiment` is the single engine: it resolves the spec, opens
  one warm :meth:`~repro.harness.parallel.SeedPool.shared` pool for the
  whole sweep, fans each group's seeds out, aggregates rows in group order,
  and (optionally) records wall-clock into the ``BENCH_perf.json`` registry.

Because the engine visits groups in order and :class:`~repro.harness.
parallel.SeedPool` returns results in seed order, rows are bit-identical to
the pre-registry hand-written loops at any worker count.

Registering an experiment::

    @experiment("e1", title="Validity with a correct General",
                defaults={"ns": (4, 7, 10, 13), "seeds": range(10)})
    def _e1_groups(ns=(4, 7, 10, 13)) -> list[ScenarioGroup]:
        ...

Running one::

    rows = run_experiment("e1", ns=(4, 7), seeds=range(3), workers=4)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.harness.parallel import SeedPool

# A picklable per-seed callable: module-level function or functools.partial
# over one (the seed is always the trailing positional argument).
SeedFn = Callable[[int], Any]
# Parent-side aggregation: (per-seed results in seed order, seed list) ->
# zero or more result rows.  Never pickled, so closures/partials are fine.
RowsFn = Callable[[list, Sequence[int]], list[dict]]


@dataclass(frozen=True)
class ScenarioGroup:
    """One sweep point of an experiment.

    ``seed_fn`` runs in pool workers and must be picklable; ``rows`` runs in
    the parent over the ordered per-seed results and returns the group's
    result rows (most groups produce exactly one).
    """

    seed_fn: SeedFn
    rows: RowsFn
    label: str = ""


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: sweep expansion plus run defaults.

    ``groups`` takes the experiment's sweep kwargs (everything the public
    driver accepts except ``seeds``/``workers``) and returns the ordered
    :class:`ScenarioGroup` list.  ``defaults`` holds the public driver's
    default kwargs -- including ``"seeds"`` -- so the CLI can run any
    registered experiment without knowing its signature.
    """

    name: str
    title: str
    groups: Callable[..., list[ScenarioGroup]]
    defaults: dict[str, Any] = field(default_factory=dict)
    description: str = ""


_REGISTRY: dict[str, ExperimentSpec] = {}


class _ShardedSeedFn:
    """Picklable wrapper running a seed function under a sharding default.

    Seed functions build their own :class:`~repro.harness.scenario.Cluster`
    objects, so sharding is threaded through the process-wide default
    (:func:`~repro.harness.scenario.set_default_shards`) rather than through
    every driver signature; the wrapper scopes the default to the one call
    so pool workers stay reusable for serial work.
    """

    def __init__(self, fn: SeedFn, shards: int, transport: Optional[str]) -> None:
        self.fn = fn
        self.shards = shards
        self.transport = transport

    def __call__(self, seed: int) -> Any:
        from repro.harness.scenario import set_default_shards

        previous = set_default_shards(self.shards, self.transport)
        try:
            return self.fn(seed)
        finally:
            set_default_shards(*previous)


def _ensure_builtin_experiments() -> None:
    """Populate the registry with the built-in E1..E10 specs.

    Registration happens as a side effect of importing
    :mod:`repro.harness.experiments`; importing it lazily here means
    ``run_experiment("e1")`` works without the caller knowing about that
    module (and without an import cycle: experiments imports this module
    at load time, but this hook only fires at call time).
    """
    import repro.harness.experiments  # noqa: F401


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def experiment(
    name: str,
    title: str,
    defaults: Optional[dict[str, Any]] = None,
    description: str = "",
) -> Callable[[Callable[..., list[ScenarioGroup]]], Callable[..., list[ScenarioGroup]]]:
    """Decorator form of :func:`register` for a groups-builder function."""

    def wrap(groups: Callable[..., list[ScenarioGroup]]):
        register(
            ExperimentSpec(
                name=name,
                title=title,
                groups=groups,
                defaults=dict(defaults or {}),
                description=description or (groups.__doc__ or "").strip(),
            )
        )
        return groups

    return wrap


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    _ensure_builtin_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown experiment {name!r} (registered: {known})") from None


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments, sorted by name."""
    _ensure_builtin_experiments()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_experiment(
    name_or_spec: "str | ExperimentSpec",
    *,
    seeds: Optional[Iterable[int]] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    shard_transport: Optional[str] = None,
    bench_name: Optional[str] = None,
    **sweep_kwargs: Any,
) -> list[dict]:
    """Run one experiment through the shared engine; returns its rows.

    ``seeds`` defaults to the spec's registered default seed list; any other
    sweep kwarg omitted here also falls back to the spec default, so
    ``run_experiment("e9")`` reproduces the public driver's default table.
    ``shards`` runs every per-seed scenario on the sharded kernel
    (:mod:`repro.sim.shard`) -- bit-identical rows, multiple cores per run.
    With ``bench_name`` the engine records wall seconds, row count, and the
    effective worker/shard counts into the ``BENCH_perf.json`` registry
    (:mod:`repro.harness.benchrecord`).
    """
    spec = (
        name_or_spec
        if isinstance(name_or_spec, ExperimentSpec)
        else get_experiment(name_or_spec)
    )
    merged = dict(spec.defaults)
    merged.update(sweep_kwargs)
    default_seeds = merged.pop("seeds", range(10))
    seed_list = list(seeds if seeds is not None else default_seeds)

    start = time.perf_counter()
    rows: list[dict] = []
    with SeedPool.shared(workers) as pool:
        for group in spec.groups(**merged):
            seed_fn = group.seed_fn
            if shards is not None:
                seed_fn = _ShardedSeedFn(seed_fn, shards, shard_transport)
            results = pool.map(seed_fn, seed_list)
            rows.extend(group.rows(results, seed_list))
    if bench_name is not None:
        from repro.harness.benchrecord import record_bench_result

        record_bench_result(
            bench_name,
            kind="experiment",
            title=spec.title,
            wall_s=time.perf_counter() - start,
            rows=len(rows),
            workers=pool.workers,
            shards=shards,
        )
    return rows


__all__ = [
    "ExperimentSpec",
    "ScenarioGroup",
    "experiment",
    "get_experiment",
    "list_experiments",
    "register",
    "run_experiment",
]
