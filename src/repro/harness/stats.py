"""Aggregation helpers for experiment sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.maximum,
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of a sample; None if empty."""
    data = sorted(values)
    if not data:
        return None
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        minimum=data[0],
        p50=percentile(data, 0.5),
        p95=percentile(data, 0.95),
        maximum=data[-1],
    )


def fraction_true(outcomes: Iterable[bool]) -> float:
    """Share of True values (1.0 for an empty iterable is wrong -> raise)."""
    data = list(outcomes)
    if not data:
        raise ValueError("empty sample")
    return sum(1 for item in data if item) / len(data)


__all__ = ["Summary", "fraction_true", "percentile", "summarize"]
