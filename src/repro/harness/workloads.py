"""Workload drivers: multi-agreement traffic patterns over a cluster.

The single-agreement experiments (E1..E10) isolate one claim each; the
workloads here exercise the protocol the way a deployment would -- long
streams of agreements, several Generals interleaving, nodes crashing and
recovering mid-stream -- with the property checkers run continuously.
Used by the soak tests in ``tests/test_workloads.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.messages import Value
from repro.harness import properties
from repro.harness.scenario import Cluster


@dataclass
class AgreementRecord:
    """One completed agreement in a workload run."""

    general: int
    value: Value
    initiated_real: float
    since_real: float
    validity_ok: bool
    agreement_ok: bool


def _wait_until_may_propose(cluster: Cluster, general: int, value: Value) -> None:
    node = cluster.protocol_node(general)
    guard = 0
    while not node.may_propose(value):
        cluster.run_for(cluster.params.d)
        guard += 1
        if guard > 10_000:
            raise RuntimeError(f"general {general} never allowed to propose")


def run_sequential_stream(
    cluster: Cluster,
    general: int,
    values: Sequence[Value],
    settle_d: float = 10.0,
) -> list[AgreementRecord]:
    """One General agrees on a stream of values, respecting its pacing."""
    records = []
    for value in values:
        _wait_until_may_propose(cluster, general, value)
        since = cluster.sim.now
        t0 = cluster.sim.now
        assert cluster.propose(general=general, value=value)
        cluster.run_for(cluster.params.delta_agr + settle_d * cluster.params.d)
        records.append(
            AgreementRecord(
                general=general,
                value=value,
                initiated_real=t0,
                since_real=since,
                validity_ok=properties.validity(
                    cluster, general, value, since_real=since
                ).holds,
                agreement_ok=properties.agreement(
                    cluster, general, since_real=since
                ).holds,
            )
        )
    return records


def run_round_robin_generals(
    cluster: Cluster,
    generals: Sequence[int],
    rounds: int,
    settle_d: float = 10.0,
) -> list[AgreementRecord]:
    """Different Generals take turns initiating; instances are independent."""
    records = []
    for round_idx in range(rounds):
        for general in generals:
            value = f"g{general}-r{round_idx}"
            _wait_until_may_propose(cluster, general, value)
            since = cluster.sim.now
            t0 = cluster.sim.now
            assert cluster.propose(general=general, value=value)
            cluster.run_for(cluster.params.delta_agr + settle_d * cluster.params.d)
            records.append(
                AgreementRecord(
                    general=general,
                    value=value,
                    initiated_real=t0,
                    since_real=since,
                    validity_ok=properties.validity(
                        cluster, general, value, since_real=since
                    ).holds,
                    agreement_ok=properties.agreement(
                        cluster, general, since_real=since
                    ).holds,
                )
            )
    return records


def run_interleaved_generals(
    cluster: Cluster,
    generals: Sequence[int],
    values_per_general: int,
    settle_d: float = 10.0,
) -> list[AgreementRecord]:
    """All Generals initiate *concurrently* each round (distinct instances)."""
    records = []
    for round_idx in range(values_per_general):
        launched: list[tuple[int, Value, float, float]] = []
        for general in generals:
            value = f"g{general}-v{round_idx}"
            _wait_until_may_propose(cluster, general, value)
            since = cluster.sim.now
            t0 = cluster.sim.now
            assert cluster.propose(general=general, value=value)
            launched.append((general, value, t0, since))
        cluster.run_for(cluster.params.delta_agr + settle_d * cluster.params.d)
        for general, value, t0, since in launched:
            records.append(
                AgreementRecord(
                    general=general,
                    value=value,
                    initiated_real=t0,
                    since_real=since,
                    validity_ok=properties.validity(
                        cluster, general, value, since_real=since
                    ).holds,
                    agreement_ok=properties.agreement(
                        cluster, general, since_real=since
                    ).holds,
                )
            )
    return records


@dataclass
class ChurnEvent:
    """Crash or resume a node at a given workload step."""

    step: int
    node: int
    action: str  # "crash" | "resume"


def run_churn_stream(
    cluster: Cluster,
    general: int,
    values: Sequence[Value],
    churn: Sequence[ChurnEvent],
    settle_d: float = 10.0,
) -> list[AgreementRecord]:
    """A sequential stream with nodes crashing/resuming between agreements.

    Crashed nodes are counted against ``f``; the caller must keep the
    concurrent crash count within the fault bound.  Resumed nodes rejoin
    with whatever state they had (the paper's non-faulty-but-not-yet-correct
    phase) -- the stream's later agreements must still be clean at the
    *continuously-correct* nodes, which is what the record's flags check.
    """
    by_step: dict[int, list[ChurnEvent]] = {}
    for event in churn:
        by_step.setdefault(event.step, []).append(event)
    crashed: set[int] = set()
    records = []
    for step, value in enumerate(values):
        for event in by_step.get(step, ()):
            node = cluster.protocol_node(event.node)
            if event.action == "crash":
                node.crash()
                crashed.add(event.node)
            elif event.action == "resume":
                node.resume()
                node.every_local(cluster.params.d, node._cleanup_tick)
                crashed.discard(event.node)
            else:
                raise ValueError(f"unknown churn action {event.action!r}")
        if len(crashed) > cluster.params.f:
            raise ValueError("churn exceeds the fault bound f")
        _wait_until_may_propose(cluster, general, value)
        since = cluster.sim.now
        t0 = cluster.sim.now
        assert cluster.propose(general=general, value=value)
        cluster.run_for(cluster.params.delta_agr + settle_d * cluster.params.d)
        # Validity/agreement among the nodes that were up throughout (a
        # crashed node cannot return anything, and a freshly resumed node is
        # non-faulty but not yet *correct* per Definition 4).
        up_ids = [i for i in cluster.correct_ids if i not in crashed]
        latest = cluster.latest_decision_per_node(general, since_real=since)
        validity_ok = all(
            node_id in latest and latest[node_id].value == value
            for node_id in up_ids
        )
        up_values = {
            latest[node_id].value
            for node_id in up_ids
            if node_id in latest and latest[node_id].decided
        }
        agreement_ok = len(up_values) <= 1
        records.append(
            AgreementRecord(
                general=general,
                value=value,
                initiated_real=t0,
                since_real=since,
                validity_ok=validity_ok,
                agreement_ok=agreement_ok,
            )
        )
    return records


__all__ = [
    "AgreementRecord",
    "ChurnEvent",
    "run_churn_stream",
    "run_interleaved_generals",
    "run_round_robin_generals",
    "run_sequential_stream",
]
