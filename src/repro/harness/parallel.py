"""Process-pool fan-out over experiment seeds.

Every experiment driver in :mod:`repro.harness.experiments` runs a family of
scenarios as ``for seed in seeds: <build cluster, run, measure>``.  Each
per-seed run is a pure function of ``(scenario, seed)`` -- all randomness is
derived from the seed via sha256 (:mod:`repro.sim.rand`), so results are
identical across processes and interpreter invocations.  That makes seeds
embarrassingly parallel: this module fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor` while preserving the seed
order of the results, so parallel execution is *bit-identical* to serial.

Usage::

    from repro.harness.parallel import SeedPool

    with SeedPool(workers=8) as pool:
        results = pool.map(per_seed_fn, seeds)   # ordered like ``seeds``

``workers=None`` (the default everywhere) or ``workers=1`` runs serially in
process -- no pool, no pickling, deterministic output *ordering and content*
exactly as before this subsystem existed.  ``workers`` larger than the seed
count is fine; the pool simply leaves the extra workers idle.

Pool reuse
----------
Worker startup (fork/spawn + interpreter warmup) costs a visible fraction
of a short driver call, so the executor can outlive a single ``with``
block: :meth:`SeedPool.shared` returns a per-worker-count cached pool whose
context exit leaves the processes warm.  Successive ``run_e*`` calls with
the same ``workers=`` then pay pool startup once per process lifetime; the
experiment drivers all use this path.  :func:`shutdown_shared_pools`
releases the warm pools explicitly (the interpreter's atexit handling
reaps them otherwise), and a one-shot :func:`run_seeds_parallel` exposes
the same reuse via ``reuse_pool=True``.

The mapped callable and its bound arguments must be picklable: use
module-level functions (optionally wrapped in :func:`functools.partial`),
never lambdas or closures.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

R = TypeVar("R")

# Warm executors cached by effective worker count (see SeedPool.shared).
_SHARED_POOLS: dict[int, "SeedPool"] = {}


def _cpu_count() -> int:
    """Available core count (separate hook so tests can pin it)."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument to an effective worker count.

    ``None``, ``0`` and ``1`` mean serial; negative values mean "all cores";
    anything else is taken literally up to the machine's core count --
    requests beyond it are capped (with a :class:`RuntimeWarning`), so
    oversubscription is visible instead of silently thrashing the scheduler.
    """
    if workers is None or workers == 0:
        return 1
    cores = _cpu_count()
    if workers < 0:
        return cores
    if workers > cores:
        warnings.warn(
            f"workers={workers} exceeds the {cores} available core(s); "
            f"capping at {cores}",
            RuntimeWarning,
            stacklevel=2,
        )
        return cores
    return workers


class SeedPool:
    """A reusable seed fan-out: one process pool spanning many map calls.

    Drivers with outer sweep loops (over ``n``, attack names, delay
    fractions, ...) open one pool for the whole driver so worker startup is
    amortized across every inner seed loop.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.requested_workers = workers
        self._workers = resolve_workers(workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shared = False

    @classmethod
    def shared(cls, workers: Optional[int] = None) -> "SeedPool":
        """A cached, reusable pool for this worker count.

        The first call starts the workers; later calls (and later ``with``
        blocks) reuse them -- context exit does *not* shut a shared pool
        down.  Call :meth:`close` or :func:`shutdown_shared_pools` to
        release the processes.
        """
        count = resolve_workers(workers)
        pool = _SHARED_POOLS.get(count)
        if pool is None:
            pool = cls(count)
            pool._shared = True
            pool._ensure()
            _SHARED_POOLS[count] = pool
        return pool

    @property
    def workers(self) -> int:
        """Effective worker count (1 means serial in-process)."""
        return self._workers

    def _ensure(self) -> None:
        if self._workers > 1 and self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)

    def __enter__(self) -> "SeedPool":
        self._ensure()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._shared:
            self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent); shared pools leave the cache."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._shared:
            _SHARED_POOLS.pop(self._workers, None)
            self._shared = False

    def map(self, fn: Callable[[int], R], seeds: Iterable[int]) -> list[R]:
        """Apply ``fn`` to every seed; results come back in seed order."""
        seed_list = list(seeds)
        if self._executor is None or len(seed_list) <= 1:
            return [fn(seed) for seed in seed_list]
        return list(self._executor.map(fn, seed_list))


def run_seeds_parallel(
    fn: Callable[[int], R],
    seeds: Sequence[int],
    workers: Optional[int] = None,
    reuse_pool: bool = False,
) -> list[R]:
    """One-shot fan-out: map a picklable per-seed function over ``seeds``.

    Equivalent to ``[fn(s) for s in seeds]`` -- same results, same order --
    but runs on ``workers`` processes when ``workers`` exceeds one.  With
    ``reuse_pool=True`` the workers stay warm for the next call (see
    :meth:`SeedPool.shared`).
    """
    if reuse_pool:
        return SeedPool.shared(workers).map(fn, seeds)
    with SeedPool(workers) as pool:
        return pool.map(fn, seeds)


def shutdown_shared_pools() -> None:
    """Release every warm shared pool (idempotent)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()


__all__ = [
    "SeedPool",
    "resolve_workers",
    "run_seeds_parallel",
    "shutdown_shared_pools",
]
