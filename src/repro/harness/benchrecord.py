"""Machine-readable benchmark result registry.

The benchmark suite records each bench's headline numbers here, and the
suite's conftest flushes the registry to ``BENCH_perf.json`` at session
end.  Living in the always-importable ``repro`` package (rather than in
``benchmarks/conftest.py``) guarantees a single registry instance: pytest
imports a conftest under a different module name than the ``benchmarks.
conftest`` the bench modules import, so module-level state there would be
silently duplicated.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from pathlib import Path

# name -> flat dict of numbers/strings recorded by benches this session
_RESULTS: dict[str, dict] = {}


def record_bench_result(name: str, **numbers: object) -> None:
    """Record one benchmark's headline numbers for BENCH_perf.json.

    Repeated calls with the same name merge (later keys win), so a bench
    can record incrementally.
    """
    _RESULTS.setdefault(name, {}).update(numbers)


def has_results() -> bool:
    """True when at least one bench recorded something this session."""
    return bool(_RESULTS)


def summarize_latencies(latencies: list[float]) -> dict[str, float]:
    """Percentile summary of a latency sample, in milliseconds.

    Returns ``{"p50_ms", "p99_ms", "mean_ms", "max_ms"}`` (zeros for an
    empty sample) -- the flat shape ``record_bench_result`` expects.
    Percentiles use the nearest-rank method on the sorted sample: the
    q-th percentile is the ``ceil(q * count)``-th smallest value, i.e.
    index ``ceil(q * count) - 1``.
    """
    if not latencies:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(latencies)
    count = len(ordered)

    def rank(q: float) -> float:
        index = max(0, math.ceil(q * count) - 1)
        return ordered[min(count - 1, index)]

    return {
        "p50_ms": rank(0.50) * 1000.0,
        "p99_ms": rank(0.99) * 1000.0,
        "mean_ms": sum(ordered) / count * 1000.0,
        "max_ms": ordered[-1] * 1000.0,
    }


def _cpu_model() -> str:
    # platform.platform() + cpu_count cannot tell two physical hosts
    # running the same VM image apart, and absolute throughputs easily
    # differ 30% across host generations -- the regression differ treats
    # rows whose machine blocks differ as cross-machine (ratio-only), so
    # the block must capture the actual silicon.
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def _machine() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu": _cpu_model(),
    }


def write_bench_json(path: Path) -> int:
    """Merge this session's results into ``path``; return the result count.

    Partial runs (e.g. benchmarking one file) refresh only the benches they
    executed and keep every other recorded entry.  Because merged entries may
    come from different runs on different machines, provenance is stamped
    per result (``recorded_at`` / ``machine``), not just at the top level --
    the top-level ``machine`` block describes the machine of the most recent
    write.
    """
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text()).get("results", {})
        except (json.JSONDecodeError, OSError):
            existing = {}
    now = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    machine = _machine()
    for name, numbers in _RESULTS.items():
        existing[name] = {**numbers, "recorded_at": now, "machine": machine}
    payload = {
        "schema": 1,
        "generated_by": "benchmarks/conftest.py (pytest benchmarks/ --benchmark-only)",
        "generated_at": now,
        "machine": machine,
        "results": dict(sorted(existing.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return len(existing)


__all__ = [
    "has_results",
    "record_bench_result",
    "summarize_latencies",
    "write_bench_json",
]
