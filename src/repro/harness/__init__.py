"""Experiment harness.

* :mod:`repro.harness.scenario` -- declarative scenario construction: a
  :class:`~repro.harness.scenario.Cluster` wires the simulator, network,
  clocks, correct protocol nodes and Byzantine nodes together from a
  :class:`~repro.harness.scenario.ScenarioConfig`.
* :mod:`repro.harness.metrics` -- measurements over finished runs (decision
  spreads, anchor skews, message counts, latency).
* :mod:`repro.harness.properties` -- every theorem of the paper as an
  executable checker producing a :class:`~repro.harness.properties.
  PropertyReport`.
* :mod:`repro.harness.stats` -- aggregation helpers for sweeps.
* :mod:`repro.harness.parallel` -- process-pool seed fan-out; every
  experiment driver takes ``workers=`` and routes its per-seed runs
  through a :class:`~repro.harness.parallel.SeedPool`.
* :mod:`repro.harness.registry` -- experiments as data: named
  :class:`~repro.harness.registry.ExperimentSpec` entries run by one shared
  :func:`~repro.harness.registry.run_experiment` engine (seeds, ``workers=``
  fan-out, row aggregation, BENCH_perf.json recording).
* :mod:`repro.harness.experiments` -- the E1..E10 experiment drivers --
  thin wrappers over the registry engine -- that the benchmark suite and
  EXPERIMENTS.md are generated from.
* :mod:`repro.harness.suite` -- the scenario-matrix runner: declarative
  suite configs (grids over n, casts, delivery policies and fault
  timelines) fanned over the pool into one consolidated report.
"""

from repro.harness.parallel import SeedPool, run_seeds_parallel
from repro.harness.registry import (
    ExperimentSpec,
    ScenarioGroup,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.harness.metrics import (
    anchor_spread_real,
    decision_latencies,
    decision_spread_real,
    message_stats,
)
from repro.harness.properties import PropertyReport
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.harness.stats import summarize

__all__ = [
    "Cluster",
    "ExperimentSpec",
    "PropertyReport",
    "ScenarioConfig",
    "ScenarioGroup",
    "SeedPool",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "anchor_spread_real",
    "decision_latencies",
    "decision_spread_real",
    "message_stats",
    "run_seeds_parallel",
    "summarize",
]
