"""Ablation drivers A1..A3: stress the design choices DESIGN.md calls out.

* **A1 -- phase length Phi.**  The paper sets ``Phi = tau_skew + 2d = 8d``;
  the round deadlines of msgd-broadcast and Blocks S/T/U are all multiples
  of it.  Shrinking Phi below the proofs' requirement must (and does) break
  Agreement in relay-dependent scenarios: nodes that decide via Block R
  leave the late, relay-dependent node stranded past its deadlines.
* **A2 -- cleanup cadence.**  The decay rules assume cleanup runs "in the
  background"; we tick it every d by default.  Slower ticks delay garbage
  draining -- the ablation measures how far the cadence can be stretched
  before stabilization within Delta_stb starts failing.
* **A3 -- re-send throttle.**  The paper re-sends Initiator-Accept messages
  unboundedly; we throttle identical re-sends (default one per d).  The
  ablation sweeps the gap and shows correctness is insensitive while
  message volume scales inversely.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.params import ProtocolParams
from repro.faults.transient import TransientFaultInjector
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.net.delivery import FixedDelay

DEFAULT_RHO = 1e-4


def _split_anchor_attack(params: ProtocolParams, release_d: float = 3.2):
    """A Byzantine cabal that splits the correct nodes across Block R's
    freshness boundary.

    The General initiates only at nodes 1-3 (their anchors come from Block
    K: invoke - d); nodes 4-5 learn the value only through the support
    quorum (Block L anchors ~d older).  The cabal stalls the ready wave and
    releases it at ``release_d``, timed so the invokers' anchors are still
    fresh enough for Block R while the others' are not: nodes 4-5 can then
    decide only through relayed msgd-broadcasts, whose deadlines are
    multiples of Phi.
    """
    from repro.core.messages import ApproveMsg, InitiatorMsg, ReadyMsg, SupportMsg
    from repro.faults.byzantine import ScriptedStrategy

    d = params.d
    seeded = (1, 2, 3)
    everyone = tuple(range(params.n))
    script = [(0.05 * d, seeded, InitiatorMsg(0, "m"))]
    for t in (0.2 * d, 0.9 * d):
        script.append((t, seeded, SupportMsg(0, "m")))
    for t in (2.0 * d, 2.4 * d):
        script.append((t, (1, 2), ApproveMsg(0, "m")))
    for t in (release_d * d, (release_d + 0.2) * d):
        script.append((t, everyone, ReadyMsg(0, "m")))
    return {
        0: ScriptedStrategy(tuple(script)),
        6: ScriptedStrategy(tuple(script[1:])),
    }


def run_a1_phi_ablation(
    phi_scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    seeds: Sequence[int] = range(8),
    release_d: float = 3.2,
) -> list[dict]:
    """Shrink Phi under the split-anchor attack.

    Nodes 1-3 decide via Block R; nodes 4-5 must decide through relayed
    msgd-broadcasts -- whose deadlines are multiples of Phi, exactly the
    margin the ablation removes.  At the paper's Phi the relay always lands
    in time and everyone decides; with Phi shrunk, the relay-dependent
    nodes miss their deadlines and abort while the others decided: an
    Agreement violation.
    """
    rows = []
    for scale in phi_scales:
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=DEFAULT_RHO, phi_scale=scale)
        agreement_ok = 0
        stranded = 0
        for seed in seeds:
            cluster = Cluster(
                ScenarioConfig(
                    params=params,
                    seed=seed,
                    byzantine=_split_anchor_attack(params, release_d),
                    policy=FixedDelay(0.1 * params.delta),
                )
            )
            cluster.run_for(3 * max(params.delta_agr, 20 * params.d))
            if properties.agreement(cluster, 0).holds:
                agreement_ok += 1
            else:
                stranded += 1
        rows.append(
            {
                "phi_scale": scale,
                "phi_d": params.phi / params.d,
                "runs": len(list(seeds)),
                "agreement_ok": agreement_ok,
                "violations": stranded,
            }
        )
    return rows


def run_a2_cleanup_interval(
    intervals_d: Sequence[float] = (0.5, 1.0, 4.0, 16.0),
    seeds: Sequence[int] = range(5),
) -> list[dict]:
    """Stabilization success vs the background cleanup cadence."""
    rows = []
    for interval in intervals_d:
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=DEFAULT_RHO)
        recovered = 0
        for seed in seeds:
            cluster = Cluster(
                ScenarioConfig(
                    params=params, seed=seed, cleanup_interval_d=interval
                )
            )
            injector = TransientFaultInjector(
                params,
                cluster.rng.split("inj"),
                value_pool=["A", "B", "C"],
                generals=[0, 1],
            )
            cluster.run_for(5 * params.d)
            injector.havoc(cluster.correct_nodes(), cluster.net, 250)
            cluster.run_for(params.delta_stb)
            since = cluster.sim.now
            if cluster.propose(general=0, value="r"):
                cluster.run_for(params.delta_agr + 10 * params.d)
                if properties.validity(cluster, 0, "r", since_real=since).holds:
                    recovered += 1
        rows.append(
            {
                "cleanup_interval_d": interval,
                "runs": len(list(seeds)),
                "recovered": recovered,
            }
        )
    return rows


def run_a3_resend_throttle(
    gaps_d: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    seeds: Sequence[int] = range(5),
) -> list[dict]:
    """Message volume and correctness vs the re-send throttle gap."""
    rows = []
    for gap in gaps_d:
        params = ProtocolParams(n=7, f=2, delta=1.0, rho=DEFAULT_RHO)
        validity_ok = 0
        messages: list[int] = []
        for seed in seeds:
            cluster = Cluster(
                ScenarioConfig(params=params, seed=seed, resend_gap_d=gap)
            )
            base = cluster.net.sent_count
            assert cluster.propose(general=0, value="v")
            cluster.run_for(params.delta_agr + 10 * params.d)
            messages.append(cluster.net.sent_count - base)
            if properties.validity(cluster, 0, "v").holds:
                validity_ok += 1
        rows.append(
            {
                "resend_gap_d": gap,
                "runs": len(list(seeds)),
                "validity_ok": validity_ok,
                "messages_mean": sum(messages) / len(messages),
            }
        )
    return rows


__all__ = [
    "run_a1_phi_ablation",
    "run_a2_cleanup_interval",
    "run_a3_resend_throttle",
]
