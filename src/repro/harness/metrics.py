"""Measurements over finished runs.

All spreads/skews are computed on the *real-time* axis (the proofs' ``rt``),
using each node's clock to translate recorded local anchors where needed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.agreement import Decision
from repro.core.params import BOTTOM
from repro.harness.scenario import Cluster


def decided_only(decisions: Iterable[Decision]) -> list[Decision]:
    """Keep only real decisions (drop BOTTOM returns)."""
    return [dec for dec in decisions if dec.decided]


def decision_spread_real(decisions: Sequence[Decision]) -> Optional[float]:
    """Max pairwise |rt(tau_q) - rt(tau_q')| over the decisions, or None."""
    times = [dec.returned_real for dec in decisions]
    if len(times) < 2:
        return None
    return max(times) - min(times)


def anchor_spread_real(decisions: Sequence[Decision]) -> Optional[float]:
    """Max pairwise |rt(tau_G_q) - rt(tau_G_q')| over the decisions, or None."""
    anchors = [dec.tau_g_real for dec in decisions if dec.tau_g_real is not None]
    if len(anchors) < 2:
        return None
    return max(anchors) - min(anchors)


def decision_latencies(
    decisions: Sequence[Decision], initiated_real: float
) -> list[float]:
    """Per-node real-time latency from initiation to return."""
    return [dec.returned_real - initiated_real for dec in decisions]


def decision_values(decisions: Sequence[Decision]) -> set:
    """The set of non-BOTTOM values returned."""
    return {dec.value for dec in decisions if dec.value is not BOTTOM}


def message_stats(cluster: Cluster) -> dict[str, int]:
    """Network-level message accounting for the run so far."""
    return {
        "sent": cluster.net.sent_count,
        "delivered": cluster.net.delivered_count,
        "dropped": cluster.net.dropped_count,
        "dropped_partition": cluster.net.dropped_partition,
        "dropped_policy": cluster.net.dropped_policy,
    }


def i_accept_events(cluster: Cluster, general: int, since_real: float = 0.0):
    """All correct-node I-accept trace events for one General.

    Each returned entry is ``(node_id, real_time, value, tau_g_real)``.
    """
    out = []
    correct = set(cluster.correct_ids)
    for ev in cluster.tracer.of_kind("i_accept"):
        if ev.node not in correct or ev.real_time < since_real:
            continue
        if ev.detail.get("general") != general:
            continue
        node = cluster.protocol_node(ev.node)
        tau_g_local = ev.detail["tau_g_local"]
        out.append(
            (
                ev.node,
                ev.real_time,
                ev.detail["value"],
                node.clock.real_at_local(tau_g_local),
            )
        )
    return out


def mb_accept_events(cluster: Cluster, general: int, since_real: float = 0.0):
    """All correct-node msgd-broadcast accepts for one General.

    Each returned entry is ``(node_id, real_time, origin, value, k)``.
    """
    out = []
    correct = set(cluster.correct_ids)
    for ev in cluster.tracer.of_kind("mb_accept"):
        if ev.node not in correct or ev.real_time < since_real:
            continue
        if ev.detail.get("general") != general:
            continue
        out.append(
            (
                ev.node,
                ev.real_time,
                ev.detail["origin"],
                ev.detail["value"],
                ev.detail["k"],
            )
        )
    return out


def mb_invoke_events(cluster: Cluster, general: int, since_real: float = 0.0):
    """All correct-node msgd-broadcast invocations for one General.

    Each returned entry is ``(node_id, real_time, value, k)``.
    """
    out = []
    correct = set(cluster.correct_ids)
    for ev in cluster.tracer.of_kind("mb_invoke"):
        if ev.node not in correct or ev.real_time < since_real:
            continue
        if ev.detail.get("general") != general:
            continue
        out.append((ev.node, ev.real_time, ev.detail["value"], ev.detail["k"]))
    return out


__all__ = [
    "anchor_spread_real",
    "decided_only",
    "decision_latencies",
    "decision_spread_real",
    "decision_values",
    "i_accept_events",
    "mb_accept_events",
    "mb_invoke_events",
    "message_stats",
]
