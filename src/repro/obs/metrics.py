"""Prometheus-text-format metrics for the wall-clock backends.

A deliberately small registry -- counters, gauges, histograms -- rendered
in the Prometheus text exposition format (version 0.0.4), stdlib only.
The design constraint is the serving topology: samples are taken on the
event-loop thread (the child poll loop / a sampler task), while rendering
happens on an HTTP handler thread.  Every metric therefore stores plain
numbers that are *snapshotted* into it by :meth:`NodeMetrics.sample`;
the render path reads those numbers and never touches live protocol
structures, so a scrape can never race a timer-registry mutation.

:data:`REQUIRED_SERIES` is the contract the CI gate asserts against: the
series every node's ``/metrics`` endpoint must expose.  Keep it in sync
with what :class:`NodeMetrics` registers.
"""

from __future__ import annotations

import math
import re
from typing import Optional, Sequence

#: Series every per-node /metrics endpoint must expose (CI contract).
REQUIRED_SERIES = (
    "repro_arrivals_total",
    "repro_messages_sent_total",
    "repro_frames_authenticated_total",
    "repro_frames_rejected_total",
    "repro_datagrams_sent_total",
    "repro_watch_fires_total",
    "repro_live_timers",
    "repro_live_slot_instances",
    "repro_decision_latency_seconds",
    "repro_decide_latency_seconds",
)

#: Decision/decide latency buckets, in seconds.  Service decide latencies
#: sit in the 0.1-1s range at the default time scales; agreement decision
#: latencies run a few Delta_agr, i.e. seconds at time_scale 0.05.
DEFAULT_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotone cumulative series.

    Besides ``inc``, the counter supports ``set_total`` because most of
    the runtime's counters already exist as monotone ints on the transport
    and host; the sampler snapshots them rather than double-counting.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str, labels: dict[str, str]):
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_total(self, total: float) -> None:
        """Snapshot an externally maintained monotone total."""
        if total > self.value:
            self.value = total

    def render(self) -> list[str]:
        return [f"{self.name}{_fmt_labels(self.labels)} {_fmt_value(self.value)}"]


class Gauge(Counter):
    """An instantaneous reading; may go up or down."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A cumulative-bucket histogram with ``_sum`` and ``_count`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[i] += 1

    def render(self) -> list[str]:
        lines = []
        cumulative = 0
        for upper, in_bucket in zip(self.buckets, self.bucket_counts):
            cumulative = in_bucket  # bucket_counts are already cumulative
            labels = dict(self.labels, le=_fmt_value(upper))
            lines.append(
                f"{self.name}_bucket{_fmt_labels(labels)} {cumulative}"
            )
        labels = dict(self.labels, le="+Inf")
        lines.append(f"{self.name}_bucket{_fmt_labels(labels)} {self.count}")
        lines.append(
            f"{self.name}_sum{_fmt_labels(self.labels)} {_fmt_value(self.sum)}"
        )
        lines.append(f"{self.name}_count{_fmt_labels(self.labels)} {self.count}")
        return lines


class MetricsRegistry:
    """Orders metrics and renders the full exposition document."""

    def __init__(self) -> None:
        self._metrics: list = []
        self._by_key: dict[tuple[str, tuple], object] = {}

    def _register(self, metric) -> None:
        if not _NAME_RE.match(metric.name):
            raise ValueError(f"invalid metric name {metric.name!r}")
        key = (metric.name, tuple(sorted(metric.labels.items())))
        if key in self._by_key:
            raise ValueError(f"duplicate metric {key!r}")
        self._by_key[key] = metric
        self._metrics.append(metric)

    def counter(
        self, name: str, help_text: str, labels: Optional[dict] = None
    ) -> Counter:
        metric = Counter(name, help_text, labels or {})
        self._register(metric)
        return metric

    def gauge(
        self, name: str, help_text: str, labels: Optional[dict] = None
    ) -> Gauge:
        metric = Gauge(name, help_text, labels or {})
        self._register(metric)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Optional[dict] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = Histogram(name, help_text, labels or {}, buckets)
        self._register(metric)
        return metric

    def render(self) -> str:
        """The Prometheus text exposition document (one scrape)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self._metrics:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                lines.append(f"# HELP {metric.name} {metric.help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict[str, float]]:
    """Parse an exposition document into ``{series: {labelset: value}}``.

    ``series`` is the sample name as emitted (histogram samples keep their
    ``_bucket``/``_sum``/``_count`` suffixes); ``labelset`` is the literal
    ``{...}`` label string (``""`` for unlabelled samples).  Used by tests
    and the CI gate to assert scrape contents without external deps.
    """
    out: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            raise ValueError(f"malformed sample line: {line!r}")
        if "{" in body:
            name, _, rest = body.partition("{")
            labels = "{" + rest
        else:
            name, labels = body, ""
        if not _NAME_RE.match(name):
            raise ValueError(f"malformed series name in line: {line!r}")
        value = float(raw_value)  # accepts +Inf/NaN spellings too
        out.setdefault(name, {})[labels] = value
    return out


class NodeMetrics:
    """One node's standard metric set, sampled from live runtime objects.

    ``sample`` runs on the owning event-loop thread and snapshots every
    counter the transport/host/node already maintain; ``observe_decision``
    feeds the decision-latency histogram; service runs additionally stream
    the coordinator's decide latencies via ``sample`` (consumed
    incrementally, so each latency is observed exactly once).
    """

    def __init__(self, node_id: int, time_scale: float) -> None:
        self.node_id = node_id
        self.time_scale = time_scale
        self.registry = MetricsRegistry()
        labels = {"node": str(node_id)}
        reg = self.registry
        self.arrivals = reg.counter(
            "repro_arrivals_total",
            "Protocol messages delivered to this node", labels)
        self.sent = reg.counter(
            "repro_messages_sent_total",
            "Protocol message copies sent by this node", labels)
        self.authenticated = reg.counter(
            "repro_frames_authenticated_total",
            "Wire frames that passed authentication and were delivered",
            labels)
        self.rejected = reg.counter(
            "repro_frames_rejected_total",
            "Datagrams refused: malformed, oversized, or failing auth",
            labels)
        self.dropped = reg.counter(
            "repro_messages_dropped_total",
            "Copies dropped by delivery policy or injected link faults",
            labels)
        self.datagrams = reg.counter(
            "repro_datagrams_sent_total",
            "Datagrams actually put on the wire (after coalescing)", labels)
        self.watch_fires = reg.counter(
            "repro_watch_fires_total",
            "Message-log watch callbacks fired (threshold crossings)", labels)
        self.decisions = reg.counter(
            "repro_decisions_total",
            "Agreement decisions returned at this node", labels)
        self.live_timers = reg.gauge(
            "repro_live_timers", "Timers currently armed at this node", labels)
        self.live_instances = reg.gauge(
            "repro_live_slot_instances",
            "Live (unretired) agreement-instance states held", labels)
        self.live_watches = reg.gauge(
            "repro_live_watches",
            "Message-log watches currently registered", labels)
        self.incarnation = reg.gauge(
            "repro_incarnation",
            "Supervisor respawn incarnation of this process", labels)
        self.commands_applied = reg.counter(
            "repro_commands_applied_total",
            "Replicated-log commands applied at this replica", labels)
        self.decision_latency = reg.histogram(
            "repro_decision_latency_seconds",
            "Agreement latency: initiation (tau_g) to decision, wall seconds",
            labels)
        self.decide_latency = reg.histogram(
            "repro_decide_latency_seconds",
            "Service decide latency: command arrival to decided, seconds",
            labels)
        self._decide_seen = 0

    def observe_decision(self, decision) -> None:
        """Feed one agreement decision into the latency histogram.

        Aborts whose initiation never anchored carry ``tau_g_real=None``;
        they are counted but have no latency to observe.  This callback
        sits at the head of the node's decision-tap chain, so it must
        never raise -- an exception here would unwind the dispatch before
        the applier/coordinator taps see the outcome.
        """
        self.decisions.inc()
        if decision.tau_g_real is None:
            return
        latency_units = decision.returned_real - decision.tau_g_real
        if latency_units >= 0.0:
            self.decision_latency.observe(latency_units * self.time_scale)

    def sample(
        self, transport=None, host=None, node=None, service=None
    ) -> None:
        """Snapshot every externally maintained counter (loop thread only)."""
        if transport is not None:
            self.sent.set_total(transport.sent_count)
            self.arrivals.set_total(transport.delivered_count)
            self.authenticated.set_total(transport.delivered_count)
            self.rejected.set_total(transport.rejected_count)
            self.dropped.set_total(transport.dropped_count)
            self.datagrams.set_total(getattr(transport, "datagrams_sent", 0))
        if host is not None:
            self.live_timers.set(host.live_timer_count())
        if node is not None:
            self.live_instances.set(len(node.instances))
            self.watch_fires.set_total(node.watch_fires())
            self.live_watches.set(node.live_watches())
        if service is not None:
            applier = getattr(service, "applier", None)
            if applier is not None:
                self.commands_applied.set_total(applier.commands_applied)
                self.live_instances.set(applier.live_slot_instances)
            coordinator = getattr(service, "coordinator", None)
            if coordinator is not None:
                latencies = coordinator.latencies
                for latency in latencies[self._decide_seen:]:
                    self.decide_latency.observe(latency)
                self._decide_seen = len(latencies)

    def render(self) -> str:
        return self.registry.render()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeMetrics",
    "REQUIRED_SERIES",
    "parse_prometheus_text",
]
