"""Live-cluster observability: Prometheus /metrics, /status, /faults."""

from repro.obs.control import (
    AsyncioControlPlane,
    SocketControlPlane,
    parse_fault_payload,
)
from repro.obs.http import MAX_BODY_BYTES, ObservabilityServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NodeMetrics,
    REQUIRED_SERIES,
    parse_prometheus_text,
)

__all__ = [
    "AsyncioControlPlane",
    "DEFAULT_BUCKETS",
    "MAX_BODY_BYTES",
    "MetricsRegistry",
    "NodeMetrics",
    "ObservabilityServer",
    "REQUIRED_SERIES",
    "SocketControlPlane",
    "parse_fault_payload",
    "parse_prometheus_text",
]
