"""Cluster control planes: /metrics, /status, /faults over live clusters.

Two deployments of the same :class:`~repro.obs.http.ObservabilityServer`:

* :class:`AsyncioControlPlane` -- the in-process backend.  All nodes share
  one loop, so a single server exposes every node's series (labelled
  ``node="i"``) plus the cluster ``/status`` and ``/faults`` endpoints.
  Fault specs are parsed on the handler thread but *installed* on the loop
  thread via ``call_soon_threadsafe`` -- the handler never touches live
  protocol state.
* :class:`SocketControlPlane` -- the parent of a
  :class:`~repro.runtime.socket_host.SocketCluster`.  Each child serves
  its own ``/metrics`` (see ``_child_run``); the parent serves the
  cluster-wide ``/status`` (supervision state, per-node metrics addresses,
  service progress), a parent-level ``/metrics`` (supervisor counters),
  and ``POST /faults``, which validates the spec and enqueues it for the
  parent's pump loop to arm -- same thread discipline, different process
  topology.

Both accept the exact JSON action specs
:meth:`repro.faults.timeline.FaultScript.from_spec` parses, e.g.::

    [{"at_d": 0.0, "do": "crash", "nodes": [2], "state_loss": true},
     {"at_d": 6.0, "do": "restart", "nodes": [2]}]

``at_d`` offsets are measured from *injection*, so ``at_d: 0`` means "now".
"""

from __future__ import annotations

import asyncio
import types
from typing import Optional

from repro.faults.timeline import FaultScript
from repro.obs.http import ObservabilityServer
from repro.obs.metrics import MetricsRegistry, NodeMetrics


def parse_fault_payload(spec: object) -> FaultScript:
    """Parse a ``POST /faults`` JSON body into a :class:`FaultScript`.

    Accepts either a bare list of action dicts or ``{"actions": [...]}``.
    Raises ``ValueError``/``KeyError``/``TypeError`` on malformed input
    (mapped to HTTP 400 by the server).
    """
    if isinstance(spec, dict):
        spec = spec.get("actions")
    if not isinstance(spec, list) or not spec:
        raise ValueError(
            'expected a non-empty JSON list of fault actions (or {"actions":'
            " [...]}); see repro.faults.timeline.FaultScript.from_spec"
        )
    return FaultScript.from_spec(spec)


class AsyncioControlPlane:
    """Observability + fault injection for an in-process asyncio cluster.

    Construct inside the running loop, call :meth:`start` to begin
    sampling and serving, :meth:`close` at teardown.  ``service`` (a
    :class:`~repro.service.service.ReplicatedLogService`) is optional;
    with it, per-replica apply counters and the primary's decide-latency
    histogram are exposed and ``/status`` reports log progress.
    """

    def __init__(
        self,
        cluster,
        service=None,
        sample_interval_s: float = 0.1,
        port: int = 0,
    ) -> None:
        self.cluster = cluster
        self.service = service
        self.sample_interval_s = sample_interval_s
        time_scale = cluster.transport.time_scale
        self.node_metrics: dict[int, NodeMetrics] = {
            node_id: NodeMetrics(node_id, time_scale)
            for node_id in cluster.correct_ids
        }
        self._status_cache: dict = {
            "backend": "asyncio",
            "n": cluster.params.n,
            "f": cluster.params.f,
            "ready": False,
            "nodes": {},
            "faults_injected": 0,
        }
        self._loop = asyncio.get_running_loop()
        self._sampler: Optional[asyncio.Task] = None
        self._drivers: list = []
        self.server = ObservabilityServer(
            render=self._render,
            status=self._status,
            faults=self._inject,
            port=port,
        )
        if hasattr(cluster, "add_decision_observer"):
            cluster.add_decision_observer(self._on_decision)

    # -- loop-thread side ----------------------------------------------
    def _on_decision(self, decision) -> None:
        metrics = self.node_metrics.get(decision.node)
        if metrics is not None:
            metrics.observe_decision(decision)

    def _service_shim(self, node_id: int):
        service = self.service
        if service is None:
            return None
        return types.SimpleNamespace(
            applier=service.appliers.get(node_id),
            coordinator=(
                service.coordinator if node_id == service.primary else None
            ),
        )

    def sample(self) -> None:
        """One sampling pass (loop thread).  Also refreshes /status."""
        cluster = self.cluster
        nodes_status: dict[str, dict] = {}
        for node_id, metrics in self.node_metrics.items():
            node = cluster.nodes[node_id]
            metrics.sample(
                # The transport is shared in-process, so these counters are
                # cluster-wide on this backend (identical on every node).
                transport=cluster.transport,
                host=cluster.hosts[node_id],
                node=node,
                service=self._service_shim(node_id),
            )
            nodes_status[str(node_id)] = {
                "alive": not getattr(node, "crashed", False),
                "live_timers": int(metrics.live_timers.value),
                "live_slot_instances": int(metrics.live_instances.value),
                "decisions": int(metrics.decisions.value),
            }
        self._status_cache["nodes"] = nodes_status
        self._status_cache["ready"] = True
        service = self.service
        if service is not None:
            coord = service.coordinator
            self._status_cache["service"] = {
                "primary": service.primary,
                "commands_submitted": coord.commands_submitted,
                "commands_decided": coord.commands_decided,
                "slots_decided": coord.slots_decided,
                "applied_per_replica": {
                    str(node_id): applier.commands_applied
                    for node_id, applier in service.appliers.items()
                },
            }

    async def _sample_loop(self) -> None:
        while True:
            self.sample()
            await asyncio.sleep(self.sample_interval_s)

    def _install_script(self, script: FaultScript) -> None:
        from repro.faults.live import AsyncioFaultDriver

        driver = AsyncioFaultDriver(script, self.cluster)
        driver.install()
        self._drivers.append(driver)

    # -- handler-thread side -------------------------------------------
    def _render(self) -> str:
        return "".join(
            metrics.render() for metrics in self.node_metrics.values()
        )

    def _status(self) -> dict:
        return dict(self._status_cache)

    def _inject(self, spec: object) -> dict:
        from repro.faults.live import validate_live_script

        script = parse_fault_payload(spec)
        validate_live_script(script, backend="asyncio")
        self._loop.call_soon_threadsafe(self._install_script, script)
        self._status_cache["faults_injected"] += len(script.actions)
        return {"accepted": len(script.actions), "backend": "asyncio"}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "AsyncioControlPlane":
        if self._sampler is None:
            self.sample()
            self._sampler = self._loop.create_task(self._sample_loop())
            self.server.start()
        return self

    async def close(self) -> None:
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
            self._sampler = None
        for driver in self._drivers:
            driver.cancel()
        self._drivers.clear()
        self.server.close()


class SocketControlPlane:
    """Parent-side /status + /faults + supervisor /metrics for a
    :class:`~repro.runtime.socket_host.SocketCluster`.

    The per-node Prometheus endpoints live in the children (their
    addresses appear in ``/status``); the parent's own ``/metrics``
    exposes what only the supervisor knows: liveness, respawn counts,
    retirements, injected-fault counts, and (service runs) apply progress.
    """

    def __init__(self, cluster, port: int = 0) -> None:
        self.cluster = cluster
        self.registry = MetricsRegistry()
        reg = self.registry
        self._nodes_alive = reg.gauge(
            "repro_cluster_nodes_alive", "Children currently alive")
        self._nodes_retired = reg.gauge(
            "repro_cluster_nodes_retired", "Children retired by the supervisor")
        self._restarts = reg.counter(
            "repro_cluster_restarts_total", "Supervisor respawns, cluster-wide")
        self._faults = reg.counter(
            "repro_cluster_faults_injected_total",
            "Fault actions accepted via POST /faults")
        self._applied = reg.gauge(
            "repro_cluster_commands_applied_min",
            "Min commands applied across correct replicas (service runs)")
        self.server = ObservabilityServer(
            render=self._render,
            status=cluster.status_snapshot,
            faults=self._inject,
            port=port,
        )

    # -- handler-thread side (reads simple parent fields only) ----------
    def _render(self) -> str:
        cluster = self.cluster
        alive = sum(
            1 for proc in cluster.procs.values() if proc.is_alive()
        )
        self._nodes_alive.set(alive)
        self._nodes_retired.set(len(cluster._retired))
        self._restarts.set_total(sum(cluster._restarts.values()))
        self._faults.set_total(cluster.faults_injected)
        progress = getattr(cluster, "progress", None)
        if progress:
            self._applied.set(
                min((held[1] for held in progress.values()), default=0)
            )
        return self.registry.render()

    def _inject(self, spec: object) -> dict:
        return self.cluster.inject_fault_script(spec)

    def start(self) -> "SocketControlPlane":
        self.server.start()
        return self

    def close(self) -> None:
        self.server.close()


__all__ = [
    "AsyncioControlPlane",
    "SocketControlPlane",
    "parse_fault_payload",
]
