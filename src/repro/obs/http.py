"""Tiny stdlib HTTP server for the observability endpoints.

One :class:`ObservabilityServer` instance serves whichever of the three
endpoints its owner wires up:

* ``GET /metrics`` -- Prometheus text exposition (a render callable).
* ``GET /status``  -- JSON cluster/node status (a snapshot callable).
* ``POST /faults`` -- JSON ``FaultScript`` action specs (an inject
  callable; the body is parsed here, validation happens in the callable).
* ``GET /healthz`` -- liveness probe, always ``200 ok`` while serving.

The server is a ``ThreadingHTTPServer`` on a daemon thread: socket
children and the cluster parent both run event/poll loops on their main
thread, and a scrape must never block protocol progress.  Handler
callables therefore run OFF the loop thread -- owners must only hand in
callables that read snapshotted state (or enqueue work for the loop to
pick up), never ones that mutate live protocol structures.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

#: Cap on /faults request bodies; a fault spec is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20


class ObservabilityServer:
    """Serve /metrics, /status, /faults from a daemon thread."""

    def __init__(
        self,
        render: Optional[Callable[[], str]] = None,
        status: Optional[Callable[[], dict]] = None,
        faults: Optional[Callable[[object], dict]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._status = status
        self._faults = faults
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # Observability must stay silent on the child's stderr.
            def log_message(self, fmt, *args):  # noqa: D102
                pass

            def _reply(self, code: int, body: bytes, content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_json(self, code: int, payload: dict) -> None:
                self._reply(
                    code,
                    json.dumps(payload, default=str).encode(),
                    "application/json",
                )

            def do_GET(self):  # noqa: N802
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics" and outer._render is not None:
                        body = outer._render().encode()
                        self._reply(
                            200, body,
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path == "/status" and outer._status is not None:
                        self._reply_json(200, outer._status())
                    elif path == "/healthz":
                        self._reply(200, b"ok\n", "text/plain")
                    else:
                        self._reply_json(404, {"error": f"no route {path}"})
                except Exception as exc:  # never kill the handler thread
                    try:
                        self._reply_json(500, {"error": repr(exc)})
                    except OSError:
                        pass

            def do_POST(self):  # noqa: N802
                path = self.path.split("?", 1)[0]
                if path != "/faults" or outer._faults is None:
                    self._reply_json(404, {"error": f"no route {path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    if not 0 < length <= MAX_BODY_BYTES:
                        self._reply_json(400, {"error": "bad Content-Length"})
                        return
                    spec = json.loads(self.rfile.read(length))
                except (ValueError, OSError) as exc:
                    self._reply_json(400, {"error": f"bad JSON body: {exc}"})
                    return
                try:
                    self._reply_json(200, outer._faults(spec))
                except (KeyError, TypeError, ValueError) as exc:
                    self._reply_json(400, {"error": str(exc)})
                except Exception as exc:
                    try:
                        self._reply_json(500, {"error": repr(exc)})
                    except OSError:
                        pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.address: tuple[str, int] = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start(self) -> "ObservabilityServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
                name=f"repro-obs-{self.port}",
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._server.server_close()


__all__ = ["MAX_BODY_BYTES", "ObservabilityServer"]
