"""The replicated-log service on the asyncio backend.

Wires the coordinator and appliers onto an
:class:`~repro.runtime.aio.AsyncioCluster`, plus the two things a *service*
needs beyond the protocol:

* **A state sampler.**  A background task samples every correct node's live
  slot-instance count and live timer count throughout the run.  Retirement
  is thereby *measured*, not assumed: the per-sample maximum must stay
  within an O(window) bound (``live_bound``) even as thousands of slots
  stream through -- live protocol state drains back toward the in-flight
  window continuously, not just at teardown.
* **An f+1 repair path.**  A replica that missed decisions (crashed and
  restarted mid-run) adopts slot outcomes that at least ``f + 1`` peers
  report identically -- since at most ``f`` are faulty, at least one
  correct replica applied each adopted outcome, so adoption preserves the
  identical-sequence invariant without re-running agreement.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.aio import AsyncioCluster
from repro.service.applier import ReplicaApplier
from repro.service.coordinator import LogCoordinator
from repro.service.workload import OpenLoopWorkload


@dataclass
class ServiceReport:
    """Everything one service run measured."""

    elapsed_s: float
    commands_submitted: int
    commands_decided: int
    #: Commands applied at every correct replica (the min across them).
    commands_applied: int
    slots_launched: int
    slots_decided: int
    slots_aborted: int
    peak_in_flight: int
    #: Max live slot instances at any sampled node, over the whole run.
    peak_live_instances: int
    peak_live_timers: int
    #: The O(window) drain bound the sampler checks against.
    live_bound: int
    #: Samples (after warmup) whose live-instance count exceeded the bound.
    bound_violations: int
    samples: int
    #: Per-command decide latency, seconds from stamped arrival.
    latencies: list[float] = field(default_factory=list)
    identical_logs: bool = False
    digests: dict[int, str] = field(default_factory=dict)
    applied_per_replica: dict[int, int] = field(default_factory=dict)
    repaired_entries: int = 0

    @property
    def commands_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.commands_decided / self.elapsed_s

    @property
    def instances_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return (self.slots_decided + self.slots_aborted) / self.elapsed_s


class ReplicatedLogService:
    """A long-lived replicated command log on an asyncio cluster."""

    def __init__(
        self,
        cluster: AsyncioCluster,
        primary: int = 0,
        window: int = 8,
        max_batch: int = 64,
        retire_after_d: float = 6.0,
        sample_interval_s: float = 0.05,
    ) -> None:
        if primary not in cluster.correct_ids:
            raise ValueError(f"primary {primary} must be a correct node")
        self.cluster = cluster
        self.primary = primary
        self.window = window
        self.max_batch = max_batch
        self.retire_after_d = retire_after_d
        self.sample_interval_s = sample_interval_s
        self.appliers: dict[int, ReplicaApplier] = {
            node_id: ReplicaApplier(
                cluster.protocol_node(node_id), primary, retire_after_d
            )
            for node_id in cluster.correct_ids
        }
        primary_applier = self.appliers[primary]
        self.coordinator = LogCoordinator(
            cluster.protocol_node(primary),
            window=window,
            max_batch=max_batch,
            retired_watermark=lambda: primary_applier.retire_watermark,
        )
        primary_applier.on_retire = (
            lambda _watermark: self.coordinator.notify_retired()
        )
        #: Enforced, not emergent: the coordinator refuses to launch past
        #: 3 * window launched-but-unretired slots at the primary, and the
        #: other replicas' watermarks trail the primary's by at most the
        #: retirement progress of one message delay -- so every correct
        #: node's live slot instances stay under ~4 windows regardless of
        #: how many slots the run streams through.
        self.live_bound = 4 * window + 2
        #: Per-sample (elapsed_s, max live slot instances, max live timers).
        self.state_samples: list[tuple[float, int, int]] = []
        self.peak_live_instances = 0
        self.peak_live_timers = 0
        self.bound_violations = 0
        #: Bound checks only apply once the pipeline has filled.
        self._warmed_up = False
        self._sampler: Optional[asyncio.Task] = None
        self._started_at: Optional[float] = None
        self.repaired_entries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin background state sampling."""
        if self._sampler is None:
            self._started_at = time.monotonic()
            self._sampler = asyncio.get_running_loop().create_task(
                self._sample_loop()
            )

    async def stop(self) -> None:
        """Stop sampling and detach the decision taps."""
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
            self._sampler = None
        self.sample_state()  # one final reading
        self.coordinator.detach()
        for applier in self.appliers.values():
            applier.detach()

    async def _sample_loop(self) -> None:
        while True:
            self.sample_state()
            await asyncio.sleep(self.sample_interval_s)

    def sample_state(self) -> tuple[int, int]:
        """Record one (live instances, live timers) reading; returns it."""
        live = max(
            applier.live_slot_instances for applier in self.appliers.values()
        )
        timers = max(
            self.cluster.hosts[node_id].live_timer_count()
            for node_id in self.appliers
        )
        started = self._started_at if self._started_at is not None else 0.0
        self.state_samples.append((time.monotonic() - started, live, timers))
        if live > self.peak_live_instances:
            self.peak_live_instances = live
        if timers > self.peak_live_timers:
            self.peak_live_timers = timers
        if not self._warmed_up:
            # Warmed up once the pipeline has been filled at least once.
            self._warmed_up = self.coordinator.slots_launched >= self.window
        # The transition sample is itself subject to the bound: a pipeline
        # that overshoots in the very sample that completes warmup must
        # count as a violation, not slip through the warmup gate.
        if self._warmed_up and live > self.live_bound:
            self.bound_violations += 1
        return live, timers

    # ------------------------------------------------------------------
    # Completion and repair
    # ------------------------------------------------------------------
    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for the pipeline to empty and every replica to catch up.

        Returns True when every correct replica has finalized every slot
        the coordinator launched (repair may still be warranted for
        replicas that missed decisions permanently -- see :meth:`repair`).
        """
        # ``is not None``: a zero timeout means "poll once and report",
        # not "wait forever" (0 is falsy, so a truthiness check would
        # silently turn poll-once into an unbounded wait).
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )

        def remaining() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - time.monotonic())

        wait = remaining()
        if wait == 0.0:
            # Poll-once: a zero deadline must not enter wait_for, whose
            # zero-timeout path cancels before a set event's waiter can
            # even report success.
            if not self.coordinator.drained:
                return False
        else:
            try:
                await self.coordinator.drain(wait)
            except asyncio.TimeoutError:
                return False
        target = self.coordinator.general.next_index
        while any(
            applier.next_index < target for applier in self.appliers.values()
        ):
            wait = remaining()
            if wait == 0.0:
                return False
            await asyncio.sleep(0.01)
        return True

    def repair(self) -> int:
        """Adopt f+1-matching slot outcomes into lagging replicas.

        Returns the number of entries adopted across all replicas.
        """
        f = self.cluster.params.f
        appliers = list(self.appliers.values())
        target = max(applier.next_index for applier in appliers)
        adopted = 0
        for applier in appliers:
            if applier.next_index >= target:
                continue
            entries = []
            for index in range(applier.next_index, target):
                votes: dict[object, int] = {}
                for peer in appliers:
                    if peer is applier:
                        continue
                    outcome = peer.outcome(index)
                    if outcome is not None:
                        votes[outcome] = votes.get(outcome, 0) + 1
                settled = [v for v, count in votes.items() if count >= f + 1]
                if len(settled) != 1:
                    break  # cannot vouch past this slot; stop contiguously
                entries.append((index, settled[0]))
            adopted += applier.adopt_entries(entries)
        self.repaired_entries += adopted
        return adopted

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, elapsed_s: Optional[float] = None) -> ServiceReport:
        coord = self.coordinator
        appliers = self.appliers
        if elapsed_s is None:
            started = self._started_at
            elapsed_s = (
                time.monotonic() - started if started is not None else 0.0
            )
        logs = [applier.applied for applier in appliers.values()]
        identical = all(log == logs[0] for log in logs[1:])
        return ServiceReport(
            elapsed_s=elapsed_s,
            commands_submitted=coord.commands_submitted,
            commands_decided=coord.commands_decided,
            commands_applied=min(
                applier.commands_applied for applier in appliers.values()
            ),
            slots_launched=coord.slots_launched,
            slots_decided=coord.slots_decided,
            slots_aborted=coord.slots_aborted,
            peak_in_flight=coord.peak_in_flight,
            peak_live_instances=self.peak_live_instances,
            peak_live_timers=self.peak_live_timers,
            live_bound=self.live_bound,
            bound_violations=self.bound_violations,
            samples=len(self.state_samples),
            latencies=list(coord.latencies),
            identical_logs=identical,
            digests={
                node_id: applier.digest()
                for node_id, applier in appliers.items()
            },
            applied_per_replica={
                node_id: applier.commands_applied
                for node_id, applier in appliers.items()
            },
            repaired_entries=self.repaired_entries,
        )

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------
    async def run_workload(
        self,
        rate: float,
        total: int,
        seed: int = 0,
        poisson: bool = True,
        drain_timeout_s: Optional[float] = None,
    ) -> ServiceReport:
        """Sustain an open-loop workload to completion; returns the report."""
        self.start()
        workload = OpenLoopWorkload(
            self.coordinator.submit, rate=rate, total=total, seed=seed,
            poisson=poisson,
        )
        started = time.monotonic()
        await workload.run()
        await self.drain(drain_timeout_s)
        elapsed = time.monotonic() - started
        self.repair()
        await self.stop()
        return self.report(elapsed_s=elapsed)


__all__ = ["ReplicatedLogService", "ServiceReport"]
