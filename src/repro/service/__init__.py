"""Replicated command-log service on the wall-clock backends.

The long-lived deployment shape the paper's introduction motivates: a
primary pipelines slot-indexed agreement instances (footnote 9's concurrent
invocations) under a bounded in-flight window, replicas apply decided slots
in index order and **retire** each slot's protocol state shortly after
apply, and an open-loop workload generator sustains client traffic against
the whole stack.

Pieces
------
* :class:`~repro.service.coordinator.LogCoordinator` -- primary-side slot
  pipeline: batches client commands into one agreement value per slot,
  launches up to ``window`` concurrent slots, re-enqueues aborted batches,
  and stamps per-command decide latency.
* :class:`~repro.service.applier.ReplicaApplier` -- replica-side applier:
  in-index-order apply with gap buffering, abort slots recorded as skips,
  and scheduled retirement of each applied slot's
  :class:`~repro.core.agreement.AgreementInstance` so live protocol state
  stays bounded by the window, not the log length.
* :class:`~repro.service.workload.OpenLoopWorkload` -- target-rate arrival
  generator (Poisson or fixed-interval) whose latency stamps are taken at
  the *theoretical* arrival instants, so queueing delay is measured, not
  hidden.
* :class:`~repro.service.service.ReplicatedLogService` -- asyncio-backend
  service: appliers on every correct node, the coordinator on the primary,
  a background state sampler proving the drain *during* the run, and an
  f+1-matching repair path for replicas that missed decisions.
* :class:`~repro.service.socket_service.SocketLogService` -- the same
  service across OS processes on the UDP socket backend.
"""

from repro.service.applier import ReplicaApplier
from repro.service.coordinator import LogCoordinator
from repro.service.service import ReplicatedLogService, ServiceReport
from repro.service.workload import OpenLoopWorkload

__all__ = [
    "LogCoordinator",
    "OpenLoopWorkload",
    "ReplicaApplier",
    "ReplicatedLogService",
    "ServiceReport",
]
