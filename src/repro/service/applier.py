"""Replica-side applier with per-slot protocol-state retirement.

Extends the :class:`~repro.extensions.state_machine.Replica` gap-healing
applier for service duty:

* **Aborted slots become skips.**  ss-Byz-Agree's Agreement property covers
  BOTTOM: when a slot aborts, it aborts at every correct node, so recording
  the slot as an empty skip (and letting the coordinator re-submit its
  commands under a fresh slot) keeps all replicas' applied sequences
  identical without any extra coordination.
* **Applied slots retire.**  ``retire_after_d`` protocol-time units after a
  slot's decision lands, its :class:`~repro.core.agreement.
  AgreementInstance` is removed from the node entirely (state, timers, and
  its share of the cleanup tick's work).  Retirement advances a contiguous
  watermark in slot order -- a slot is only retired once every slot below
  it has been applied and retired -- so the node's
  :attr:`~repro.core.agreement.ProtocolNode.instance_gate` can refuse to
  resurrect retired keys from straggler relays with one monotone check.

The delay must comfortably exceed the protocol's own ``3d`` post-return
reset, so slow peers still receive this node's relays for the slot while
they matter; the default ``6d`` leaves the full relay tail intact.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from typing import Callable

from repro.core.agreement import Decision, ProtocolNode
from repro.core.params import BOTTOM
from repro.extensions.state_machine import ApplyCallback, Replica


class ReplicaApplier(Replica):
    """Applies decided slots in order, then retires their protocol state."""

    def __init__(
        self,
        node: ProtocolNode,
        primary: int,
        retire_after_d: float = 6.0,
        on_apply: Optional[ApplyCallback] = None,
    ) -> None:
        self.retire_after_d = retire_after_d
        #: Slot indexes that aborted (recorded so sequences stay dense).
        self.skipped: list[int] = []
        #: Individual commands applied (a slot value is a batch tuple).
        self.commands_applied = 0
        self.retired_count = 0
        self._retire_ready: set[int] = set()
        self._retire_next = 0
        self._outcomes: dict[int, object] = {}
        #: Called with the new watermark whenever retirement advances; the
        #: service wires the primary's applier to the coordinator's
        #: :meth:`~repro.service.coordinator.LogCoordinator.notify_retired`
        #: so a launch pipeline gated on unretired slots resumes promptly.
        self.on_retire: Optional[Callable[[int], None]] = None
        super().__init__(node, primary, on_apply)
        node.instance_gate = self._gate

    # ------------------------------------------------------------------
    # Decision intake (aborts included, unlike the base Replica)
    # ------------------------------------------------------------------
    def _on_decision(self, decision: Decision) -> None:
        general = decision.general
        if not (isinstance(general, tuple) and general[0] == self.primary):
            return
        index = general[1]
        if index < self._next_index or index in self._pending:
            return  # duplicate (e.g. a re-decision after recovery)
        self._pending[index] = decision.value
        self._drain()
        self._schedule_retire(index)

    def _drain(self) -> None:
        while self._next_index in self._pending:
            value = self._pending.pop(self._next_index)
            self._outcomes[self._next_index] = value
            if value is BOTTOM:
                self.skipped.append(self._next_index)
            else:
                self.applied.append((self._next_index, value))
                self.commands_applied += (
                    len(value) if isinstance(value, tuple) else 1
                )
                if self.on_apply is not None:
                    self.on_apply(self._next_index, value)
            self._next_index += 1

    # ------------------------------------------------------------------
    # Retirement (measured, contiguous, gate-backed)
    # ------------------------------------------------------------------
    def _schedule_retire(self, index: int) -> None:
        self.node.after_local(
            self.retire_after_d * self.node.params.d,
            lambda: self._mark_retirable(index),
            tag=f"retire:{self.primary}:{index}",
        )

    def _mark_retirable(self, index: int) -> None:
        if index < self._retire_next:
            return  # already past the watermark (stale timer after churn)
        self._retire_ready.add(index)
        self._advance_retirement()

    def _advance_retirement(self) -> None:
        # The watermark only moves through *applied* slots, in order, so the
        # gate below stays a single monotone comparison.
        before = self._retire_next
        while self._retire_next < self._next_index:
            slot = self._retire_next
            if slot in self._retire_ready:
                self._retire_ready.discard(slot)
                if self.node.retire_instance((self.primary, slot)):
                    self.retired_count += 1
                self._retire_next += 1
            elif (self.primary, slot) not in self.node.instances:
                # Nothing to retire: the instance was wiped by a crash (its
                # retire timer died with the node's timers).
                self._retire_next += 1
            else:
                break
        if self._retire_next > before and self.on_retire is not None:
            self.on_retire(self._retire_next)

    def _gate(self, general: object) -> bool:
        if isinstance(general, tuple) and general[0] == self.primary:
            return general[1] >= self._retire_next
        return True

    # ------------------------------------------------------------------
    # Introspection and catch-up
    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """First slot index not yet applied or skipped."""
        return self._next_index

    @property
    def retire_watermark(self) -> int:
        """First slot index not yet retired (contiguous from zero)."""
        return self._retire_next

    @property
    def live_slot_instances(self) -> int:
        """This primary's slot instances still held by the node."""
        primary = self.primary
        return sum(
            1
            for key in self.node.instances
            if isinstance(key, tuple) and key[0] == primary
        )

    def digest(self) -> str:
        """Order-sensitive digest of the applied (index, value) sequence."""
        h = hashlib.sha256()
        for index, value in self.applied:
            h.update(repr((index, value)).encode())
        return h.hexdigest()[:16]

    def outcome(self, index: int) -> Optional[object]:
        """The finalized outcome of one slot (BOTTOM = skipped), if known."""
        return self._outcomes.get(index)

    def adopt_entries(self, entries: Iterable[tuple[int, object]]) -> int:
        """Catch-up: adopt slot outcomes fetched out of band.

        ``entries`` are ``(index, value)`` pairs (value ``BOTTOM`` for a
        skipped slot) whose provenance the *caller* vouches for -- the
        service layer only adopts outcomes matching at f+1 peers, so at
        least one correct replica applied each.  Returns how many entries
        were new.
        """
        adopted = 0
        for index, value in entries:
            if index < self._next_index or index in self._pending:
                continue
            self._pending[index] = value
            adopted += 1
        if adopted:
            self._drain()
        return adopted


__all__ = ["ReplicaApplier"]
